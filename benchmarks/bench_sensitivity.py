"""Bench: sensitivity of the reproduction to its calibrated constants.

The claims asserted here are the evidence behind DESIGN.md §2's
calibration choices: the qualitative comparison survives parameter motion,
while the incentive measurements respond in the predicted directions.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentConfig
from repro.experiments.sensitivity import (
    going_rate_sensitivity,
    jitter_sensitivity,
    occupation_sensitivity,
    skew_sensitivity,
)

CONFIG = ExperimentConfig(seeds=(0, 1), service_duration=1800.0)


def test_going_rate_sensitivity(benchmark):
    result = benchmark.pedantic(
        going_rate_sensitivity, kwargs={"config": CONFIG}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Payment rates track the cliff location monotonically (both
    # algorithms pay what the workers demand).
    demcom_rates = result.series("demcom", "payment_rate")
    ramcom_rates = result.series("ramcom", "payment_rate")
    assert demcom_rates == sorted(demcom_rates)
    assert ramcom_rates == sorted(ramcom_rates)
    # Cheaper workers -> more platform margin on borrowed requests.
    ramcom_revenue = result.series("ramcom", "total_revenue")
    assert ramcom_revenue[0] >= ramcom_revenue[-1] * 0.95


def test_jitter_sensitivity(benchmark):
    result = benchmark.pedantic(
        jitter_sensitivity, kwargs={"config": CONFIG}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # RamCOM's MER pricing keeps acceptance high regardless of cliff
    # sharpness; DemCOM stays strictly below it everywhere (§III-D).
    demcom = result.series("demcom", "acceptance_ratio")
    ramcom = result.series("ramcom", "acceptance_ratio")
    for d, r in zip(demcom, ramcom):
        assert r > d
        assert r >= 0.65


def test_skew_sensitivity(benchmark):
    result = benchmark.pedantic(
        skew_sensitivity, kwargs={"config": CONFIG}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # The COM advantage over TOTA grows with the spatial imbalance.
    tota = result.series("tota", "total_revenue")
    ramcom = result.series("ramcom", "total_revenue")
    gains = [r / t for r, t in zip(ramcom, tota)]
    assert gains[-1] > gains[0]
    # The ordering holds at every skew.
    assert all(gain > 0.98 for gain in gains)


def test_occupation_sensitivity(benchmark):
    result = benchmark.pedantic(
        occupation_sensitivity, kwargs={"config": CONFIG}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Longer occupation -> scarcer workers -> less revenue for everyone.
    for algorithm in ("tota", "demcom", "ramcom"):
        revenue = result.series(algorithm, "total_revenue")
        assert revenue == sorted(revenue, reverse=True)
