"""Bench: incentive-mechanism comparison — posted prices vs auctions.

The paper's §VI surveys auction-based incentives and argues COM needs a
*new* posted-price mechanism; this bench puts the two families side by
side on the same market, including the market-level footprint (lending
flows, net balances, worker-income inequality):

* DemCOM — posted minimum price (weak: offers undershoot);
* RamCOM — posted expected-revenue-optimal price;
* AuctionCOM(0) — truthful reverse auction (full information, no rent);
* AuctionCOM(0.25) — shaded bids (information rent paid by the platform).
"""

from __future__ import annotations

from conftest import bench_experiment_config

from repro.baselines import AuctionCOM
from repro.core import Simulator
from repro.core.registry import algorithm_factory
from repro.experiments.market import analyze_market
from repro.experiments.metrics import AlgorithmMetrics, average_metrics
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig


def run_mechanisms():
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(request_count=800, worker_count=200, city_km=8.0)
    ).build(seed=10)
    config = bench_experiment_config()
    mechanisms = {
        "DemCOM (posted min)": algorithm_factory("demcom"),
        "RamCOM (posted MER)": algorithm_factory("ramcom"),
        "Auction (truthful)": lambda: AuctionCOM(margin=0.0),
        "Auction (25% shading)": lambda: AuctionCOM(margin=0.25),
    }
    rows = {}
    markets = {}
    for label, factory in mechanisms.items():
        per_seed = []
        for seed in config.seeds:
            result = Simulator(config.simulator_config(seed)).run(scenario, factory)
            per_seed.append(AlgorithmMetrics.from_simulation(result))
        rows[label] = average_metrics(per_seed)
        markets[label] = analyze_market(
            Simulator(config.simulator_config(config.seeds[0])).run(
                scenario, factory
            )
        )
    return rows, markets


def test_mechanism_comparison(benchmark):
    rows, markets = benchmark.pedantic(run_mechanisms, rounds=1, iterations=1)
    table = TextTable(
        ["Mechanism", "Revenue", "Completed", "|CoR|", "v'/v", "Gini"],
        title="Posted prices vs reverse auctions",
    )
    for label, row in rows.items():
        table.add_row(
            [
                label,
                round(row.total_revenue),
                round(row.total_completed),
                row.cooperative,
                row.payment_rate,
                markets[label].gini,
            ]
        )
    print()
    print(table.render())

    # The truthful auction is the full-information upper envelope of the
    # cooperative mechanisms: it completes at least as much as DemCOM.
    assert (
        rows["Auction (truthful)"].total_completed
        >= rows["DemCOM (posted min)"].total_completed * 0.98
    )
    # Bid shading transfers surplus to workers: payment rate rises and
    # platform revenue falls relative to the truthful auction.
    truthful = rows["Auction (truthful)"]
    shaded = rows["Auction (25% shading)"]
    assert shaded.payment_rate > truthful.payment_rate
    assert shaded.total_revenue <= truthful.total_revenue * 1.02
    # Posted-MER remains competitive with the truthful auction despite
    # having only history estimates (the paper's mechanism is practical).
    assert (
        rows["RamCOM (posted MER)"].total_revenue
        >= truthful.total_revenue * 0.9
    )
