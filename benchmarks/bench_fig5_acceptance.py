"""Bench: Fig. 5(d)/(h)/(l) — cooperative acceptance ratio vs |R|, |W|, rad.

Paper shapes asserted:

* RamCOM's acceptance ratio dominates DemCOM's on every sweep point (its
  MER payments clear workers' thresholds; DemCOM's minimum payments mostly
  undershoot);
* ratios live in (0, 1];
* TOTA has no cooperative requests, hence no ratio (reported as 0 here).
"""

from __future__ import annotations

from figure_common import axis_panels, series


def _assert_ramcom_dominates(panel) -> None:
    demcom = series(panel, "demcom")
    ramcom = series(panel, "ramcom")
    for index in range(len(panel.x_values)):
        if demcom[index] > 0:  # a cooperative attempt happened
            assert ramcom[index] >= demcom[index]
        assert 0.0 <= ramcom[index] <= 1.0
    assert all(value == 0.0 for value in series(panel, "tota"))


def test_fig5d_acceptance_vs_requests(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("requests",), rounds=1, iterations=1
    )
    panel = panels["acceptance"]
    print()
    print(panel.render())
    _assert_ramcom_dominates(panel)


def test_fig5h_acceptance_vs_workers(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("workers",), rounds=1, iterations=1
    )
    panel = panels["acceptance"]
    print()
    print(panel.render())
    _assert_ramcom_dominates(panel)


def test_fig5l_acceptance_vs_radius(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("radius",), rounds=1, iterations=1
    )
    panel = panels["acceptance"]
    print()
    print(panel.render())
    _assert_ramcom_dominates(panel)
    # More radius -> more candidate workers per cooperative request ->
    # RamCOM's any-worker acceptance cannot collapse.
    ramcom = series(panel, "ramcom")
    assert ramcom[-1] >= ramcom[0] * 0.8
