"""Bench: regenerate the paper's Table VII (xian-nov city pair).

Prints the measured table and the paper-vs-measured comparison, asserts
the reproduction contract, and times one full table regeneration.
"""

from __future__ import annotations

from table_common import (
    assert_reproduction_contract,
    print_comparison,
    regenerate_table,
)


def test_table_7(benchmark):
    result = benchmark.pedantic(
        regenerate_table, args=("VII",), rounds=1, iterations=1
    )
    print_comparison(result)
    assert_reproduction_contract(result)
