"""Bench: empirical competitive ratios (Theorems 1 and 2).

* DemCOM's adversarial ratio is driven to ~epsilon by the greedy-trap
  family (Theorem 1: no adversarial bound exists);
* on exhaustively enumerated small instances the worst-order ratio of
  every algorithm is recorded;
* RamCOM's random-order expectation clears the 1/(8e) bound of Theorem 2.
"""

from __future__ import annotations

from repro.core import Simulator, SimulatorConfig
from repro.core.registry import algorithm_factory
from repro.experiments.competitive import (
    RAMCOM_THEORETICAL_CR,
    adversarial_ratio,
    demcom_worst_case_family,
    random_order_ratio,
)
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig


def _micro_scenario():
    return SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=4, worker_count=2, city_km=1.5, radius_km=2.0
        )
    ).build(seed=2)


def _random_order_scenario():
    return SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=30, worker_count=12, city_km=4.0, radius_km=1.5
        )
    ).build(seed=3)


def test_demcom_adversarial_unbounded(benchmark):
    def run():
        rows = []
        for epsilon in (0.5, 0.1, 0.01, 0.001):
            scenario, expected = demcom_worst_case_family(epsilon)
            result = Simulator(
                SimulatorConfig(seed=0, measure_response_time=False)
            ).run(scenario, algorithm_factory("demcom"))
            rows.append((epsilon, result.total_revenue, expected))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["epsilon", "DemCOM / OPT", "expected"],
        title="Theorem 1 — DemCOM greedy trap (ratio -> 0)",
    )
    for epsilon, measured, expected in rows:
        table.add_row([epsilon, measured, expected])
        assert measured == expected
    print()
    print(table.render())
    # Strictly decreasing toward zero: no constant bound can exist.
    ratios = [measured for __, measured, __ in rows]
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[-1] < 0.01


def test_exhaustive_adversarial_ratios(benchmark):
    scenario = _micro_scenario()

    def run():
        return {
            name: adversarial_ratio(scenario, name)
            for name in ("tota", "demcom", "ramcom")
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["Algorithm", "Orders", "Worst ratio", "Mean ratio"],
        title="Exhaustive adversarial enumeration (tiny instance)",
    )
    for name, report in reports.items():
        table.add_row(
            [name, report.orders_evaluated, report.minimum, report.expectation]
        )
        assert 0.0 <= report.minimum <= report.expectation <= 1.0 + 1e-9
    print()
    print(table.render())


def test_random_order_ratio_vs_bound(benchmark):
    scenario = _random_order_scenario()

    def run():
        return {
            name: random_order_ratio(scenario, name, trials=40)
            for name in ("tota", "demcom", "ramcom")
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["Algorithm", "Trials", "Mean ratio", "Min ratio", "1/(8e) bound"],
        title="Random-order competitive ratios (Theorem 2)",
    )
    for name, report in reports.items():
        table.add_row(
            [
                name,
                report.orders_evaluated,
                report.expectation,
                report.minimum,
                RAMCOM_THEORETICAL_CR,
            ]
        )
    print()
    print(table.render())
    # Theorem 2: RamCOM's expectation clears its worst-case guarantee by a
    # wide margin on benign inputs.
    assert reports["ramcom"].expectation >= RAMCOM_THEORETICAL_CR
