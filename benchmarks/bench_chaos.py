"""Bench: revenue/acceptance degradation under injected exchange faults.

Sweeps :meth:`FaultPlan.uniform` rates for DemCOM vs RamCOM and checks
the resilience layer's contract:

* a zero-fault plan is a strict pass-through (bit-identical revenue to
  the unwrapped exchange);
* revenue degrades monotonically (within a stochastic tolerance) as the
  fault rate rises — the plan's draws are monotone in the rate;
* no fault rate ever produces a Definition-2.6 constraint violation
  (``run_fault_sweep`` validates every run's matching).
"""

from __future__ import annotations

from conftest import bench_experiment_config

from repro.experiments.chaos import run_fault_sweep
from repro.experiments.harness import run_algorithm
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

RATES = (0.0, 0.2, 0.4, 0.6, 0.8)
ALGORITHMS = ("demcom", "ramcom")


def _scenario():
    return SyntheticWorkload(
        SyntheticWorkloadConfig(request_count=600, worker_count=160, city_km=8.0)
    ).build(seed=1)


def mostly_decreasing(values: list[float], tolerance: float = 0.15) -> bool:
    """True if the series trends downward (each step may rise by at most
    ``tolerance`` of the running minimum — fault draws are stochastic)."""
    running_min = values[0]
    for value in values[1:]:
        if value > running_min * (1.0 + tolerance) + 1e-9:
            return False
        running_min = min(running_min, value)
    return values[-1] < values[0] * (1.0 + tolerance)


def test_chaos_degradation(benchmark):
    scenario = _scenario()
    config = bench_experiment_config()
    result = benchmark.pedantic(
        run_fault_sweep,
        args=(scenario,),
        kwargs={"algorithms": ALGORITHMS, "rates": RATES, "config": config},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    for algorithm in ALGORITHMS:
        revenues = [
            row.revenue
            for row in result.rows
            if row.algorithm.lower() == algorithm
        ]
        assert len(revenues) == len(RATES)
        # Faults only remove assignment opportunities: revenue decays.
        assert mostly_decreasing(revenues), (algorithm, revenues)
        # A substantial fault rate must actually hurt (the injector is
        # not a no-op): at rate 0.8 revenue sits clearly below fault-free.
        assert revenues[-1] < revenues[0]

    # Zero-fault sweep points are bit-identical to the unwrapped runs.
    for algorithm in ALGORITHMS:
        baseline = run_algorithm(scenario, algorithm, config)
        zero_row = next(
            row
            for row in result.rows
            if row.fault_rate == 0.0
            and row.algorithm.lower() == algorithm
        )
        assert zero_row.revenue == baseline.total_revenue
        assert zero_row.completed == baseline.total_completed
        assert zero_row.metrics.retries == 0.0
        assert zero_row.metrics.failed_claims == 0.0
        assert zero_row.metrics.degraded_decisions == 0.0


def test_chaos_failure_accounting_scales(benchmark):
    scenario = _scenario()
    config = bench_experiment_config()
    result = benchmark.pedantic(
        run_fault_sweep,
        args=(scenario,),
        kwargs={
            "algorithms": ("ramcom",),
            "rates": (0.0, 0.5, 0.9),
            "config": config,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    rows = result.rows
    degraded = [row.metrics.degraded_decisions for row in rows]
    dropped = [row.metrics.dropped_workers for row in rows]
    outage = [row.metrics.outage_seconds for row in rows]
    # More injected faults -> more accounted failures, never fewer kinds.
    assert degraded[0] == 0.0 and dropped[0] == 0.0 and outage[0] == 0.0
    assert degraded[1] > 0.0 and degraded[2] >= degraded[1]
    assert dropped[2] >= dropped[1] > 0.0
    assert outage[2] >= outage[1] > 0.0
