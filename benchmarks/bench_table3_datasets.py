"""Bench: Table III — the simulated dataset registry matches the paper.

Generates each city pair at the bench scale and checks that the produced
traces carry exactly the scaled Table-III statistics (|R|, |W|, rad, the
worker-scarcity ratio) plus a fare-band sanity check on values.
"""

from __future__ import annotations

from conftest import BENCH_SCALE

from paper_reference import PAPER_TABLES  # noqa: F401  (docs cross-ref)
from repro.utils.tables import TextTable
from repro.workloads import DATASETS, build_city_pair, dataset_statistics


def test_table_3(benchmark):
    def run():
        stats = {}
        for pair in ("chengdu-oct", "chengdu-nov", "xian-nov"):
            scenario = build_city_pair(pair, scale=BENCH_SCALE, seed=0)
            stats[pair] = dataset_statistics(scenario)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["Dataset", "|R| paper", "|R| ours", "|W| paper", "|W| ours",
         "ratio paper", "ratio ours", "mean fare"],
        title=f"Table III — simulated traces @ scale {BENCH_SCALE:g}",
    )
    for pair, platforms in stats.items():
        for name, values in platforms.items():
            spec = DATASETS[name]
            table.add_row(
                [
                    name,
                    spec.requests,
                    int(values["requests"]),
                    spec.workers,
                    int(values["workers"]),
                    spec.requests / spec.workers,
                    values["ratio"],
                    values["mean_value"],
                ]
            )
            assert values["requests"] == round(spec.requests * BENCH_SCALE)
            assert values["workers"] == round(spec.workers * BENCH_SCALE)
            assert values["radius_km"] == spec.radius_km
            paper_ratio = spec.requests / spec.workers
            assert values["ratio"] == (
                round(spec.requests * BENCH_SCALE)
                / round(spec.workers * BENCH_SCALE)
            )
            assert abs(values["ratio"] - paper_ratio) / paper_ratio < 0.2
            assert 12.0 <= values["mean_value"] <= 26.0
    print()
    print(table.render())
