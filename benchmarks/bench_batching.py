"""Bench: the batching extension — what does deciding immediately cost?

Sweeps the batch window delta and compares against the paper's immediate-
decision algorithms.  Expected shape: the batch baseline dominates TOTA
(globally better pairings + a cooperative fallback) and the advantage is
insensitive to delta on diurnal workloads (batches stay small off-peak).
"""

from __future__ import annotations

from conftest import bench_experiment_config

from repro.baselines import BatchMatching
from repro.core.simulator import Simulator
from repro.experiments.harness import run_comparison
from repro.experiments.metrics import AlgorithmMetrics, average_metrics
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

DELTAS = (0.0, 60.0, 300.0, 900.0)


def run_sweep():
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(request_count=800, worker_count=200, city_km=8.0)
    ).build(seed=8)
    config = bench_experiment_config()
    rows: dict[str, AlgorithmMetrics] = {}
    for name, row in zip(
        ("tota", "demcom", "ramcom"),
        run_comparison(scenario, ["tota", "demcom", "ramcom"], config),
    ):
        rows[name] = row
    for delta in DELTAS:
        per_seed = []
        for seed in config.seeds:
            simulator = Simulator(config.simulator_config(seed))
            result = simulator.run(
                scenario, lambda: BatchMatching(delta_seconds=delta)
            )
            per_seed.append(AlgorithmMetrics.from_simulation(result))
        rows[f"batch-{delta:g}s"] = average_metrics(per_seed)
    return rows


def test_batching_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = TextTable(
        ["Algorithm", "Revenue", "Completed", "|CoR|", "AcpRt"],
        title="Batch-window sweep vs immediate decisions",
    )
    for label, row in rows.items():
        table.add_row(
            [
                label,
                round(row.total_revenue),
                round(row.total_completed),
                row.cooperative,
                row.acceptance_ratio,
            ]
        )
    print()
    print(table.render())

    # Batching with the cooperative fallback dominates plain TOTA at every
    # window size.
    for delta in DELTAS:
        assert rows[f"batch-{delta:g}s"].total_revenue > rows["tota"].total_revenue
    # And longer windows never do much worse than instant batches.
    instant = rows["batch-0s"].total_revenue
    for delta in DELTAS[1:]:
        assert rows[f"batch-{delta:g}s"].total_revenue >= instant * 0.9
