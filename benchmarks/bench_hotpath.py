"""Hot-path benchmark: Algorithm-2 fast path and the parallel executor.

Measures the quantities docs/PERFORMANCE.md optimises — decisions/sec and
p50/p95 per-estimate latency on the DemCOM payment-estimation
microbenchmark, decisions/sec on a full DemCOM run, and (on multi-core
machines) the parallel executor's wall-clock speedup.  Every section is
measured twice in the same process: ``baseline`` runs the retained
reference implementations (``fast_path=False``, bit-identical to the
pre-optimisation code) and ``current`` runs the default fast path, so the
recorded speedups are self-relative and transfer across machines.

The repo-root ``BENCH_hotpath.json`` is the checked-in reference::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --output BENCH_hotpath.json

CI smoke (quick sizes, fail if a speedup regresses >25% vs the reference)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick \
        --check BENCH_hotpath.json --output bench_hotpath_ci.json

Also runnable through pytest (``test_fast_path_not_slower``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.benchmark import (
    check_regression,
    render_report,
    run_hotpath_benchmark,
)


def test_fast_path_not_slower():
    """Pytest entry point: the fast path must beat its own baseline."""
    payload = run_hotpath_benchmark(quick=True, jobs=1)
    # Conservative floor for noisy CI runners; the checked-in reference
    # records the real margin (>= 2x on the payment microbenchmark).
    assert payload["payment_micro"]["speedup"] > 1.0
    assert payload["demcom_end_to_end"]["speedup"] > 0.9


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes for CI smoke"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help=(
            "worker processes for the parallel-executor section "
            "(0 = one per CPU; the section is skipped when this resolves "
            "to 1)"
        ),
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the JSON payload to this path",
    )
    parser.add_argument(
        "--check",
        type=str,
        default=None,
        help=(
            "compare speedups against this reference JSON "
            "(exit 1 on >25%% regression)"
        ),
    )
    args = parser.parse_args(argv)

    payload = run_hotpath_benchmark(quick=args.quick, jobs=args.jobs)
    print(render_report(payload))
    if args.output:
        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"saved: {args.output}")
    if args.check:
        failures = check_regression(payload, args.check)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"OK: speedups within tolerance of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
