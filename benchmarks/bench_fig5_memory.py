"""Bench: Fig. 5(c)/(g)/(k) — memory cost vs |R|, |W| and rad.

Paper shapes asserted: memory grows with |R| and |W| (entity storage),
stays flat in rad, and is nearly identical across the three algorithms.
"""

from __future__ import annotations

from figure_common import axis_panels, mostly_increasing, roughly_flat, series


def _algorithms_nearly_identical(panel) -> None:
    for index in range(len(panel.x_values)):
        values = [series(panel, name)[index] for name in ("tota", "demcom", "ramcom")]
        assert max(values) <= min(values) * 1.25 + 1e-6


def test_fig5c_memory_vs_requests(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("requests",), rounds=1, iterations=1
    )
    panel = panels["memory"]
    print()
    print(panel.render())
    for algorithm in ("tota", "demcom", "ramcom"):
        assert mostly_increasing(series(panel, algorithm))
    _algorithms_nearly_identical(panel)


def test_fig5g_memory_vs_workers(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("workers",), rounds=1, iterations=1
    )
    panel = panels["memory"]
    print()
    print(panel.render())
    for algorithm in ("tota", "demcom", "ramcom"):
        assert mostly_increasing(series(panel, algorithm))
    _algorithms_nearly_identical(panel)


def test_fig5k_memory_vs_radius(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("radius",), rounds=1, iterations=1
    )
    panel = panels["memory"]
    print()
    print(panel.render())
    # Same |R| and |W| at every radius: storage barely moves.
    for algorithm in ("tota", "demcom", "ramcom"):
        assert roughly_flat(series(panel, algorithm), band=0.25)
    _algorithms_nearly_identical(panel)
