"""Shared machinery for the Table V/VI/VII benches.

Each table bench regenerates one city-pair comparison at the configured
scale, prints the measured table next to the paper's published rows
(normalized by the TOTA row, since absolute CNY scales with |R|), and
asserts the reproduction contract:

* revenue ordering OFF > RamCOM > DemCOM > TOTA;
* |CoR|: RamCOM >> DemCOM > 0; acceptance: RamCOM >> DemCOM;
* payment rates in the paper's 0.6-0.9 band, RamCOM >= DemCOM;
* response time: TOTA <= DemCOM <= RamCOM.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, bench_experiment_config
from paper_reference import PAPER_TABLES, PaperRow

from repro.experiments.tables import TableResult, run_city_table
from repro.utils.tables import TextTable


def regenerate_table(table_id: str) -> TableResult:
    """Run one paper table at the bench scale."""
    return run_city_table(
        table_id, scale=BENCH_SCALE, config=bench_experiment_config()
    )


def print_comparison(result: TableResult) -> None:
    """Print measured rows next to the paper's, normalized by TOTA."""
    paper = PAPER_TABLES[result.table_id]
    measured_tota = result.row("TOTA").total_revenue
    paper_tota = paper["TOTA"].total_revenue_m
    table = TextTable(
        [
            "Method",
            "Rev vs TOTA (paper)",
            "Rev vs TOTA (ours)",
            "CpR rate (paper)",
            "CpR rate (ours)",
            "AcpRt (paper)",
            "AcpRt (ours)",
            "v'/v (paper)",
            "v'/v (ours)",
        ],
        title=(
            f"Table {result.table_id} paper-vs-measured "
            f"(scale {result.scale:g}, revenue normalized by TOTA)"
        ),
    )
    paper_requests = {
        "V": (91_321, 90_589),
        "VI": (100_973, 100_448),
        "VII": (57_611, 57_638),
    }[result.table_id]
    total_paper_requests = sum(paper_requests)
    total_ours_requests = round(total_paper_requests * result.scale)
    for name in ("OFF", "TOTA", "DemCOM", "RamCOM"):
        published: PaperRow = paper[name]
        measured = result.row(name)
        table.add_row(
            [
                name,
                published.total_revenue_m / paper_tota,
                measured.total_revenue / measured_tota,
                published.total_completed / total_paper_requests,
                measured.total_completed / total_ours_requests,
                published.acceptance,
                measured.acceptance_ratio,
                published.payment_rate,
                measured.payment_rate,
            ]
        )
    print()
    print(result.render())
    print()
    print(table.render())


def assert_reproduction_contract(result: TableResult) -> None:
    """The shape assertions every table must satisfy."""
    off = result.row("OFF")
    tota = result.row("TOTA")
    demcom = result.row("DemCOM")
    ramcom = result.row("RamCOM")

    # Revenue ordering (the headline result).
    assert off.total_revenue >= ramcom.total_revenue
    assert ramcom.total_revenue > demcom.total_revenue * 0.98
    assert demcom.total_revenue > tota.total_revenue

    # Cooperation volume and incentive quality.
    assert ramcom.cooperative > demcom.cooperative > 0
    assert tota.cooperative == 0
    assert ramcom.acceptance_ratio > demcom.acceptance_ratio
    assert 0.55 <= demcom.payment_rate <= 0.95
    assert 0.55 <= ramcom.payment_rate <= 0.95
    assert ramcom.payment_rate >= demcom.payment_rate - 0.05

    # Completed requests: COM serves more users than TOTA; OFF tops all.
    assert demcom.total_completed > tota.total_completed
    assert ramcom.total_completed > tota.total_completed * 0.95
    assert off.total_completed >= max(
        demcom.total_completed, ramcom.total_completed
    )

    # Efficiency: the cooperative algorithms pay a latency premium.
    assert tota.response_time_ms <= demcom.response_time_ms * 1.5
    assert demcom.response_time_ms <= ramcom.response_time_ms * 1.5
