"""Micro-benchmarks of the hot components (proper pytest-benchmark timing).

These are the kernels behind the response-time metric: eligibility
queries, Algorithm-2 payment estimation, MER quoting, single decisions,
and the offline matcher.  Useful for tracking performance regressions
independently of the end-to-end tables.
"""

from __future__ import annotations

import random

from repro.core import DemCOM, RamCOM, Simulator, SimulatorConfig
from repro.core.acceptance import AcceptanceEstimator
from repro.core.payment import MinimumOuterPaymentEstimator
from repro.core.pricing import MaximumExpectedRevenuePricer
from repro.baselines import TOTA, solve_offline
from repro.geo import GridIndex, Point
from repro.graph.bipartite import BipartiteGraph
from repro.graph.hungarian import max_weight_matching
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig


def test_grid_index_query(benchmark):
    rng = random.Random(0)
    index = GridIndex(1.0)
    for i in range(5000):
        index.insert(i, Point(rng.uniform(0, 20), rng.uniform(0, 20)))
    center = Point(10, 10)
    result = benchmark(index.query_radius, center, 1.0)
    assert isinstance(result, list)


def test_algorithm2_payment_estimate(benchmark):
    rng = random.Random(1)
    acceptance = AcceptanceEstimator()
    for i in range(8):
        acceptance.set_history(
            f"w{i}", [max(0.05, rng.gauss(0.8, 0.05)) for _ in range(50)]
        )
    estimator = MinimumOuterPaymentEstimator(acceptance)
    workers = [f"w{i}" for i in range(8)]

    def run():
        return estimator.estimate(20.0, workers, random.Random(3))

    result = benchmark(run)
    assert result.payment > 0


def test_mer_pricer_quote(benchmark):
    rng = random.Random(2)
    acceptance = AcceptanceEstimator()
    for i in range(8):
        acceptance.set_history(
            f"w{i}", [max(0.05, rng.gauss(0.8, 0.05)) for _ in range(50)]
        )
    pricer = MaximumExpectedRevenuePricer(acceptance)
    workers = [f"w{i}" for i in range(8)]
    quote = benchmark(pricer.quote, 20.0, workers)
    assert 0 < quote.payment <= 20.0


def _simulation_scenario():
    return SyntheticWorkload(
        SyntheticWorkloadConfig(request_count=400, worker_count=120, city_km=6.0)
    ).build(seed=4)


def test_simulation_tota(benchmark):
    scenario = _simulation_scenario()
    simulator = Simulator(SimulatorConfig(seed=0, measure_response_time=False))
    result = benchmark.pedantic(
        simulator.run, args=(scenario, TOTA), rounds=3, iterations=1
    )
    assert result.total_completed > 0


def test_simulation_demcom(benchmark):
    scenario = _simulation_scenario()
    simulator = Simulator(SimulatorConfig(seed=0, measure_response_time=False))
    result = benchmark.pedantic(
        simulator.run, args=(scenario, DemCOM), rounds=3, iterations=1
    )
    assert result.total_completed > 0


def test_simulation_ramcom(benchmark):
    scenario = _simulation_scenario()
    simulator = Simulator(SimulatorConfig(seed=0, measure_response_time=False))
    result = benchmark.pedantic(
        simulator.run, args=(scenario, RamCOM), rounds=3, iterations=1
    )
    assert result.total_completed > 0


def test_offline_matching(benchmark):
    scenario = _simulation_scenario()
    solution = benchmark.pedantic(
        solve_offline, args=(scenario,), rounds=3, iterations=1
    )
    assert solution.total_revenue > 0


def test_sparse_hungarian(benchmark):
    rng = random.Random(5)
    graph = BipartiteGraph()
    for left in range(300):
        for __ in range(4):
            graph.add_edge(left, rng.randrange(200), rng.uniform(1, 10))

    result = benchmark(max_weight_matching, graph)
    assert result.total_weight > 0
