"""Bench: GeoCrowd max-task assignment vs the revenue-optimal OFF.

Kazemi & Shahabi's GeoCrowd [8] — a pillar of the paper's related work —
maximizes the *number* of assigned tasks by max flow; COM's OFF maximizes
*revenue* by max-weight matching.  This bench runs both on the same trace
and quantifies the contrast the paper's §VI narrates: the cardinality
optimum completes at least as many requests, the revenue optimum earns at
least as much money.
"""

from __future__ import annotations

from conftest import BENCH_SCALE

from repro.baselines import solve_geocrowd, solve_offline
from repro.utils.tables import TextTable
from repro.workloads import build_city_pair


def run_contrast():
    scenario = build_city_pair("xian-nov", scale=BENCH_SCALE, seed=0)
    geocrowd = solve_geocrowd(scenario, max_tasks_per_worker=1)
    off = solve_offline(scenario)
    return scenario, geocrowd, off


def test_geocrowd_vs_off(benchmark):
    scenario, geocrowd, off = benchmark.pedantic(
        run_contrast, rounds=1, iterations=1
    )
    table = TextTable(
        ["Objective", "Completed", "Gross value", "Platform revenue"],
        title=f"GeoCrowd (max tasks) vs OFF (max revenue) — {scenario.name}",
    )
    off_gross = sum(
        record.request.value for record in off.records
    )
    table.add_row(
        ["GeoCrowd max-flow", geocrowd.assigned_tasks, round(geocrowd.total_value), "-"]
    )
    table.add_row(
        ["OFF max-weight", off.total_completed, round(off_gross), round(off.total_revenue)]
    )
    print()
    print(table.render())

    # The cardinality objective completes at least as many tasks as the
    # revenue-optimal matching (both under unit worker capacity) ...
    assert geocrowd.assigned_tasks >= off.total_completed
    # ... while OFF's platform revenue is bounded by its own gross value
    # (outer payments only subtract) and is the revenue maximum over all
    # matchings, including GeoCrowd's.
    assert off.total_revenue <= off_gross + 1e-9
    assert geocrowd.assigned_tasks > 0
