"""Bench: ablations of the design choices DESIGN.md calls out.

* cooperation on/off — quantifies the whole paper's premise;
* RamCOM's threshold exponent k — the per-k revenue profile behind the
  randomized draw;
* Algorithm-2 accuracy knobs (xi, eta) — samples vs latency;
* MER candidate payments — grid resolution and CDF breakpoints.
"""

from __future__ import annotations

from conftest import bench_experiment_config

from repro.experiments.ablation import (
    run_cooperation_ablation,
    run_payment_accuracy_ablation,
    run_pricer_breakpoint_ablation,
    run_ramcom_k_sweep,
)
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig


def _scenario():
    return SyntheticWorkload(
        SyntheticWorkloadConfig(request_count=600, worker_count=160, city_km=8.0)
    ).build(seed=1)


def test_cooperation_ablation(benchmark):
    scenario = _scenario()
    result = benchmark.pedantic(
        run_cooperation_ablation,
        args=(scenario, bench_experiment_config()),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    rows = dict(result.rows)
    # Disabling the exchange removes every cooperative completion.
    assert rows["demcom-coop"].cooperative == 0
    assert rows["ramcom-coop"].cooperative == 0
    assert rows["ramcom+coop"].cooperative > 0
    # With one-sided... on symmetric demand cooperation pays off overall.
    assert (
        rows["ramcom+coop"].total_revenue >= rows["ramcom-coop"].total_revenue
    )


def test_ramcom_k_sweep(benchmark):
    scenario = _scenario()
    result = benchmark.pedantic(
        run_ramcom_k_sweep,
        args=(scenario, bench_experiment_config()),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert len(result.rows) >= 3
    # Every pinned-k variant still completes work.
    for __, row in result.rows:
        assert row.total_completed > 0


def test_payment_accuracy(benchmark):
    scenario = _scenario()
    result = benchmark.pedantic(
        run_payment_accuracy_ablation,
        args=(scenario, bench_experiment_config()),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    rows = dict(result.rows)
    # Tighter (xi, eta) means more Monte-Carlo samples per request, which
    # shows up as strictly higher decision latency.
    loose = rows["xi=0.2, eta=0.7"].response_time_ms
    tight = rows["xi=0.05, eta=0.3"].response_time_ms
    assert tight > loose


def test_pricer_breakpoints(benchmark):
    scenario = _scenario()
    result = benchmark.pedantic(
        run_pricer_breakpoint_ablation,
        args=(scenario, bench_experiment_config()),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    rows = dict(result.rows)
    # With CDF breakpoints the optimizer is exact: revenue at grid-50+bp is
    # at least that of the grid-only variant (up to run noise).
    assert (
        rows["grid-50+bp"].total_revenue >= rows["grid-50-bp"].total_revenue * 0.97
    )
