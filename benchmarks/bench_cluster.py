"""Cluster benchmark: sharded throughput and modeled parallel speedup.

Thin runner around :mod:`repro.experiments.cluster_bench` (the core lives
in the package so ``com-repro bench --cluster`` shares it).  One dense
trace is routed through in-process clusters of 1/2/4/8 shards with the
sanitizer on; each shard's routed substream is then re-driven in
isolation, so the critical path (slowest shard) gives the parallel
speedup a real N-process deployment realizes — see
``docs/CLUSTER.md#benchmarks``.

The repo-root ``BENCH_cluster.json`` is the checked-in reference::

    PYTHONPATH=src python benchmarks/bench_cluster.py --output BENCH_cluster.json

CI smoke (quick sizes, sanity thresholds only)::

    PYTHONPATH=src python benchmarks/bench_cluster.py --quick

Gate the scaling ratio against the reference::

    PYTHONPATH=src python benchmarks/bench_cluster.py --quick --check BENCH_cluster.json

Also runnable through pytest (``test_cluster_scaling_sane``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.cluster_bench import (
    check_cluster_regression,
    render_cluster_report,
    run_cluster_benchmark,
)


def test_cluster_scaling_sane():
    """Pytest entry point: sharding splits work and conserves matches."""
    payload = run_cluster_benchmark(quick=True)
    sections = payload["sections"]
    base = sections["1"]
    assert base["completed"] > 0
    for count in payload["shard_counts"]:
        row = sections[str(count)]
        # Forwarding must keep border matches alive across the partition.
        assert row["completed"] >= 0.8 * base["completed"]
        assert row["critical_path_seconds"] > 0
    # The 4-shard critical path must be well under the 1-shard time —
    # loose CI floor; the strict 2.5x gate runs via `bench --cluster
    # --check` where runner noise is visible.
    assert payload["scaling"]["modeled_speedup"]["4"] > 1.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes for CI smoke"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="write the JSON payload here"
    )
    parser.add_argument(
        "--check",
        type=str,
        default=None,
        help="gate the scaling ratio against this reference JSON "
        "(e.g. BENCH_cluster.json); exit 1 on regression",
    )
    args = parser.parse_args(argv)
    payload = run_cluster_benchmark(quick=args.quick)
    print(render_cluster_report(payload))
    if args.output:
        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"saved: {args.output}")
    if args.check:
        failures = check_cluster_regression(payload, args.check)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"OK: cluster scaling within tolerance of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
