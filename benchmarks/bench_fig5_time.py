"""Bench: Fig. 5(b)/(f)/(j) — average response time vs |R|, |W| and rad.

Paper shapes asserted:

* TOTA is the fastest everywhere (no payment estimation);
* response time grows with |W| (more candidates to check);
* response time is roughly steady in rad (small effect only).
"""

from __future__ import annotations

from figure_common import axis_panels, roughly_flat, series


def test_fig5b_time_vs_requests(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("requests",), rounds=1, iterations=1
    )
    panel = panels["time"]
    print()
    print(panel.render())
    # TOTA is the cheapest per request at every sweep point.
    for index in range(len(panel.x_values)):
        assert series(panel, "tota")[index] <= series(panel, "ramcom")[index] * 1.2


def test_fig5f_time_vs_workers(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("workers",), rounds=1, iterations=1
    )
    panel = panels["time"]
    print()
    print(panel.render())
    for algorithm in ("tota", "demcom", "ramcom"):
        values = series(panel, algorithm)
        # More workers -> more candidates per decision; the curve should
        # not *shrink* drastically from first to last point.
        assert values[-1] >= values[0] * 0.3
    for index in range(len(panel.x_values)):
        assert series(panel, "tota")[index] <= series(panel, "ramcom")[index] * 1.2


def test_fig5j_time_vs_radius(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("radius",), rounds=1, iterations=1
    )
    panel = panels["time"]
    print()
    print(panel.render())
    # rad barely affects decision latency for the single-platform baseline.
    assert roughly_flat(series(panel, "tota"), band=0.8)
    for index in range(len(panel.x_values)):
        assert series(panel, "tota")[index] <= series(panel, "ramcom")[index] * 1.2
