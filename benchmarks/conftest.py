"""Shared configuration for the benchmark suite.

Environment knobs (all optional):

* ``REPRO_BENCH_SCALE`` — fraction of Table III's entity counts simulated
  by the table benches (default 0.01; the paper's full scale is 1.0).
* ``REPRO_BENCH_SEEDS`` — seed-days averaged per measurement (default 2).
* ``REPRO_BENCH_FULL`` — set to 1 to run the figure sweeps over the full
  Table-IV grids (default: the heaviest tail points are truncated).
* ``REPRO_BENCH_JOBS`` — worker processes for the seed x algorithm cells
  (default 1 = serial; 0 = one per CPU).  Results are byte-identical to
  serial runs (docs/PERFORMANCE.md), so measured revenues never shift.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the regenerated
paper-vs-measured tables.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.harness import ExperimentConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))
BENCH_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "2"))
BENCH_FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_experiment_config() -> ExperimentConfig:
    """The harness configuration shared by the table/figure benches."""
    return ExperimentConfig(
        seeds=tuple(range(BENCH_SEEDS)),
        worker_reentry=True,
        service_duration=1800.0,
        jobs=BENCH_JOBS,
    )


def figure_sweep(axis: str) -> tuple:
    """The sweep grid for one Fig.-5 axis (truncated unless BENCH_FULL)."""
    full = {
        "requests": (500, 1000, 2500, 5000, 10_000, 20_000, 50_000, 100_000),
        "workers": (100, 200, 500, 1000, 2500, 5000, 10_000, 20_000),
        "radius": (0.5, 1.0, 1.5, 2.0, 2.5),
    }
    reduced = {
        "requests": (500, 1000, 2500, 5000, 10_000),
        "workers": (100, 200, 500, 1000, 2500),
        "radius": (0.5, 1.0, 1.5, 2.0, 2.5),
    }
    return full[axis] if BENCH_FULL else reduced[axis]
