"""Guard: the disabled telemetry path must cost (almost) nothing.

Every probe point added by the observability layer sits behind either a
``probe.enabled`` flag check or a no-op :data:`~repro.obs.NULL_PROBE`
method call.  The *pre-PR baseline* is therefore exactly "the decision
path minus those checks", and the overhead versus it can be measured
directly: time the per-decision probe-call pattern against the null
probe, and compare to the measured mean decision latency on the default
synthetic scenario.  The guard asserts that ratio stays under
``BUDGET`` (5%).

Also reported (not asserted): end-to-end mean response time with
telemetry off, metrics-only, and metrics+tracing, so enabled-mode cost
stays visible in CI logs.

Run standalone (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --quick

or through pytest (``test_null_probe_overhead_budget``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import Simulator, SimulatorConfig
from repro.core.registry import algorithm_factory
from repro.obs import NULL_PROBE, Telemetry
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

#: Maximum tolerated disabled-path overhead, as a fraction of the mean
#: per-decision latency.
BUDGET = 0.05

#: Upper bound on probe touchpoints per decision on the disabled path:
#: decision span + candidates (inner & outer) + offer loop + payment span
#: + claim span + algorithm counters are all ``enabled`` flag checks;
#: ``probe.advance`` and stray no-op calls add method-call shapes.  The
#: runtime constraint sanitizer (``repro.analysis``) adds ``is None``
#: tests in ``_apply_decision`` and the offer loop — same attribute-load
#: + branch shape as a flag check, counted in the same bucket.  The
#: payment estimator's span-leak guard (``finally: if span is not None
#: and failed``) adds one more is-None test per estimate; the snapshot
#: fast path itself adds none.
FLAG_CHECKS_PER_DECISION = 13
NOOP_CALLS_PER_DECISION = 2


def _scenario(quick: bool):
    config = (
        SyntheticWorkloadConfig(request_count=200, worker_count=60, city_km=6.0)
        if quick
        else SyntheticWorkloadConfig(request_count=600, worker_count=160, city_km=8.0)
    )
    return SyntheticWorkload(config).build(seed=1)


def null_probe_costs_seconds(iterations: int = 200_000) -> tuple[float, float]:
    """Per-touchpoint cost of the two disabled-path shapes.

    Returns ``(flag_check, noop_call)`` seconds: a bare ``probe.enabled``
    flag check (the guarded sites) and a no-op method call with keyword
    labels (the unguarded sites).
    """
    probe = NULL_PROBE
    start = time.perf_counter()
    for _ in range(iterations):
        if probe.enabled:  # pragma: no cover - never taken
            probe.count("x", platform="A")
    flag_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iterations):
        probe.count("decisions_total", platform="A", kind="reject")
    call_elapsed = time.perf_counter() - start
    return flag_elapsed / iterations, call_elapsed / iterations


def mean_decision_seconds(scenario, telemetry_factory, repeats: int) -> float:
    """Mean per-request decision latency over ``repeats`` runs."""
    best = float("inf")
    for seed in range(repeats):
        config = SimulatorConfig(seed=seed, telemetry=telemetry_factory())
        result = Simulator(config).run(scenario, algorithm_factory("ramcom"))
        # Use the fastest run: scheduler noise only ever inflates.
        best = min(best, result.mean_response_time_ms / 1e3)
    return best


def run_overhead_bench(quick: bool = False) -> dict:
    """Measure the guard's quantities; returns them for reporting."""
    scenario = _scenario(quick)
    repeats = 2 if quick else 3
    disabled = mean_decision_seconds(scenario, lambda: None, repeats)
    metrics_only = mean_decision_seconds(scenario, Telemetry, repeats)
    tracing = mean_decision_seconds(
        scenario, lambda: Telemetry(tracing=True), repeats
    )
    flag_cost, call_cost = null_probe_costs_seconds(50_000 if quick else 200_000)
    per_decision = (
        flag_cost * FLAG_CHECKS_PER_DECISION + call_cost * NOOP_CALLS_PER_DECISION
    )
    return {
        "scenario": scenario.name,
        "disabled_s": disabled,
        "metrics_only_s": metrics_only,
        "tracing_s": tracing,
        "null_probe_flag_s": flag_cost,
        "null_probe_call_s": call_cost,
        "disabled_overhead_s": per_decision,
        "disabled_overhead_fraction": per_decision / disabled,
    }


def test_null_probe_overhead_budget():
    """Pytest entry point (quick mode)."""
    report = run_overhead_bench(quick=True)
    assert report["disabled_overhead_fraction"] <= BUDGET


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes for CI smoke"
    )
    args = parser.parse_args(argv)
    report = run_overhead_bench(quick=args.quick)

    table = TextTable(
        ["Mode", "Mean decision (µs)", "vs disabled"],
        title=f"Telemetry overhead — {report['scenario']}",
    )
    base = report["disabled_s"]
    for label, key in (
        ("telemetry off", "disabled_s"),
        ("metrics only", "metrics_only_s"),
        ("metrics + tracing", "tracing_s"),
    ):
        table.add_row(
            [label, round(report[key] * 1e6, 2), f"{report[key] / base:.2f}x"]
        )
    print(table.render())
    fraction = report["disabled_overhead_fraction"]
    print(
        f"null probe: flag check {report['null_probe_flag_s'] * 1e9:.0f} ns, "
        f"no-op call {report['null_probe_call_s'] * 1e9:.0f} ns; "
        f"{FLAG_CHECKS_PER_DECISION}+{NOOP_CALLS_PER_DECISION} per decision = "
        f"{report['disabled_overhead_s'] * 1e9:.0f} ns "
        f"({fraction * 100:.2f}% of mean decision latency, budget "
        f"{BUDGET * 100:.0f}%)"
    )
    if fraction > BUDGET:
        print("FAIL: disabled-path overhead exceeds budget", file=sys.stderr)
        return 1
    print("OK: disabled-path overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
