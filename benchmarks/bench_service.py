"""Service benchmark: sustained throughput and end-to-end decision latency.

Measures the serving layer the way an operator would size it: a synthetic
trace is replayed through a :class:`~repro.service.gateway.MatchingGateway`
(in-process — isolates the decision loop) and through the full
JSONL-over-TCP stack on loopback (adds codec + socket cost), recording
sustained requests/sec and the p50/p95/p99 of the per-request end-to-end
latency reported on each :class:`~repro.service.gateway.ServiceOutcome`.

The repo-root ``BENCH_service.json`` is the checked-in reference::

    PYTHONPATH=src python benchmarks/bench_service.py --output BENCH_service.json

CI smoke (quick sizes, sanity thresholds only)::

    PYTHONPATH=src python benchmarks/bench_service.py --quick

Also runnable through pytest (``test_service_throughput_sane``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.core import SimulatorConfig
from repro.core.events import EventKind
from repro.service import (
    GatewayClient,
    MatchingGateway,
    MatchingServer,
    drive_trace,
)
from repro.utils.timer import Stopwatch
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _build(requests: int, workers: int):
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=requests, worker_count=workers, horizon_seconds=7200.0
        )
    ).build(seed=5)
    config = SimulatorConfig(measure_response_time=False)
    return scenario, config


async def _bench_gateway(scenario, config) -> dict:
    """In-process: the decision loop without transport overhead."""
    gateway = MatchingGateway(scenario=scenario, algorithm="ramcom", config=config)
    await gateway.start()
    latencies: list[float] = []
    watch = Stopwatch().start()
    decided = 0
    for event in scenario.events:
        gateway.clock.advance_to(event.time)
        if event.kind is EventKind.WORKER:
            await gateway.submit_worker(event.worker)
        else:
            outcome = await gateway.submit_request(event.request)
            latencies.append(outcome.latency_ms)
            decided += 1
    elapsed = watch.stop()
    await gateway.drain()
    return _section(decided, elapsed, latencies)


async def _bench_tcp(scenario, config) -> dict:
    """Full stack: JSONL codec + loopback TCP + the decision loop."""
    server = MatchingServer(
        MatchingGateway(scenario=scenario, algorithm="ramcom", config=config)
    )
    host, port = await server.start()
    latencies: list[float] = []
    decided = 0
    try:
        async with GatewayClient(host, port) as client:
            watch = Stopwatch().start()
            for event in scenario.events:
                if event.kind is EventKind.WORKER:
                    await client.submit_worker(event.worker)
                else:
                    outcome = await client.submit_request(event.request)
                    latencies.append(outcome.latency_ms)
                    decided += 1
            elapsed = watch.stop()
            await client.drain()
    finally:
        await server.stop()
    return _section(decided, elapsed, latencies)


def _section(decided: int, elapsed: float, latencies: list[float]) -> dict:
    return {
        "requests": decided,
        "elapsed_seconds": elapsed,
        "requests_per_second": decided / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
        },
    }


def run_service_benchmark(quick: bool = False) -> dict:
    """The full payload (both modes); ``quick`` shrinks the trace for CI."""
    requests, workers = (300, 100) if quick else (2000, 500)
    scenario, config = _build(requests, workers)
    payload = {
        "benchmark": "service",
        "schema": 1,
        "mode": "quick" if quick else "full",
        "gateway": asyncio.run(_bench_gateway(scenario, config)),
        "tcp": asyncio.run(_bench_tcp(scenario, config)),
    }
    return payload


def render_report(payload: dict) -> str:
    lines = [f"service benchmark ({payload['mode']})"]
    for section in ("gateway", "tcp"):
        row = payload[section]
        latency = row["latency_ms"]
        lines.append(
            f"  {section:8s} {row['requests_per_second']:>9.0f} req/s   "
            f"p50 {latency['p50']:.3f} ms   p95 {latency['p95']:.3f} ms   "
            f"p99 {latency['p99']:.3f} ms   ({row['requests']} requests)"
        )
    return "\n".join(lines)


def test_service_throughput_sane():
    """Pytest entry point: the service keeps interactive decision latency."""
    payload = run_service_benchmark(quick=True)
    for section in ("gateway", "tcp"):
        row = payload[section]
        assert row["requests"] > 0
        # Conservative floors for noisy CI runners; BENCH_service.json
        # records the real margins (thousands of req/s, sub-ms p95).
        assert row["requests_per_second"] > 50
        assert row["latency_ms"]["p95"] < 250.0
    # Transport overhead must not dominate the decision cost.
    assert (
        payload["tcp"]["requests_per_second"]
        > payload["gateway"]["requests_per_second"] * 0.05
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes for CI smoke"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="write the JSON payload here"
    )
    args = parser.parse_args(argv)
    payload = run_service_benchmark(quick=args.quick)
    print(render_report(payload))
    if args.output:
        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"saved: {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
