"""Service benchmark: sustained throughput and end-to-end decision latency.

Thin runner around :mod:`repro.experiments.service_bench` (the core lives
in the package so ``com-repro bench --service`` shares it).  Three modes
are measured: the in-process gateway, the gateway with the ``COMWAL1``
write-ahead journal enabled, and the full JSONL-over-TCP stack — plus the
journal-overhead ratio gated at 15%.

The repo-root ``BENCH_service.json`` is the checked-in reference::

    PYTHONPATH=src python benchmarks/bench_service.py --output BENCH_service.json

CI smoke (quick sizes, sanity thresholds only)::

    PYTHONPATH=src python benchmarks/bench_service.py --quick

Gate the journal overhead against the reference::

    PYTHONPATH=src python benchmarks/bench_service.py --quick --check BENCH_service.json

Also runnable through pytest (``test_service_throughput_sane``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.service_bench import (
    check_service_regression,
    render_service_report,
    run_service_benchmark,
)


def test_service_throughput_sane():
    """Pytest entry point: the service keeps interactive decision latency."""
    payload = run_service_benchmark(quick=True)
    for section in ("gateway", "gateway_journal", "tcp"):
        row = payload[section]
        assert row["requests"] > 0
        # Conservative floors for noisy CI runners; BENCH_service.json
        # records the real margins (thousands of req/s, sub-ms p95).
        assert row["requests_per_second"] > 50
        assert row["latency_ms"]["p95"] < 250.0
    # Transport overhead must not dominate the decision cost.
    assert (
        payload["tcp"]["requests_per_second"]
        > payload["gateway"]["requests_per_second"] * 0.05
    )
    # Loose sanity floor on the durability cost; the strict 15% budget is
    # gated by `bench --service --check` where runner noise is visible.
    assert payload["journal_overhead"]["throughput_ratio"] > 0.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes for CI smoke"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="write the JSON payload here"
    )
    parser.add_argument(
        "--check",
        type=str,
        default=None,
        help="gate the journal-overhead ratio against this reference JSON "
        "(e.g. BENCH_service.json); exit 1 on regression",
    )
    args = parser.parse_args(argv)
    payload = run_service_benchmark(quick=args.quick)
    print(render_service_report(payload))
    if args.output:
        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"saved: {args.output}")
    if args.check:
        failures = check_service_regression(payload, args.check)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"OK: journal overhead within budget of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
