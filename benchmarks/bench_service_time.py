"""Bench: service-time models — constant occupation vs travel-aware.

The paper's model (and our tables) occupies a worker for a constant
interval per service.  The travel-aware extension makes occupation =
pickup travel + fare-proportional trip time, which couples *request value*
to *capacity consumption*: expensive rides tie workers up longer.  This
bench quantifies the effect and checks the COM comparison survives it.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import bench_experiment_config

from repro.core import Simulator, TravelAwareServiceTime
from repro.core.registry import algorithm_factory
from repro.experiments.metrics import AlgorithmMetrics, average_metrics
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

ALGORITHMS = ("tota", "demcom", "ramcom")


def run_models():
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(request_count=800, worker_count=200, city_km=8.0)
    ).build(seed=9)
    config = bench_experiment_config()
    rows: dict[tuple[str, str], AlgorithmMetrics] = {}
    models = {
        "constant-30min": None,  # plain service_duration=1800
        "travel-aware": TravelAwareServiceTime(
            speed_kmh=25.0, seconds_per_value=60.0, jitter=0.1
        ),
    }
    for label, model in models.items():
        for name in ALGORITHMS:
            per_seed = []
            for seed in config.seeds:
                simulator_config = replace(
                    config.simulator_config(seed), service_model=model
                )
                result = Simulator(simulator_config).run(
                    scenario, algorithm_factory(name)
                )
                per_seed.append(AlgorithmMetrics.from_simulation(result))
            rows[(label, name)] = average_metrics(per_seed)
    return rows


def test_service_time_models(benchmark):
    rows = benchmark.pedantic(run_models, rounds=1, iterations=1)
    table = TextTable(
        ["Service model", "Algorithm", "Revenue", "Completed", "|CoR|"],
        title="Constant vs travel-aware worker occupation",
    )
    for (label, name), row in rows.items():
        table.add_row(
            [
                label,
                row.algorithm,
                round(row.total_revenue),
                round(row.total_completed),
                row.cooperative,
            ]
        )
    print()
    print(table.render())

    # The comparison's ordering survives the occupation model.
    for label in ("constant-30min", "travel-aware"):
        tota = rows[(label, "tota")].total_revenue
        ramcom = rows[(label, "ramcom")].total_revenue
        assert ramcom > tota
    # Travel-aware occupation (value-coupled) changes throughput: the two
    # models must actually differ, or the knob is dead.
    assert (
        rows[("constant-30min", "tota")].total_completed
        != rows[("travel-aware", "tota")].total_completed
    )
