"""Bench: Table IV's value-distribution dimension (real vs normal).

The paper sweeps two request-value distributions — the empirical fare
distribution ("real") and a normal — and reports that "the default value
has little influence to the experimental results on scalability".  This
bench runs the default synthetic configuration under both and asserts the
comparison's shape is distribution-invariant.
"""

from __future__ import annotations

from conftest import bench_experiment_config

from repro.experiments.harness import run_comparison
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

ALGORITHMS = ["tota", "demcom", "ramcom"]


def run_both():
    results = {}
    for distribution in ("real", "normal"):
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(
                request_count=1000,
                worker_count=250,
                city_km=10.0,
                value_distribution=distribution,
            )
        ).build(seed=6)
        rows = run_comparison(scenario, ALGORITHMS, bench_experiment_config())
        results[distribution] = {name: row for name, row in zip(ALGORITHMS, rows)}
    return results


def test_value_distributions(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = TextTable(
        ["Distribution", "Algorithm", "Revenue", "Completed", "AcpRt", "v'/v"],
        title="Table IV value distributions — real vs normal",
    )
    for distribution, rows in results.items():
        for name in ALGORITHMS:
            row = rows[name]
            table.add_row(
                [
                    distribution,
                    row.algorithm,
                    round(row.total_revenue),
                    round(row.total_completed),
                    row.acceptance_ratio,
                    row.payment_rate,
                ]
            )
    print()
    print(table.render())

    for distribution, rows in results.items():
        # The ordering is distribution-invariant (the paper's claim).
        assert (
            rows["ramcom"].total_revenue
            > rows["demcom"].total_revenue * 0.97
        ), distribution
        assert rows["demcom"].total_revenue > rows["tota"].total_revenue, distribution
        assert rows["ramcom"].acceptance_ratio > rows["demcom"].acceptance_ratio

    # The normal distribution is tighter around its mean, so completed
    # counts stay comparable even though individual values differ.
    real_completed = results["real"]["tota"].total_completed
    normal_completed = results["normal"]["tota"].total_completed
    assert abs(real_completed - normal_completed) / real_completed < 0.2
