"""The paper's published numbers (Tables V-VII), used by the benches to
print paper-vs-measured comparisons and to assert the reproduced *shape*.

Revenues are in units of 10^6 CNY exactly as printed in the paper; request
counts are raw.  Our experiments run scaled-down simulated traces, so the
comparison normalizes both sides by their TOTA row ("who wins, by roughly
what factor") rather than comparing absolute CNY.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperRow:
    """One published table row."""

    revenue_didi_m: float
    revenue_yueche_m: float
    response_ms: float
    completed_didi: int
    completed_yueche: int
    cooperative: int | None = None
    acceptance: float | None = None
    payment_rate: float | None = None

    @property
    def total_revenue_m(self) -> float:
        return self.revenue_didi_m + self.revenue_yueche_m

    @property
    def total_completed(self) -> int:
        return self.completed_didi + self.completed_yueche


#: Table V — RDC10 + RYC10 (Chengdu, Oct 2016).
TABLE_V = {
    "OFF": PaperRow(1.752, 1.743, 0.34, 91_321, 90_589),
    "TOTA": PaperRow(1.343, 1.348, 0.43, 68_689, 68_453),
    "DemCOM": PaperRow(1.369, 1.372, 0.43, 71_931, 71_721, 7_077, 0.16, 0.72),
    "RamCOM": PaperRow(1.436, 1.437, 0.56, 69_186, 68_560, 72_417, 0.66, 0.81),
}

#: Table VI — RDC11 + RYC11 (Chengdu, Nov 2016).
TABLE_VI = {
    "OFF": PaperRow(1.914, 1.924, 0.32, 100_973, 100_448),
    "TOTA": PaperRow(1.612, 1.594, 0.52, 81_912, 81_706),
    "DemCOM": PaperRow(1.621, 1.614, 0.52, 85_737, 85_460, 6_220, 0.17, 0.70),
    "RamCOM": PaperRow(1.645, 1.646, 0.75, 82_385, 82_760, 91_699, 0.75, 0.82),
}

#: Table VII — RDX11 + RYX11 (Xi'an, Nov 2016).
TABLE_VII = {
    "OFF": PaperRow(1.103, 1.102, 0.52, 57_611, 57_638),
    "TOTA": PaperRow(0.512, 0.509, 0.50, 24_695, 24_907),
    "DemCOM": PaperRow(0.525, 0.523, 0.53, 26_818, 26_736, 6_531, 0.09, 0.77),
    "RamCOM": PaperRow(0.555, 0.549, 0.55, 26_730, 26_666, 16_487, 0.25, 0.82),
}

PAPER_TABLES = {"V": TABLE_V, "VI": TABLE_VI, "VII": TABLE_VII}
