"""Bench: Fig. 5(a)/(e)/(i) — total revenue vs |R|, |W| and rad.

Paper shapes asserted:

* 5(a): revenue grows with |R| for every algorithm; RamCOM's growth is the
  largest, TOTA's the smallest (workers run out, COM borrows).
* 5(e): revenue grows with |W| then saturates once workers outnumber the
  demand (paper: |W| > 1000 at |R| = 2500).
* 5(i): revenue roughly flat-to-slightly-increasing in rad; RamCOM on top.
"""

from __future__ import annotations

from figure_common import axis_panels, mostly_increasing, series


def test_fig5a_revenue_vs_requests(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("requests",), rounds=1, iterations=1
    )
    panel = panels["revenue"]
    print()
    print(panel.render())
    for algorithm in ("tota", "demcom", "ramcom"):
        assert mostly_increasing(series(panel, algorithm))
    # COM's advantage widens as workers become scarce: compare the revenue
    # gain from the first to the last sweep point.
    tota_gain = series(panel, "tota")[-1] / series(panel, "tota")[0]
    ramcom_gain = series(panel, "ramcom")[-1] / series(panel, "ramcom")[0]
    assert ramcom_gain >= tota_gain * 0.95


def test_fig5e_revenue_vs_workers(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("workers",), rounds=1, iterations=1
    )
    panel = panels["revenue"]
    print()
    print(panel.render())
    for algorithm in ("tota", "demcom", "ramcom"):
        values = series(panel, algorithm)
        assert mostly_increasing(values)
        # Saturation: the last doubling of |W| adds far less revenue than
        # the first one.
        first_jump = values[1] - values[0]
        last_jump = values[-1] - values[-2]
        assert last_jump <= max(first_jump, 1.0)


def test_fig5i_revenue_vs_radius(benchmark):
    panels = benchmark.pedantic(
        axis_panels, args=("radius",), rounds=1, iterations=1
    )
    panel = panels["revenue"]
    print()
    print(panel.render())
    # Larger service disks can only help; slight increase expected.
    for algorithm in ("tota", "demcom", "ramcom"):
        values = series(panel, algorithm)
        assert values[-1] >= values[0] * 0.9
    # RamCOM stays on top across the radius sweep.
    for index in range(len(panel.x_values)):
        assert series(panel, "ramcom")[index] >= series(panel, "tota")[index] * 0.95
