"""Shared machinery for the Fig.-5 benches.

One sweep per axis (module-cached) produces all four metric panels; each
bench prints its panel and asserts the paper's qualitative shape for that
(axis, metric) pair.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import bench_experiment_config, figure_sweep

from repro.experiments.figures import FigurePanel, run_figure5_axis

ALGORITHMS = ("tota", "demcom", "ramcom")


@lru_cache(maxsize=None)
def axis_panels(axis: str) -> dict[str, FigurePanel]:
    """All four metric panels for one axis (cached across benches)."""
    return run_figure5_axis(
        axis,
        values=figure_sweep(axis),
        config=bench_experiment_config(),
        algorithms=list(ALGORITHMS),
    )


def series(panel: FigurePanel, algorithm: str) -> list[float]:
    """One algorithm's data series."""
    return panel.series[algorithm]


def mostly_increasing(values: list[float], tolerance: float = 0.1) -> bool:
    """True if the series trends upward (each step may dip by at most
    ``tolerance`` of the running maximum — sweeps are stochastic)."""
    running_max = values[0]
    for value in values[1:]:
        if value < running_max * (1.0 - tolerance) - 1e-9:
            return False
        running_max = max(running_max, value)
    return values[-1] > values[0] * (1.0 - tolerance)


def roughly_flat(values: list[float], band: float = 0.6) -> bool:
    """True if max/min stays within a (generous) multiplicative band."""
    low, high = min(values), max(values)
    if high <= 0:
        return True
    return (high - low) <= band * high
