"""Tests for the shared-sweep figure runner (run_figure5_axis)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentConfig
from repro.experiments.figures import run_figure5_axis, run_figure5_panel
from repro.workloads import SyntheticWorkloadConfig

TINY = ExperimentConfig(seeds=(0,))
BASE = SyntheticWorkloadConfig(request_count=40, worker_count=16, city_km=4.0)


class TestRunFigure5Axis:
    def test_returns_all_four_metrics(self):
        panels = run_figure5_axis(
            "radius",
            values=(1.0, 2.0),
            base=BASE,
            config=TINY,
            algorithms=["tota", "ramcom"],
        )
        assert set(panels) == {"revenue", "time", "memory", "acceptance"}
        for panel in panels.values():
            assert panel.x_values == [1.0, 2.0]
            assert set(panel.series) == {"tota", "ramcom"}

    def test_panel_ids_assigned(self):
        panels = run_figure5_axis(
            "workers", values=(10,), base=BASE, config=TINY, algorithms=["tota"]
        )
        assert panels["revenue"].panel_id == "5(e)"
        assert panels["acceptance"].panel_id == "5(h)"

    def test_unknown_axis(self):
        with pytest.raises(ConfigurationError):
            run_figure5_axis("altitude")

    def test_consistent_with_single_panel_runner(self):
        """The shared sweep produces exactly the per-panel runner's data
        (same seeds, same scenarios)."""
        kwargs = dict(
            values=(1.0,), base=BASE, config=TINY, algorithms=["tota", "demcom"]
        )
        shared = run_figure5_axis("radius", **kwargs)
        single = run_figure5_panel("radius", "revenue", **kwargs)
        assert shared["revenue"].series == single.series
