"""Tests for the worker shift-departure extension."""

from __future__ import annotations

import pytest

from repro.baselines import TOTA
from repro.core import Simulator, SimulatorConfig, validate_matching
from repro.core.entities import Worker
from repro.errors import ConfigurationError
from repro.geo.point import Point

from conftest import make_request, make_scenario, make_worker


def shift_worker(worker_id="w", platform="A", t=0.0, departure=100.0, **kwargs):
    base = make_worker(worker_id, platform, t, **kwargs)
    return Worker(
        worker_id=base.worker_id,
        platform_id=base.platform_id,
        arrival_time=base.arrival_time,
        location=base.location,
        service_radius=base.service_radius,
        shareable=base.shareable,
        departure_time=departure,
    )


class TestWorkerShift:
    def test_departure_before_arrival_raises(self):
        with pytest.raises(ConfigurationError):
            shift_worker(t=10.0, departure=5.0)

    def test_on_shift_at(self):
        worker = shift_worker(t=5.0, departure=10.0)
        assert not worker.on_shift_at(4.0)
        assert worker.on_shift_at(5.0)
        assert worker.on_shift_at(10.0)
        assert not worker.on_shift_at(10.1)

    def test_no_departure_means_always_on(self):
        worker = make_worker(t=5.0)
        assert worker.on_shift_at(1e9)


class TestSimulatorDepartures:
    def test_departed_worker_not_matched(self):
        workers = [shift_worker("w", t=0.0, departure=50.0)]
        requests = [make_request("r", t=100.0)]
        scenario = make_scenario(workers, requests)
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, TOTA
        )
        assert result.total_completed == 0
        assert result.total_rejected == 1

    def test_worker_matched_within_shift(self):
        workers = [shift_worker("w", t=0.0, departure=50.0)]
        requests = [make_request("r", t=25.0)]
        scenario = make_scenario(workers, requests)
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, TOTA
        )
        assert result.total_completed == 1
        validate_matching(result.all_records())

    def test_departure_is_exclusive_of_boundary(self):
        # Departure fires strictly *before* the next event's time; a
        # request arriving exactly at the departure instant still matches.
        workers = [shift_worker("w", t=0.0, departure=25.0)]
        requests = [make_request("r", t=25.0)]
        scenario = make_scenario(workers, requests)
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, TOTA
        )
        assert result.total_completed == 1

    def test_no_reentry_past_shift_end(self):
        workers = [shift_worker("w", t=0.0, departure=150.0)]
        requests = [
            make_request("r1", t=10.0),
            # Service 10->110 ends inside the shift: reentry happens.
            make_request("r2", t=120.0),
            # Service 120->220 would end past the shift: no second reentry.
            make_request("r3", t=300.0),
        ]
        scenario = make_scenario(workers, requests)
        result = Simulator(
            SimulatorConfig(
                worker_reentry=True,
                service_duration=100.0,
                measure_response_time=False,
            )
        ).run(scenario, TOTA)
        assert result.total_completed == 2
        assert result.total_rejected == 1

    def test_busy_worker_is_not_force_departed(self):
        """A worker mid-service at shift end completes the service (the
        departure queue only removes *waiting* workers)."""
        workers = [shift_worker("w", t=0.0, departure=50.0)]
        requests = [make_request("r1", t=40.0), make_request("r2", t=60.0)]
        scenario = make_scenario(workers, requests)
        result = Simulator(
            SimulatorConfig(
                worker_reentry=True,
                service_duration=100.0,
                measure_response_time=False,
            )
        ).run(scenario, TOTA)
        # r1 served (assignment at t=40 < departure); r2 rejected (worker
        # busy, and past shift anyway).
        assert result.total_completed == 1
        assert result.all_records()[0].request.request_id == "r1"

    def test_departed_outer_worker_not_borrowed(self):
        from repro.core import DemCOM
        from repro.core.events import EventStream
        from repro.core.simulator import Scenario
        from conftest import make_fixed_rate_oracle

        outer = Worker(
            worker_id="b",
            platform_id="B",
            arrival_time=0.0,
            location=Point(0.1, 0.0),
            service_radius=1.0,
            departure_time=10.0,
        )
        requests = [make_request("r", "A", 50.0, value=10.0)]
        scenario = Scenario(
            events=EventStream.from_entities([outer], requests),
            oracle=make_fixed_rate_oracle([outer], rate=0.1),
            platform_ids=["A", "B"],
        )
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, DemCOM
        )
        assert result.total_completed == 0
