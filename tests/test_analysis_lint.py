"""comlint: fixture-driven rule tests plus suppression/baseline/CLI checks.

Each file under ``tests/lint_fixtures/`` is crafted to fire *exactly* its
intended rule (and the suppressed/clean fixtures to fire nothing), so any
heuristic drift in the checker shows up as a precise fixture diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    lint_paths,
    lint_source,
    partition_violations,
    render_json,
    rule_ids,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: fixture file -> the one rule it must fire (and nothing else).
EXPECTED = {
    "det001_direct_random.py": "DET001",
    "det002_wall_clock.py": "DET002",
    "det003_set_iteration.py": "DET003",
    "det004_builtin_hash.py": "DET004",
    "det005_numpy_random.py": "DET005",
    "obs001_unguarded_probe.py": "OBS001",
    "obs002_raw_event_serialization.py": "OBS002",
    "asy001_blocking_call.py": "ASY001",
    "asy002_unawaited_coroutine.py": "ASY002",
    "asy003_orphaned_task.py": "ASY003",
    "asy004_loop_owned_mutation.py": "ASY004",
    "wire001_schema_parity.py": "WIRE001",
    "err001_bare_except.py": "ERR001",
    "err002_swallowed_exception.py": "ERR002",
    "api001_mutable_default.py": "API001",
    "api002_mutable_dataclass_default.py": "API002",
}


@pytest.mark.parametrize("fixture,rule", sorted(EXPECTED.items()))
def test_fixture_fires_exactly_its_rule(fixture: str, rule: str) -> None:
    violations = lint_paths([FIXTURES / fixture], root=FIXTURES)
    assert [v.rule_id for v in violations] == [rule]


@pytest.mark.parametrize("fixture", ["suppressed.py", "clean.py"])
def test_quiet_fixtures_fire_nothing(fixture: str) -> None:
    assert lint_paths([FIXTURES / fixture], root=FIXTURES) == []


def test_every_rule_has_a_fixture() -> None:
    assert sorted(EXPECTED.values()) == sorted(rule_ids())


def test_directory_scan_covers_all_fixtures() -> None:
    violations = lint_paths([FIXTURES], root=FIXTURES)
    fired = {v.rule_id for v in violations}
    assert fired == set(rule_ids())
    assert len(violations) == len(EXPECTED)


def test_file_level_suppression() -> None:
    source = (
        "# comlint: disable-file=DET004\n"
        "def a(x):\n"
        "    return hash(x)\n"
        "def b(x):\n"
        "    return hash(x)\n"
    )
    assert lint_source(source, "mod.py") == []


def test_disable_all_on_line() -> None:
    source = "def a(x, acc=[]):  # comlint: disable=all\n    return acc\n"
    assert lint_source(source, "mod.py") == []


def test_syntax_error_becomes_e999() -> None:
    violations = lint_source("def broken(:\n", "mod.py")
    assert [v.rule_id for v in violations] == ["E999"]


def test_obs001_guard_patterns_pass() -> None:
    guarded = (
        "def emit(probe, pid):\n"
        "    if probe.enabled:\n"
        "        probe.count('x', 1, platform=pid)\n"
    )
    early_return = (
        "def emit(probe, pid):\n"
        "    if not probe.enabled:\n"
        "        return\n"
        "    probe.count('x', 1, platform=pid)\n"
    )
    ifexp = (
        "def emit(probe, pid):\n"
        "    span = probe.span('x') if probe.enabled else None\n"
        "    if span is not None:\n"
        "        probe.count('x', 1)\n"
    )
    for source in (guarded, early_return, ifexp):
        assert lint_source(source, "mod.py") == []


def test_det005_catches_aliased_and_lazy_numpy_random() -> None:
    aliased_module = (
        "import numpy.random as npr\n"
        "def draw():\n"
        "    return npr.default_rng(3)\n"
    )
    from_import = (
        "from numpy import random\n"
        "def draw():\n"
        "    return random.default_rng(3)\n"
    )
    submodule_from = "from numpy.random import default_rng\n"
    lazy_after_use = (
        "def draw():\n"
        "    return np.random.default_rng(3)\n"
        "def _load():\n"
        "    import numpy as np\n"
        "    return np\n"
    )
    for source in (aliased_module, from_import, submodule_from, lazy_after_use):
        violations = lint_source(source, "mod.py")
        assert [v.rule_id for v in violations] == ["DET005"], source


def test_det005_allows_the_kernel_seam() -> None:
    source = (
        "import numpy as np\n"
        "def make_generator(seed):\n"
        "    return np.random.Generator(np.random.PCG64(seed))\n"
    )
    assert lint_source(source, "core/payment_kernel.py") == []
    assert [v.rule_id for v in lint_source(source, "core/other.py")] == [
        "DET005",
        "DET005",
    ]


def test_det003_sorted_iteration_passes() -> None:
    source = (
        "def order(items):\n"
        "    for key in sorted(set(items)):\n"
        "        yield key\n"
        "    return [k for k in sorted(items.keys())]\n"
    )
    assert lint_source(source, "mod.py") == []


def test_err002_reraise_passes() -> None:
    source = (
        "def guard(action):\n"
        "    try:\n"
        "        return action()\n"
        "    except Exception as error:\n"
        "        raise RuntimeError('context') from error\n"
    )
    assert lint_source(source, "mod.py") == []


def test_obs002_import_after_call_still_fires() -> None:
    # This codebase imports lazily inside functions, so the event-sink
    # import often appears *below* the offending call in source order.
    source = (
        "import json\n"
        "def save(row):\n"
        "    return json.dumps(row)\n"
        "def sink():\n"
        "    from repro.obs.events import EventLog\n"
        "    return EventLog()\n"
    )
    assert [v.rule_id for v in lint_source(source, "mod.py")] == ["OBS002"]


def test_obs002_quiet_without_event_sink_import() -> None:
    source = "import json\ndef save(row):\n    return json.dumps(row)\n"
    assert lint_source(source, "mod.py") == []


def test_obs002_canonical_encoder_passes() -> None:
    source = (
        "from repro.obs.events import encode_canonical\n"
        "def save(row):\n"
        "    return encode_canonical(row)\n"
    )
    assert lint_source(source, "mod.py") == []


def test_obs002_repro_obs_reexport_counts() -> None:
    source = (
        "import json\n"
        "from repro.obs import EventLog\n"
        "def save(row):\n"
        "    return json.dumps(row)\n"
    )
    assert [v.rule_id for v in lint_source(source, "mod.py")] == ["OBS002"]


def test_allowlisted_paths_are_exempt() -> None:
    source = "import random\nSTREAM = random.Random(7)\n"
    assert lint_source(source, "src/repro/utils/rng.py") == []
    assert [v.rule_id for v in lint_source(source, "src/repro/core/x.py")] == [
        "DET001"
    ]


def test_baseline_partition_and_roundtrip(tmp_path: Path) -> None:
    violations = lint_paths([FIXTURES], root=FIXTURES)
    baseline = Baseline.from_violations(violations[:3])
    new, baselined = partition_violations(violations, baseline)
    assert len(baselined) == 3 and len(new) == len(violations) - 3

    path = tmp_path / "baseline.json"
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert len(reloaded) == 3
    _, rehit = partition_violations(violations, reloaded)
    assert len(rehit) == 3


def test_shipped_baseline_is_empty() -> None:
    shipped = Baseline.load(Path(__file__).parents[1] / "comlint.baseline.json")
    assert len(shipped) == 0


def test_render_json_shape() -> None:
    violations = lint_paths([FIXTURES / "det001_direct_random.py"], root=FIXTURES)
    payload = json.loads(render_json(violations, baselined=[]))
    assert payload["total"] == 1
    assert payload["counts"] == {"DET001": 1}
    assert payload["violations"][0]["rule"] == "DET001"


def test_cli_lint_exit_codes(tmp_path, monkeypatch, capsys) -> None:
    target = tmp_path / "pkg"
    target.mkdir()
    (target / "bad.py").write_text(
        "def f(x):\n    return hash(x)\n", encoding="utf-8"
    )
    monkeypatch.chdir(tmp_path)

    assert main(["lint", "pkg"]) == 1
    assert "DET004" in capsys.readouterr().out

    assert main(["lint", "--update-baseline", "pkg"]) == 0
    capsys.readouterr()
    assert main(["lint", "pkg"]) == 0
    assert "baselined" in capsys.readouterr().out
    # --strict ignores the baseline: the legacy debt still fails the build.
    assert main(["lint", "--strict", "pkg"]) == 1
    capsys.readouterr()


def test_jobs_fanout_matches_serial() -> None:
    serial = lint_paths([FIXTURES], root=FIXTURES)
    fanned = lint_paths([FIXTURES], root=FIXTURES, jobs=2)
    assert fanned == serial
    # jobs=0 means "one worker per core"; the report must not change.
    assert lint_paths([FIXTURES], root=FIXTURES, jobs=0) == serial


def test_negative_jobs_is_a_config_error() -> None:
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        lint_paths([FIXTURES], root=FIXTURES, jobs=-1)


def test_cli_lint_jobs_flag(tmp_path, monkeypatch, capsys) -> None:
    target = tmp_path / "pkg"
    target.mkdir()
    (target / "bad.py").write_text(
        "def f(x):\n    return hash(x)\n", encoding="utf-8"
    )
    (target / "worse.py").write_text(
        "import random\nSTREAM = random.Random()\n", encoding="utf-8"
    )
    monkeypatch.chdir(tmp_path)

    assert main(["lint", "pkg"]) == 1
    serial_out = capsys.readouterr().out
    assert main(["lint", "--jobs", "2", "pkg"]) == 1
    assert capsys.readouterr().out == serial_out


def test_cli_lint_src_is_clean() -> None:
    repo_root = Path(__file__).parents[1]
    violations = lint_paths([repo_root / "src"], root=repo_root)
    assert violations == []
