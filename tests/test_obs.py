"""Tests for the telemetry substrate (repro.obs) and its engine wiring."""

from __future__ import annotations

import io
import json

import pytest

from repro.core import DemCOM, RamCOM, Simulator, SimulatorConfig
from repro.experiments.metrics import AlgorithmMetrics, average_metrics
from repro.experiments.reporting import metrics_to_dict
from repro.obs import (
    NULL_PROBE,
    MetricsRegistry,
    MetricsSnapshot,
    NullProbe,
    Telemetry,
    TelemetryProbe,
    TelemetrySummary,
    Tracer,
)
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

from conftest import make_request, make_scenario, make_worker


def small_scenario(seed: int = 3):
    config = SyntheticWorkloadConfig(request_count=80, worker_count=24, city_km=5.0)
    return SyntheticWorkload(config).build(seed=seed)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("decisions_total")
        counter.inc(platform="A", kind="serve_inner")
        counter.inc(2.0, platform="A", kind="serve_inner")
        counter.inc(platform="B", kind="reject")
        assert counter.value(platform="A", kind="serve_inner") == 3.0
        assert counter.value(platform="B", kind="reject") == 1.0
        assert counter.value(platform="C") == 0.0

    def test_label_order_is_irrelevant(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("waiting_workers")
        gauge.set(5, platform="A")
        gauge.add(-2, platform="A")
        assert gauge.value(platform="A") == 3.0


class TestHistogram:
    def test_observe_counts_and_sum(self):
        histogram = MetricsRegistry().histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            histogram.observe(value, peer="B")
        assert histogram.count(peer="B") == 3
        assert histogram.sum(peer="B") == pytest.approx(22.5)
        (series,) = histogram.series().values()
        # One observation per bucket: <=1, <=10, overflow.
        assert series.counts == [1, 1, 1]
        assert series.min == 0.5 and series.max == 20.0

    def test_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", bounds=(2.0, 1.0))

    def test_conflicting_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(5.0, 6.0))


class TestSnapshot:
    def test_equal_histories_serialise_identically(self):
        def fill(registry):
            registry.counter("c").inc(platform="B")
            registry.counter("c").inc(platform="A")
            registry.histogram("h").observe(0.5, peer="B")
            registry.gauge("g").set(7)

        first, second = MetricsRegistry(), MetricsRegistry()
        fill(first)
        fill(second)
        assert json.dumps(first.snapshot().as_dict(), sort_keys=True) == json.dumps(
            second.snapshot().as_dict(), sort_keys=True
        )

    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3, platform="A")
        registry.histogram("h").observe(0.2)
        snapshot = registry.snapshot()
        rebuilt = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snapshot.as_dict()))
        )
        assert rebuilt.as_dict() == snapshot.as_dict()
        assert rebuilt.counter_value("c", platform="A") == 3.0

    def test_merge_equals_shared_registry(self):
        shard_a, shard_b, shared = (
            MetricsRegistry(),
            MetricsRegistry(),
            MetricsRegistry(),
        )
        for registry in (shard_a, shared):
            registry.counter("decisions_total").inc(2, platform="A")
            registry.histogram("rpc").observe(0.05, peer="B")
        for registry in (shard_b, shared):
            registry.counter("decisions_total").inc(1, platform="A")
            registry.counter("decisions_total").inc(4, platform="B")
            registry.histogram("rpc").observe(3.0, peer="B")
        merged = shard_a.snapshot().merge(shard_b.snapshot())
        assert merged.as_dict() == shared.snapshot().as_dict()

    def test_merge_with_empty_is_identity(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(2, platform="A")
        registry.histogram("h").observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot.merge(MetricsSnapshot()).as_dict() == snapshot.as_dict()
        assert MetricsSnapshot().merge(snapshot).as_dict() == snapshot.as_dict()

    def test_merge_rejects_mismatched_bounds(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        second.histogram("h", bounds=(3.0, 4.0)).observe(0.5)
        with pytest.raises(ValueError):
            first.snapshot().merge(second.snapshot())


class TestTracer:
    def test_span_lifecycle(self):
        tracer = Tracer(wall_clock=False)
        with tracer.span("decision", 12.5, tid="A", request="r1") as span:
            span.annotate(kind="serve_inner")
        tracer.instant("flush", 20.0, resolved=2)
        records = tracer.records()
        assert tracer.event_count == 2
        span_record, instant_record = records
        assert span_record["sim_time"] == 12.5
        assert span_record["args"]["kind"] == "serve_inner"
        assert span_record["end_seq"] > span_record["seq"]
        assert instant_record["type"] == "instant"
        assert "wall" not in span_record and "wall" not in instant_record
        assert tracer.span_counts() == {"decision": 1}

    def test_end_is_idempotent(self):
        tracer = Tracer(wall_clock=False)
        span = tracer.span("s", 0.0)
        span.end()
        end_seq = tracer.records()[0]["end_seq"]
        span.end()
        assert tracer.records()[0]["end_seq"] == end_seq

    def test_wall_clock_records_profiling_fields(self):
        tracer = Tracer(wall_clock=True)
        with tracer.span("s", 1.0):
            pass
        (record,) = tracer.records()
        assert record["wall"]["start_us"] >= 0.0
        assert record["wall"]["dur_us"] >= 0.0

    def test_jsonl_deterministic_without_wall_clock(self):
        def trace_once() -> str:
            tracer = Tracer(wall_clock=False)
            with tracer.span("decision", 5.0, tid="A", value=3.25):
                tracer.instant("breaker.open", 5.0, category="faults", peer="B")
            buffer = io.StringIO()
            tracer.write_jsonl(buffer)
            return buffer.getvalue()

        assert trace_once() == trace_once()

    def test_chrome_export_shape(self):
        tracer = Tracer(wall_clock=False)
        with tracer.span("decision", 1.0, tid="A"):
            pass
        tracer.instant("flush", 2.0, tid="B")
        buffer = io.StringIO()
        tracer.export_chrome(buffer)
        payload = json.loads(buffer.getvalue())
        events = payload["traceEvents"]
        phases = sorted(event["ph"] for event in events)
        # Two metadata thread-name events (lanes A and B), one complete
        # span, one instant.
        assert phases == ["M", "M", "X", "i"]
        span_event = next(e for e in events if e["ph"] == "X")
        assert span_event["name"] == "decision"
        assert span_event["args"]["sim_time"] == 1.0
        assert span_event["dur"] >= 0.0
        lanes = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert lanes == {"A", "B"}


class TestProbe:
    def test_null_probe_is_inert(self):
        assert NULL_PROBE.enabled is False
        with NULL_PROBE.span("anything", tid="A") as span:
            span.annotate(ignored=1)
        NULL_PROBE.count("c", platform="A")
        NULL_PROBE.observe("h", 1.0)
        NULL_PROBE.gauge("g", 1.0)
        NULL_PROBE.instant("i")

    def test_advance_is_monotone(self):
        probe = NullProbe()
        probe.advance(10.0)
        probe.advance(5.0)
        assert probe.sim_time == 10.0

    def test_telemetry_probe_routes_to_registry(self):
        registry = MetricsRegistry()
        probe = TelemetryProbe(registry)
        assert probe.enabled is True
        probe.count("decisions_total", platform="A", kind="reject")
        probe.observe("decision_seconds", 0.004, platform="A")
        probe.gauge("memory_bytes", 1024.0)
        snapshot = registry.snapshot()
        assert snapshot.counter_value(
            "decisions_total", platform="A", kind="reject"
        ) == 1.0
        assert registry.histogram("decision_seconds").count(platform="A") == 1
        # No tracer attached: spans degrade to the null span, no error.
        with probe.span("decision", tid="A"):
            pass

    def test_telemetry_probe_stamps_sim_time(self):
        tracer = Tracer(wall_clock=False)
        probe = TelemetryProbe(MetricsRegistry(), tracer)
        probe.advance(42.0)
        with probe.span("decision", tid="A"):
            pass
        assert tracer.records()[0]["sim_time"] == 42.0


class TestTelemetryBundle:
    def test_summary_without_tracing(self):
        telemetry = Telemetry()
        telemetry.probe.count("c")
        summary = telemetry.summary()
        assert summary.trace_events == 0
        assert summary.span_counts == {}
        assert summary.counter_value("c") == 1.0

    def test_write_trace_artifacts(self, tmp_path):
        telemetry = Telemetry(tracing=True, wall_clock=False)
        with telemetry.probe.span("decision", tid="A"):
            pass
        telemetry.probe.count("decisions_total", platform="A", kind="reject")
        paths = telemetry.write_trace(tmp_path / "out")
        assert set(paths) == {"trace_jsonl", "trace_chrome", "metrics"}
        jsonl_lines = (
            (tmp_path / "out" / "trace.jsonl").read_text().splitlines()
        )
        assert len(jsonl_lines) == 1
        chrome = json.loads((tmp_path / "out" / "trace.chrome.json").read_text())
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])
        metrics = json.loads((tmp_path / "out" / "metrics.json").read_text())
        assert "decisions_total" in metrics["counters"]

    def test_summary_merge_pools(self):
        first, second = Telemetry(tracing=True), Telemetry(tracing=True)
        first.probe.count("c", platform="A")
        with first.probe.span("decision"):
            pass
        second.probe.count("c", platform="A")
        merged = first.summary().merge(second.summary())
        assert merged.counter_value("c", platform="A") == 2.0
        assert merged.trace_events == first.summary().trace_events
        assert merged.span_counts == {"decision": 1}

    def test_summary_round_trip(self):
        telemetry = Telemetry(tracing=True)
        telemetry.probe.count("c")
        with telemetry.probe.span("s"):
            pass
        summary = telemetry.summary()
        rebuilt = TelemetrySummary.from_dict(
            json.loads(json.dumps(summary.as_dict()))
        )
        assert rebuilt.as_dict() == summary.as_dict()


@pytest.mark.parametrize("factory", [DemCOM, RamCOM])
class TestSimulatorIntegration:
    def test_summary_attached_and_decisions_counted(self, factory):
        scenario = small_scenario()
        telemetry = Telemetry()
        result = Simulator(SimulatorConfig(seed=0, telemetry=telemetry)).run(
            scenario, factory
        )
        assert result.telemetry is not None
        decisions = result.telemetry.metrics.counters["decisions_total"]
        assert sum(e["value"] for e in decisions) == scenario.request_count
        kinds = {dict(e["labels"])["kind"] for e in decisions}
        assert kinds <= {"serve_inner", "serve_outer", "reject", "auto_reject"}

    def test_exchange_rpc_histogram_present(self, factory):
        scenario = small_scenario()
        telemetry = Telemetry()
        Simulator(SimulatorConfig(seed=0, telemetry=telemetry)).run(
            scenario, factory
        )
        histograms = telemetry.summary().metrics.histograms
        assert "exchange_rpc_seconds" in histograms
        assert sum(e["count"] for e in histograms["exchange_rpc_seconds"]) > 0

    def test_telemetry_off_leaves_result_bare(self, factory):
        result = Simulator(SimulatorConfig(seed=0)).run(small_scenario(), factory)
        assert result.telemetry is None

    def test_telemetry_does_not_perturb_results(self, factory):
        scenario = small_scenario()
        plain = Simulator(
            SimulatorConfig(seed=4, measure_response_time=False)
        ).run(scenario, factory)
        traced = Simulator(
            SimulatorConfig(
                seed=4,
                measure_response_time=False,
                telemetry=Telemetry(tracing=True),
            )
        ).run(scenario, factory)
        assert traced.total_revenue == plain.total_revenue
        assert traced.total_completed == plain.total_completed


class TestAlgorithmSpecificMetrics:
    def test_demcom_monte_carlo_counters(self):
        telemetry = Telemetry()
        Simulator(SimulatorConfig(seed=0, telemetry=telemetry)).run(
            small_scenario(), DemCOM
        )
        snapshot = telemetry.snapshot()
        assert snapshot.counter_value("payment_mc_iterations") > 0
        assert snapshot.counter_value("payment_mc_instances") > 0

    def test_ramcom_route_counter(self):
        telemetry = Telemetry()
        scenario = small_scenario()
        Simulator(SimulatorConfig(seed=0, telemetry=telemetry)).run(
            scenario, RamCOM
        )
        routes = telemetry.snapshot().counters.get("ramcom_routes_total", [])
        assert sum(e["value"] for e in routes) == scenario.request_count


class TestDeterministicTrace:
    def test_fixed_seed_traces_are_byte_identical(self, tmp_path):
        scenario = small_scenario(seed=7)

        def run_traced(tag: str) -> bytes:
            telemetry = Telemetry(tracing=True, wall_clock=False)
            Simulator(SimulatorConfig(seed=7, telemetry=telemetry)).run(
                scenario, RamCOM
            )
            telemetry.write_trace(tmp_path / tag)
            return (tmp_path / tag / "trace.jsonl").read_bytes()

        first = run_traced("a")
        second = run_traced("b")
        assert first == second
        assert len(first) > 0

    def test_wall_clock_fields_are_isolated(self):
        """With wall_clock on, nondeterminism lives only under "wall"."""
        scenario = small_scenario(seed=7)
        telemetry = Telemetry(tracing=True, wall_clock=True)
        Simulator(SimulatorConfig(seed=7, telemetry=telemetry)).run(
            scenario, RamCOM
        )
        for record in telemetry.tracer.records():
            deterministic = {k: v for k, v in record.items() if k != "wall"}
            assert "wall" in record
            assert json.dumps(deterministic, sort_keys=True)


class TestReportingIntegration:
    def _metrics_row(self, seed: int) -> AlgorithmMetrics:
        telemetry = Telemetry()
        result = Simulator(SimulatorConfig(seed=seed, telemetry=telemetry)).run(
            small_scenario(), DemCOM
        )
        return AlgorithmMetrics.from_simulation(result)

    def test_metrics_row_carries_summary(self):
        row = self._metrics_row(0)
        assert row.telemetry is not None
        assert row.telemetry.metrics.counters["decisions_total"]

    def test_average_metrics_pools_summaries(self):
        rows = [self._metrics_row(seed) for seed in (0, 1)]
        averaged = average_metrics(rows)
        assert averaged.telemetry is not None
        total = sum(
            e["value"]
            for e in averaged.telemetry.metrics.counters["decisions_total"]
        )
        per_row = [
            sum(
                e["value"]
                for e in row.telemetry.metrics.counters["decisions_total"]
            )
            for row in rows
        ]
        assert total == sum(per_row)

    def test_metrics_to_dict_includes_telemetry(self):
        payload = metrics_to_dict(self._metrics_row(0))
        assert payload["telemetry"] is not None
        assert "counters" in payload["telemetry"]["metrics"]
        assert json.dumps(payload, sort_keys=True)  # JSON-serialisable
        bare = AlgorithmMetrics.from_simulation(
            Simulator(SimulatorConfig(seed=0)).run(small_scenario(), DemCOM)
        )
        assert metrics_to_dict(bare)["telemetry"] is None


class TestResilienceInstrumentation:
    def test_fault_run_emits_fault_metrics(self):
        from repro.faults import FaultPlan

        telemetry = Telemetry(tracing=True)
        plan = FaultPlan(
            seed=5,
            claim_failure_rate=0.5,
            message_delay_rate=0.4,
            worker_dropout_rate=0.3,
            random_outages_per_platform=1,
            outage_duration_s=25.0,
            horizon_s=100.0,
        )
        rng_workers = [
            make_worker(f"{p}-w{i}", p, t=float(i), x=1.0, y=1.0, radius=3.0)
            for p in ("A", "B")
            for i in range(6)
        ]
        rng_requests = [
            make_request(f"r{i}", "A", t=10.0 + i, x=1.0, y=1.0, value=8.0)
            for i in range(20)
        ]
        scenario = make_scenario(
            rng_workers, rng_requests, platform_ids=["A", "B"], seed=5
        )
        Simulator(
            SimulatorConfig(seed=5, fault_plan=plan, telemetry=telemetry)
        ).run(scenario, DemCOM)
        snapshot = telemetry.snapshot()
        claim_outcomes = {
            dict(e["labels"]).get("outcome")
            for e in snapshot.counters.get("claims_total", [])
        }
        assert claim_outcomes  # claims were instrumented
        # The RPC histogram carries per-peer series on the fault path.
        assert "exchange_rpc_seconds" in snapshot.histograms
