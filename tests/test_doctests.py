"""Run the executable examples embedded in module docstrings.

Keeps every ``>>>`` snippet in the documentation honest; modules whose
examples are illustrative-only mark them ``# doctest: +SKIP``.
"""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.graph.hopcroft_karp
import repro.graph.maxflow
import repro.graph.mincostflow
import repro.utils.ascii_chart
import repro.utils.memory
import repro.utils.rng

MODULES = [
    repro,
    repro.graph.hopcroft_karp,
    repro.graph.maxflow,
    repro.graph.mincostflow,
    repro.utils.ascii_chart,
    repro.utils.memory,
    repro.utils.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module}"
