"""Tests for the experiment harness: metrics, tables, figures, CR studies
and ablations (all on deliberately tiny instances)."""

from __future__ import annotations

import math

import pytest

from repro.core import Simulator, SimulatorConfig
from repro.core.registry import algorithm_factory
from repro.errors import ConfigurationError
from repro.experiments import (
    AlgorithmMetrics,
    ExperimentConfig,
    adversarial_ratio,
    average_metrics,
    random_order_ratio,
    run_algorithm,
    run_city_table,
    run_comparison,
    run_figure5_panel,
)
from repro.experiments.ablation import (
    run_cooperation_ablation,
    run_payment_accuracy_ablation,
    run_ramcom_k_sweep,
)
from repro.experiments.competitive import (
    RAMCOM_THEORETICAL_CR,
    demcom_worst_case_family,
)
from repro.experiments.figures import PANEL_IDS
from repro.experiments.tables import TABLE_IDS
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

TINY_CONFIG = ExperimentConfig(seeds=(0,), service_duration=1800.0)


def tiny_scenario(seed: int = 1):
    return SyntheticWorkload(
        SyntheticWorkloadConfig(request_count=60, worker_count=20, city_km=4.0)
    ).build(seed=seed)


class TestAlgorithmMetrics:
    def test_from_simulation(self):
        scenario = tiny_scenario()
        result = Simulator(
            SimulatorConfig(seed=0, worker_reentry=True, service_duration=1800.0)
        ).run(scenario, algorithm_factory("demcom"))
        row = AlgorithmMetrics.from_simulation(result)
        assert row.algorithm == "DemCOM"
        assert set(row.revenue) == set(scenario.platform_ids)
        for platform_id in scenario.platform_ids:
            assert row.revenue[platform_id] == pytest.approx(
                row.platform_revenue[platform_id] + row.lender_income[platform_id]
            )

    def test_average_requires_same_algorithm(self):
        a = AlgorithmMetrics(algorithm="X", scenario="s")
        b = AlgorithmMetrics(algorithm="Y", scenario="s")
        with pytest.raises(ValueError):
            average_metrics([a, b])
        with pytest.raises(ValueError):
            average_metrics([])

    def test_average_means(self):
        a = AlgorithmMetrics(
            algorithm="X", scenario="s", revenue={"A": 10.0}, completed={"A": 4}
        )
        b = AlgorithmMetrics(
            algorithm="X", scenario="s", revenue={"A": 20.0}, completed={"A": 6}
        )
        averaged = average_metrics([a, b])
        assert averaged.revenue["A"] == 15.0
        assert averaged.completed["A"] == 5
        assert averaged.runs == 2

    def test_average_none_metrics(self):
        a = AlgorithmMetrics(algorithm="X", scenario="s", acceptance_ratio=None)
        b = AlgorithmMetrics(algorithm="X", scenario="s", acceptance_ratio=0.5)
        assert average_metrics([a, b]).acceptance_ratio == 0.5
        assert average_metrics([a, a]).acceptance_ratio is None


class TestHarness:
    def test_run_algorithm_offline(self):
        row = run_algorithm(tiny_scenario(), "off", TINY_CONFIG)
        assert row.algorithm == "OFF"
        assert row.total_revenue > 0

    def test_run_algorithm_online(self):
        row = run_algorithm(tiny_scenario(), "tota", TINY_CONFIG)
        assert row.algorithm == "TOTA"
        assert row.cooperative == 0

    def test_empty_seeds_raises(self):
        with pytest.raises(ConfigurationError):
            run_algorithm(tiny_scenario(), "tota", ExperimentConfig(seeds=()))

    def test_comparison_order(self):
        rows = run_comparison(tiny_scenario(), ["tota", "ramcom"], TINY_CONFIG)
        assert [row.algorithm for row in rows] == ["TOTA", "RamCOM"]

    def test_offline_dominates_in_comparison(self):
        rows = run_comparison(tiny_scenario(), ["off", "tota"], TINY_CONFIG)
        off, tota = rows
        assert off.total_revenue >= tota.total_revenue


class TestTables:
    def test_table_ids(self):
        assert set(TABLE_IDS) == {"V", "VI", "VII"}

    def test_unknown_table_raises(self):
        with pytest.raises(KeyError):
            run_city_table("IX")

    def test_tiny_table_runs_and_renders(self):
        result = run_city_table("VII", scale=0.004, config=TINY_CONFIG)
        rendered = result.render()
        assert "Table VII" in rendered
        for name in ("OFF", "TOTA", "DemCOM", "RamCOM"):
            assert name in rendered
        assert result.row("tota").cooperative == 0

    def test_table_revenue_ordering(self):
        result = run_city_table(
            "V", scale=0.008, config=ExperimentConfig(seeds=(0, 1))
        )
        off = result.row("off").total_revenue
        tota = result.row("tota").total_revenue
        ramcom = result.row("ramcom").total_revenue
        assert off >= ramcom >= tota * 0.95  # RamCOM ~>= TOTA, OFF on top


class TestFigures:
    def test_panel_ids_complete(self):
        assert len(PANEL_IDS) == 12  # the paper's 5(a)..5(l)

    def test_unknown_axis_raises(self):
        with pytest.raises(ConfigurationError):
            run_figure5_panel("speed", "revenue")

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            run_figure5_panel("requests", "happiness")

    def test_tiny_panel(self):
        base = SyntheticWorkloadConfig(
            request_count=60, worker_count=20, city_km=4.0
        )
        panel = run_figure5_panel(
            "requests",
            "revenue",
            values=(40, 80),
            base=base,
            config=TINY_CONFIG,
            algorithms=["tota", "ramcom"],
        )
        assert panel.panel_id == "5(a)"
        assert panel.x_values == [40.0, 80.0]
        assert len(panel.series["tota"]) == 2
        # More requests, more revenue.
        assert panel.series["tota"][1] >= panel.series["tota"][0]
        assert "Fig. 5(a)" in panel.render()

    def test_radius_panel_value_lookup(self):
        base = SyntheticWorkloadConfig(
            request_count=40, worker_count=16, city_km=4.0
        )
        panel = run_figure5_panel(
            "radius",
            "acceptance",
            values=(1.0,),
            base=base,
            config=TINY_CONFIG,
            algorithms=["ramcom"],
        )
        assert panel.value("ramcom", 1.0) == panel.series["ramcom"][0]


class TestCompetitive:
    def _micro_scenario(self):
        return SyntheticWorkload(
            SyntheticWorkloadConfig(
                request_count=4, worker_count=2, city_km=1.5, radius_km=2.0
            )
        ).build(seed=2)

    def test_adversarial_enumerates_orders(self):
        report = adversarial_ratio(self._micro_scenario(), "tota")
        # Orders where no request is servable (zero OPT) bound nothing and
        # are skipped; everything else is enumerated.
        assert 0 < report.orders_evaluated <= math.factorial(6)
        assert 0.0 <= report.minimum <= report.expectation <= 1.0 + 1e-9

    def test_adversarial_size_guard(self):
        big = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=10, worker_count=10)
        ).build(seed=0)
        with pytest.raises(ConfigurationError):
            adversarial_ratio(big, "tota")

    def test_random_order_bounds(self):
        report = random_order_ratio(self._micro_scenario(), "ramcom", trials=20)
        assert 10 <= report.orders_evaluated <= 20  # zero-OPT orders skipped
        assert 0.0 <= report.expectation <= 1.0 + 1e-9

    def test_random_order_trials_validation(self):
        with pytest.raises(ConfigurationError):
            random_order_ratio(self._micro_scenario(), "tota", trials=0)

    def test_ramcom_clears_its_theoretical_bound(self):
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(
                request_count=20, worker_count=10, city_km=3.0, radius_km=1.5
            )
        ).build(seed=3)
        report = random_order_ratio(scenario, "ramcom", trials=30)
        assert report.expectation >= RAMCOM_THEORETICAL_CR

    def test_demcom_worst_case_family(self):
        scenario, expected = demcom_worst_case_family(0.05)
        result = Simulator(
            SimulatorConfig(seed=0, measure_response_time=False)
        ).run(scenario, algorithm_factory("demcom"))
        assert result.total_revenue == pytest.approx(expected)

    def test_worst_case_family_validation(self):
        with pytest.raises(ConfigurationError):
            demcom_worst_case_family(0.0)


class TestAblations:
    def test_cooperation_ablation(self):
        result = run_cooperation_ablation(tiny_scenario(), TINY_CONFIG)
        labels = dict(result.rows)
        assert labels["ramcom+coop"].total_revenue >= labels[
            "ramcom-coop"
        ].total_revenue - 1e-9
        assert "Ablation" in result.render()

    def test_ramcom_k_sweep_rows(self):
        result = run_ramcom_k_sweep(tiny_scenario(), TINY_CONFIG)
        # theta = ceil(ln(101)) = 5 pinned rows + 1 randomized row.
        assert len(result.rows) == 6
        assert result.rows[-1][0] == "k~U{1..theta}"

    def test_payment_accuracy_rows(self):
        result = run_payment_accuracy_ablation(tiny_scenario(), TINY_CONFIG)
        assert len(result.rows) == 3
