"""Tests for the fault-injection and resilience layer (repro.faults).

Covers the plan/injector determinism contract, the retry/backoff and
circuit-breaker mechanics, the zero-fault pass-through guarantee, the
failure accounting surfaced on simulation results, and the structured
error context satellite.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    DemCOM,
    RamCOM,
    Simulator,
    SimulatorConfig,
    validate_matching,
)
from repro.core.exchange import CooperationExchange
from repro.errors import (
    ClaimConflictError,
    ConfigurationError,
    ExchangeUnavailableError,
    SimulationError,
)
from repro.faults import (
    ZERO_FAULTS,
    CircuitBreaker,
    CircuitBreakerConfig,
    FaultInjector,
    FaultPlan,
    OutageWindow,
    ResilientExchange,
    RetryPolicy,
)
from repro.utils.timer import TimingAccumulator

from conftest import make_request, make_scenario, make_worker


# -- plan validation ---------------------------------------------------------


class TestFaultPlan:
    def test_zero_plan_is_zero(self):
        assert ZERO_FAULTS.is_zero
        assert FaultPlan().is_zero
        assert not FaultPlan(claim_failure_rate=0.1).is_zero
        assert not FaultPlan(outages=(OutageWindow("A", 0.0, 1.0),)).is_zero

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"claim_failure_rate": 1.5},
            {"claim_failure_rate": -0.1},
            {"message_delay_rate": 2.0},
            {"worker_dropout_rate": -1.0},
            {"random_outages_per_platform": -1},
            {"outage_duration_s": 0.0},
            {"horizon_s": -5.0},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)

    def test_outage_window_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            OutageWindow("A", 5.0, 5.0)

    def test_uniform_scales_every_channel(self):
        plan = FaultPlan.uniform(0.8, seed=3)
        assert plan.claim_failure_rate == 0.8
        assert plan.message_delay_rate == 0.8
        assert plan.worker_dropout_rate == pytest.approx(0.24)
        assert plan.random_outages_per_platform > 0
        assert FaultPlan.uniform(0.0).is_zero


# -- injector ----------------------------------------------------------------


class TestFaultInjector:
    def test_zero_plan_never_fires(self):
        injector = FaultInjector(ZERO_FAULTS)
        assert not injector.active
        assert not injector.claim_fails("w1")
        assert not injector.worker_drops_out("w1")
        assert injector.message_delay("A", "B", "r1") == 0.0
        assert not injector.outage_active("A", 10.0)
        assert injector.outage_seconds("A", 1e6) == 0.0

    def test_realisation_is_a_pure_function_of_the_plan(self):
        plan = FaultPlan.uniform(0.5, seed=11)
        first, second = FaultInjector(plan), FaultInjector(plan)
        assert first.outage_windows("A") == second.outage_windows("A")
        for _ in range(20):
            assert first.claim_fails("w7") == second.claim_fails("w7")
        assert first.worker_drops_out("w3") == second.worker_drops_out("w3")
        assert first.message_delay("A", "B", "r9") == second.message_delay(
            "A", "B", "r9"
        )

    def test_dropout_fate_is_monotone_in_the_rate(self):
        workers = [f"w{i}" for i in range(200)]

        def dropped(rate: float) -> set[str]:
            injector = FaultInjector(FaultPlan(seed=5, worker_dropout_rate=rate))
            return {w for w in workers if injector.worker_drops_out(w)}

        low, high = dropped(0.2), dropped(0.6)
        assert low <= high
        assert len(low) < len(high)

    def test_outage_windows_respect_horizon(self):
        plan = FaultPlan(
            seed=2,
            random_outages_per_platform=4,
            outage_duration_s=100.0,
            horizon_s=1000.0,
        )
        injector = FaultInjector(plan)
        windows = injector.outage_windows("didi")
        assert len(windows) == 4
        for window in windows:
            assert 0.0 <= window.start < window.end <= 1000.0
        assert injector.outage_seconds("didi", 1000.0) <= 400.0

    def test_explicit_windows_merge_with_random(self):
        plan = FaultPlan(
            seed=0,
            outages=(OutageWindow("A", 10.0, 20.0),),
            random_outages_per_platform=1,
            outage_duration_s=5.0,
            horizon_s=100.0,
        )
        injector = FaultInjector(plan)
        assert len(injector.outage_windows("A")) == 2
        assert injector.outage_active("A", 15.0)
        assert len(injector.outage_windows("B")) == 1  # random only


# -- retry policy and circuit breaker ---------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, multiplier=2.0, max_backoff_s=5.0, jitter=0.0
        )
        rng = random.Random(0)
        assert policy.backoff_for(0, rng) == 1.0
        assert policy.backoff_for(1, rng) == 2.0
        assert policy.backoff_for(2, rng) == 4.0
        assert policy.backoff_for(3, rng) == 5.0  # capped

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_backoff_s=10.0, multiplier=1.0, jitter=0.2)
        rng = random.Random(42)
        for _ in range(100):
            backoff = policy.backoff_for(0, rng)
            assert 8.0 <= backoff <= 12.0

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(call_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(failure_threshold=0)


class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers_half_open(self):
        breaker = CircuitBreaker(
            CircuitBreakerConfig(failure_threshold=2, reset_timeout_s=100.0)
        )
        assert breaker.allows(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.record_failure(1.0)  # trips
        assert breaker.state == "open"
        assert not breaker.allows(50.0)  # still cooling down
        assert breaker.allows(101.0)  # half-open probe
        assert breaker.state == "half_open"
        breaker.record_success(101.0)
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(
            CircuitBreakerConfig(failure_threshold=1, reset_timeout_s=10.0)
        )
        breaker.record_failure(0.0)
        assert breaker.allows(11.0)
        assert breaker.record_failure(11.0)  # probe failed: open again
        assert breaker.state == "open"
        assert not breaker.allows(15.0)
        assert breaker.allows(21.0)


# -- resilient exchange ------------------------------------------------------


def _small_exchange() -> CooperationExchange:
    exchange = CooperationExchange(["A", "B"])
    exchange.worker_arrives(make_worker("a0", "A", 0.0, 0.0, 0.0, radius=5.0))
    exchange.worker_arrives(make_worker("b0", "B", 0.0, 1.0, 0.0, radius=5.0))
    return exchange


class TestResilientExchange:
    def test_zero_plan_is_strict_passthrough(self):
        wrapped = ResilientExchange(_small_exchange(), FaultInjector(ZERO_FAULTS))
        request = make_request("r0", "A", t=1.0)
        assert [w.worker_id for w in wrapped.outer_candidates("A", request)] == [
            "b0"
        ]
        assert wrapped.claim("b0", claimant="A").worker_id == "b0"
        assert wrapped.stats_for("A").retries == 0
        assert wrapped.stats_for("A").degraded_decisions == 0

    def test_own_outage_raises_unavailable(self):
        plan = FaultPlan(outages=(OutageWindow("A", 0.0, 100.0),))
        wrapped = ResilientExchange(_small_exchange(), FaultInjector(plan))
        wrapped.advance_to(10.0)
        with pytest.raises(ExchangeUnavailableError):
            wrapped.outer_candidates("A", make_request("r0", "A", t=10.0))
        assert wrapped.stats_for("A").degraded_decisions == 1
        # Inner operations are local and unaffected by the outage.
        assert wrapped.inner_candidates(
            "A", make_request("r1", "A", t=10.0)
        )

    def test_peer_outage_degrades_and_trips_breaker(self):
        plan = FaultPlan(outages=(OutageWindow("B", 0.0, 1000.0),))
        breaker_config = CircuitBreakerConfig(
            failure_threshold=2, reset_timeout_s=500.0
        )
        wrapped = ResilientExchange(
            _small_exchange(), FaultInjector(plan), breaker_config=breaker_config
        )
        request = make_request("r0", "A", t=1.0)
        wrapped.advance_to(1.0)
        for _ in range(2):  # two probes reach the failure threshold
            with pytest.raises(ExchangeUnavailableError):
                wrapped.outer_candidates("A", request)
        assert wrapped.breaker_state("A", "B") == "open"
        assert wrapped.stats_for("A").breaker_trips == 1
        # While open, the peer is skipped without probing.
        with pytest.raises(ExchangeUnavailableError):
            wrapped.outer_candidates("A", request)
        # After the reset timeout and the outage, a half-open probe heals.
        wrapped.advance_to(1200.0)
        workers = wrapped.outer_candidates(
            "A", make_request("r1", "A", t=1200.0)
        )
        assert [w.worker_id for w in workers] == ["b0"]
        assert wrapped.breaker_state("A", "B") == "closed"

    def test_dropout_removes_worker_exactly_once(self):
        plan = FaultPlan(worker_dropout_rate=1.0)
        wrapped = ResilientExchange(_small_exchange(), FaultInjector(plan))
        with pytest.raises(ClaimConflictError):
            wrapped.claim("b0", claimant="A")
        assert wrapped.stats_for("A").dropped_workers == 1
        assert not wrapped.is_available("b0")
        with pytest.raises(SimulationError):
            wrapped.claim("b0", claimant="A")  # already gone

    def test_claim_retries_exhaust_into_failed_claim(self):
        plan = FaultPlan(seed=0, claim_failure_rate=1.0)
        wrapped = ResilientExchange(
            _small_exchange(),
            FaultInjector(plan),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(ClaimConflictError):
            wrapped.claim("b0", claimant="A")
        stats = wrapped.stats_for("A")
        assert stats.failed_claims == 1
        assert stats.retries == 2  # attempts 2 and 3 were retries
        assert stats.retry_backoff_seconds > 0.0
        # The transient failure left the worker available.
        assert wrapped.is_available("b0")

    def test_inner_claims_never_race(self):
        plan = FaultPlan(seed=0, claim_failure_rate=1.0)
        wrapped = ResilientExchange(_small_exchange(), FaultInjector(plan))
        # a0 is A's own worker: the lost-claim race is cross-platform only.
        assert wrapped.claim("a0", claimant="A").worker_id == "a0"

    def test_evict_bypasses_faults(self):
        plan = FaultPlan(seed=0, claim_failure_rate=1.0, worker_dropout_rate=1.0)
        wrapped = ResilientExchange(_small_exchange(), FaultInjector(plan))
        assert wrapped.evict("b0").worker_id == "b0"
        assert wrapped.stats_for("B").dropped_workers == 0


# -- simulator integration ---------------------------------------------------


def _scenario(seed: int = 3):
    rng = random.Random(seed)
    workers = [
        make_worker(
            f"{platform}-w{i}",
            platform,
            t=rng.uniform(0, 50),
            x=rng.uniform(0, 4),
            y=rng.uniform(0, 4),
            radius=rng.uniform(1.0, 2.5),
        )
        for platform in ("A", "B")
        for i in range(6)
    ]
    requests = [
        make_request(
            f"r{i}",
            rng.choice(["A", "B"]),
            t=rng.uniform(0, 100),
            x=rng.uniform(0, 4),
            y=rng.uniform(0, 4),
            value=rng.uniform(1, 50),
        )
        for i in range(30)
    ]
    return make_scenario(workers, requests, platform_ids=["A", "B"], seed=seed)


class TestSimulatorResilience:
    def test_zero_fault_plan_matches_unwrapped_exchange_exactly(self):
        scenario = _scenario()
        for factory in (DemCOM, RamCOM):
            plain = Simulator(
                SimulatorConfig(seed=1, measure_response_time=False)
            ).run(scenario, factory)
            wrapped = Simulator(
                SimulatorConfig(
                    seed=1, measure_response_time=False, fault_plan=ZERO_FAULTS
                )
            ).run(scenario, factory)
            assert wrapped.total_revenue == plain.total_revenue
            assert wrapped.total_completed == plain.total_completed
            assert wrapped.total_rejected == plain.total_rejected
            assert [
                (r.request.request_id, r.worker.worker_id, r.payment)
                for r in wrapped.all_records()
            ] == [
                (r.request.request_id, r.worker.worker_id, r.payment)
                for r in plain.all_records()
            ]
            assert wrapped.total_retries == 0
            assert wrapped.total_failed_claims == 0
            assert wrapped.total_degraded_decisions == 0
            assert wrapped.total_outage_seconds == 0.0

    def test_same_fault_seed_reproduces_identical_metrics(self):
        scenario = _scenario()
        plan = FaultPlan.uniform(0.6, seed=9, horizon_s=100.0)
        config = SimulatorConfig(
            seed=4, measure_response_time=False, fault_plan=plan
        )
        first = Simulator(config).run(scenario, RamCOM)
        second = Simulator(config).run(scenario, RamCOM)
        assert first.total_revenue == second.total_revenue
        assert first.total_completed == second.total_completed
        assert first.total_retries == second.total_retries
        assert first.total_failed_claims == second.total_failed_claims
        assert first.total_degraded_decisions == second.total_degraded_decisions
        assert first.total_dropped_workers == second.total_dropped_workers
        assert first.total_outage_seconds == second.total_outage_seconds

    def test_different_fault_seeds_change_the_realisation(self):
        scenario = _scenario()
        results = []
        for fault_seed in range(6):
            plan = FaultPlan.uniform(0.7, seed=fault_seed, horizon_s=100.0)
            result = Simulator(
                SimulatorConfig(seed=4, measure_response_time=False, fault_plan=plan)
            ).run(scenario, DemCOM)
            results.append(
                (result.total_revenue, result.total_dropped_workers)
            )
        assert len(set(results)) > 1

    def test_full_outage_forces_inner_only_matching(self):
        scenario = _scenario()
        plan = FaultPlan(
            outages=(
                OutageWindow("A", 0.0, 1e9),
                OutageWindow("B", 0.0, 1e9),
            )
        )
        result = Simulator(
            SimulatorConfig(seed=2, measure_response_time=False, fault_plan=plan)
        ).run(scenario, DemCOM)
        assert result.total_cooperative == 0
        assert result.total_degraded_decisions > 0
        assert result.total_outage_seconds > 0.0
        validate_matching(result.all_records())

    def test_total_dropout_rejects_everything(self):
        scenario = _scenario()
        plan = FaultPlan(worker_dropout_rate=1.0)
        result = Simulator(
            SimulatorConfig(seed=2, measure_response_time=False, fault_plan=plan)
        ).run(scenario, DemCOM)
        assert result.total_completed == 0
        assert result.total_dropped_workers > 0
        assert (
            result.total_completed + result.total_rejected
            == scenario.request_count
        )

    def test_failure_accounting_lands_on_platform_outcomes(self):
        scenario = _scenario()
        plan = FaultPlan.uniform(0.8, seed=1, horizon_s=100.0)
        result = Simulator(
            SimulatorConfig(seed=2, measure_response_time=False, fault_plan=plan)
        ).run(scenario, RamCOM)
        per_platform = [outcome.resilience for outcome in result.platforms.values()]
        assert sum(s.degraded_decisions for s in per_platform) == (
            result.total_degraded_decisions
        )
        assert result.resilience.as_dict()["degraded_decisions"] == (
            result.total_degraded_decisions
        )


# -- satellites --------------------------------------------------------------


class TestStructuredErrors:
    def test_simulation_error_carries_context(self):
        error = SimulationError(
            "boom", time=12.5, platform_id="didi", request_id="r7", worker_id="w3"
        )
        assert error.sim_time == 12.5
        assert error.platform_id == "didi"
        assert error.request_id == "r7"
        assert error.worker_id == "w3"
        message = str(error)
        assert "boom" in message
        for fragment in ("t=12.5", "platform=didi", "request=r7", "worker=w3"):
            assert fragment in message

    def test_plain_message_unchanged_without_context(self):
        assert str(SimulationError("plain failure")) == "plain failure"

    def test_new_errors_are_simulation_errors(self):
        assert issubclass(ExchangeUnavailableError, SimulationError)
        assert issubclass(ClaimConflictError, SimulationError)


class TestTimingSamplesAccessor:
    def test_samples_returns_copy(self):
        acc = TimingAccumulator()
        for value in (0.1, 0.2, 0.3):
            acc.record(value)
        samples = acc.samples()
        assert samples == [0.1, 0.2, 0.3]
        samples.append(99.0)
        assert acc.samples() == [0.1, 0.2, 0.3]

    def test_result_percentile_uses_public_accessor(self):
        scenario = _scenario()
        result = Simulator(SimulatorConfig(seed=0)).run(scenario, DemCOM)
        assert result.response_time_percentile_ms(0.5) >= 0.0
        assert result.response_time_percentile_ms(1.0) >= (
            result.response_time_percentile_ms(0.0)
        )


class TestChaosCLI:
    def test_chaos_subcommand_runs_and_saves(self, tmp_path, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "chaos",
                "--rates",
                "0,0.6",
                "--seeds",
                "1",
                "--requests",
                "60",
                "--workers",
                "24",
                "--output",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Chaos sweep" in output
        saved = list(tmp_path.glob("chaos_*.json"))
        assert len(saved) == 1
        import json

        payload = json.loads(saved[0].read_text())
        assert {row["fault_rate"] for row in payload["rows"]} == {0.0, 0.6}
        assert all("degraded_decisions" in row for row in payload["rows"])
