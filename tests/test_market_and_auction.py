"""Tests for the auction mechanism and market analysis."""

from __future__ import annotations

import pytest

from repro.baselines import AuctionCOM, TOTA
from repro.core import DemCOM, Simulator, SimulatorConfig, validate_matching
from repro.core.events import EventStream
from repro.core.matching import AssignmentKind
from repro.core.simulator import Scenario
from repro.errors import ConfigurationError
from repro.experiments.market import (
    analyze_market,
    lending_flows,
    net_lending_balance,
    worker_income_gini,
)

from conftest import (
    make_fixed_rate_oracle,
    make_request,
    make_scenario,
    make_worker,
)


class TestAuctionCOM:
    def test_margin_validation(self):
        with pytest.raises(ConfigurationError):
            AuctionCOM(margin=-0.1)

    def test_registered(self):
        from repro.core.registry import make_algorithm

        assert make_algorithm("auction").name == "AuctionCOM"

    def test_inner_priority(self):
        workers = [
            make_worker("a", "A", 0.0, 0.5, 0.0),
            make_worker("b", "B", 0.0, 0.1, 0.0),
        ]
        scenario = Scenario(
            events=EventStream.from_entities(
                workers, [make_request("r", "A", 1.0)]
            ),
            oracle=make_fixed_rate_oracle(workers, rate=0.1),
            platform_ids=["A", "B"],
        )
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, AuctionCOM
        )
        assert result.all_records()[0].worker.worker_id == "a"

    def test_pays_winning_bid(self):
        workers = [make_worker("b", "B", 0.0, 0.1, 0.0)]
        scenario = Scenario(
            events=EventStream.from_entities(
                workers, [make_request("r", "A", 1.0, value=10.0)]
            ),
            oracle=make_fixed_rate_oracle(workers, rate=0.5),
            platform_ids=["A", "B"],
        )
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, lambda: AuctionCOM(margin=0.1)
        )
        record = result.all_records()[0]
        assert record.kind is AssignmentKind.OUTER
        # reservation 0.5 * 10 = 5.0; bid = 5.5
        assert record.payment == pytest.approx(5.5)

    def test_picks_cheapest_bidder(self):
        cheap = make_worker("cheap", "B", 0.0, 0.9, 0.0)
        dear = make_worker("dear", "C", 0.0, 0.1, 0.0)
        from repro.behavior import BehaviorOracle, UniformDistribution, WorkerBehavior

        oracle = BehaviorOracle(seed=0)
        oracle.register(
            WorkerBehavior("cheap", UniformDistribution(0.3, 0.3), [0.3])
        )
        oracle.register(WorkerBehavior("dear", UniformDistribution(0.8, 0.8), [0.8]))
        scenario = Scenario(
            events=EventStream.from_entities(
                [cheap, dear], [make_request("r", "A", 1.0, value=10.0)]
            ),
            oracle=oracle,
            platform_ids=["A", "B", "C"],
        )
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, lambda: AuctionCOM(margin=0.0)
        )
        record = result.all_records()[0]
        assert record.worker.worker_id == "cheap"
        assert record.payment == pytest.approx(3.0)

    def test_unaffordable_bids_rejected(self):
        workers = [make_worker("b", "B", 0.0, 0.1, 0.0)]
        scenario = Scenario(
            events=EventStream.from_entities(
                workers, [make_request("r", "A", 1.0, value=10.0)]
            ),
            # reservation rate 0.95 -> bid 0.95 * 1.1 * 10 = 10.45 > 10.
            oracle=make_fixed_rate_oracle(workers, rate=0.95),
            platform_ids=["A", "B"],
        )
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, lambda: AuctionCOM(margin=0.1)
        )
        assert result.total_rejected == 1
        assert result.platforms["A"].cooperative_attempts == 1

    def test_constraints_hold_on_random_city(self):
        from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=150, worker_count=50, city_km=5.0)
        ).build(seed=4)
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, AuctionCOM
        )
        validate_matching(result.all_records())

    def test_zero_margin_dominates_posted_minimum(self):
        """A truthful auction never misses a willing, affordable worker, so
        it completes at least as many cooperative requests as DemCOM on the
        same one-sided instance."""
        import random

        rng = random.Random(5)
        workers = [
            make_worker(f"b{i}", "B", 0.0, rng.uniform(0, 2), rng.uniform(0, 2), radius=1.5)
            for i in range(5)
        ]
        requests = [
            make_request(
                f"r{i}", "A", 10.0 + i, rng.uniform(0, 2), rng.uniform(0, 2),
                value=rng.uniform(5, 20),
            )
            for i in range(12)
        ]
        scenario = make_scenario(workers, requests, platform_ids=["A", "B"])
        config = SimulatorConfig(seed=0, measure_response_time=False)
        auction = Simulator(config).run(scenario, lambda: AuctionCOM(margin=0.0))
        demcom = Simulator(config).run(scenario, DemCOM)
        assert auction.total_completed >= demcom.total_completed


class TestMarketAnalysis:
    def _run(self, factory=DemCOM):
        workers = [
            make_worker("a0", "A", 0.0, 0.1, 0.0),
            make_worker("b0", "B", 0.0, 0.2, 0.0),
        ]
        requests = [
            make_request("r1", "A", 1.0, value=10.0),
            make_request("r2", "B", 2.0, value=8.0),
        ]
        scenario = Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=make_fixed_rate_oracle(workers, rate=0.4),
            platform_ids=["A", "B"],
        )
        return Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, factory
        )

    def test_flows_empty_without_cooperation(self):
        result = self._run(TOTA)
        assert lending_flows(result) == {}

    def test_balance_sums_to_zero(self):
        result = self._run()
        balance = net_lending_balance(result)
        assert sum(balance.values()) == pytest.approx(0.0)

    def test_gini_bounds(self):
        result = self._run()
        gini = worker_income_gini(result)
        assert 0.0 <= gini <= 1.0

    def test_gini_zero_for_equal_earners(self):
        workers = [make_worker(f"w{i}", "A", 0.0, 0.1 * i, 0.0) for i in range(3)]
        requests = [
            make_request(f"r{i}", "A", 1.0 + i, 0.1 * i, 0.0, value=10.0)
            for i in range(3)
        ]
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            make_scenario(workers, requests), TOTA
        )
        assert result.total_completed == 3
        assert worker_income_gini(result) == pytest.approx(0.0)

    def test_report_render(self):
        report = analyze_market(self._run())
        rendered = report.render()
        assert "Market report" in rendered
        assert "net balance" in rendered

    def test_empty_result_gini_zero(self):
        workers = [make_worker("w", "A", 0.0, 9.0, 9.0)]
        requests = [make_request("r", "A", 1.0)]
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            make_scenario(workers, requests), TOTA
        )
        assert worker_income_gini(result) == 0.0
