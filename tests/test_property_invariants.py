"""Cross-cutting property-based tests on randomly generated COM instances.

These are the load-bearing invariants of the whole system:

* every algorithm's matching satisfies the four Definition-2.6 constraints;
* revenue accounting (Eq. 1) is internally consistent;
* OFF upper-bounds every online algorithm on identical randomness;
* simulation results are a pure function of (scenario, seed);
* served + rejected == arrived.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import TOTA, BatchMatching, GreedyRT, Ranking, solve_offline
from repro.core import (
    DemCOM,
    RamCOM,
    Simulator,
    SimulatorConfig,
    validate_matching,
)
from repro.core.matching import AssignmentKind
from repro.faults import FaultPlan

from conftest import make_request, make_scenario, make_worker

ALGORITHMS = [
    TOTA,
    DemCOM,
    RamCOM,
    GreedyRT,
    Ranking,
    lambda: BatchMatching(delta_seconds=30.0),
]


def random_instance(seed: int, platforms=("A", "B")):
    """A random two-platform instance with mixed geometry and timing."""
    rng = random.Random(seed)
    workers = []
    for platform in platforms:
        for i in range(rng.randint(1, 6)):
            workers.append(
                make_worker(
                    f"{platform}-w{i}",
                    platform,
                    t=rng.uniform(0, 50),
                    x=rng.uniform(0, 4),
                    y=rng.uniform(0, 4),
                    radius=rng.uniform(0.5, 2.0),
                    shareable=rng.random() > 0.2,
                )
            )
    requests = []
    for i in range(rng.randint(1, 15)):
        requests.append(
            make_request(
                f"r{i}",
                rng.choice(platforms),
                t=rng.uniform(0, 100),
                x=rng.uniform(0, 4),
                y=rng.uniform(0, 4),
                value=rng.uniform(1, 50),
            )
        )
    return make_scenario(workers, requests, platform_ids=list(platforms), seed=seed)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("factory", ALGORITHMS)
def test_constraints_hold_for_every_algorithm(factory, seed):
    scenario = random_instance(seed)
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, factory
    )
    validate_matching(result.all_records())


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("factory", ALGORITHMS)
def test_request_conservation(factory, seed):
    scenario = random_instance(seed)
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, factory
    )
    assert result.total_completed + result.total_rejected == scenario.request_count


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("factory", [DemCOM, RamCOM])
def test_revenue_accounting_identity(factory, seed):
    """Eq. 1 holds record by record, and lender income mirrors payments."""
    scenario = random_instance(seed)
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, factory
    )
    for platform_id, outcome in result.platforms.items():
        ledger = outcome.ledger
        inner = sum(
            record.request.value
            for record in ledger.records
            if record.kind is AssignmentKind.INNER
        )
        outer = sum(
            record.request.value - record.payment
            for record in ledger.records
            if record.kind is AssignmentKind.OUTER
        )
        assert ledger.revenue == pytest.approx(inner + outer)
    total_payments = sum(
        record.payment for record in result.all_records() if record.payment > 0
    )
    total_lender = sum(
        p.ledger.total_lender_income for p in result.platforms.values()
    )
    assert total_lender == pytest.approx(total_payments)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("factory", [TOTA, DemCOM, RamCOM])
def test_offline_dominates_online(factory, seed):
    scenario = random_instance(seed)
    optimum = solve_offline(scenario).total_revenue
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, factory
    )
    assert optimum >= result.total_revenue - 1e-9


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_determinism_across_algorithm_runs(seed):
    scenario = random_instance(seed)
    config = SimulatorConfig(seed=seed, measure_response_time=False)
    for factory in (DemCOM, RamCOM):
        first = Simulator(config).run(scenario, factory)
        second = Simulator(config).run(scenario, factory)
        assert first.total_revenue == second.total_revenue
        assert first.total_completed == second.total_completed


def _fault_plan(seed: int) -> FaultPlan:
    """A heavy mixed-fault plan derived from the instance seed."""
    return FaultPlan(
        seed=seed,
        claim_failure_rate=0.5,
        message_delay_rate=0.4,
        worker_dropout_rate=0.3,
        random_outages_per_platform=1,
        outage_duration_s=25.0,
        horizon_s=100.0,
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("factory", [TOTA, DemCOM, RamCOM])
def test_constraints_hold_under_injected_faults(factory, seed):
    """Claim failures, retries, dropouts and outages never corrupt the
    matching: every record still passes the Def.-2.6 checker and no worker
    is claimed by two platforms (the checker's 1-by-1 pass over the pooled
    records)."""
    scenario = random_instance(seed)
    result = Simulator(
        SimulatorConfig(
            seed=seed, measure_response_time=False, fault_plan=_fault_plan(seed)
        )
    ).run(scenario, factory)
    records = result.all_records()
    validate_matching(records)
    worker_ids = [record.worker.worker_id for record in records]
    assert len(worker_ids) == len(set(worker_ids))
    assert result.total_completed + result.total_rejected == scenario.request_count


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_fault_injection_is_deterministic(seed):
    """Same scenario + same FaultPlan seed -> identical metrics."""
    scenario = random_instance(seed)
    config = SimulatorConfig(
        seed=seed, measure_response_time=False, fault_plan=_fault_plan(seed)
    )
    first = Simulator(config).run(scenario, DemCOM)
    second = Simulator(config).run(scenario, DemCOM)
    assert first.total_revenue == second.total_revenue
    assert first.total_completed == second.total_completed
    assert first.total_retries == second.total_retries
    assert first.total_failed_claims == second.total_failed_claims
    assert first.total_dropped_workers == second.total_dropped_workers
    assert first.total_degraded_decisions == second.total_degraded_decisions


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_zero_fault_plan_is_bit_identical(seed):
    """Wrapping the exchange with a zero-fault plan changes nothing."""
    scenario = random_instance(seed)
    plain = Simulator(
        SimulatorConfig(seed=seed, measure_response_time=False)
    ).run(scenario, RamCOM)
    wrapped = Simulator(
        SimulatorConfig(
            seed=seed, measure_response_time=False, fault_plan=FaultPlan()
        )
    ).run(scenario, RamCOM)
    assert wrapped.total_revenue == plain.total_revenue
    assert [
        (r.request.request_id, r.worker.worker_id, r.kind, r.payment)
        for r in wrapped.all_records()
    ] == [
        (r.request.request_id, r.worker.worker_id, r.kind, r.payment)
        for r in plain.all_records()
    ]


def one_sided_instance(seed: int):
    """All requests target platform A; platform B only supplies workers.

    With no demand of its own, B's lent workers displace nothing, so
    cooperation can only add revenue for A.  (On general two-sided
    instances a borrow may displace the lender's own future assignment, so
    "cooperation never hurts" is NOT an invariant there — the tables merely
    show it helps on realistic workloads.)
    """
    rng = random.Random(seed)
    workers = [
        make_worker(
            f"{platform}-w{i}",
            platform,
            t=rng.uniform(0, 50),
            x=rng.uniform(0, 4),
            y=rng.uniform(0, 4),
            radius=rng.uniform(0.5, 2.0),
        )
        for platform in ("A", "B")
        for i in range(rng.randint(1, 5))
    ]
    requests = [
        make_request(
            f"r{i}",
            "A",
            t=rng.uniform(0, 100),
            x=rng.uniform(0, 4),
            y=rng.uniform(0, 4),
            value=rng.uniform(1, 50),
        )
        for i in range(rng.randint(1, 12))
    ]
    return make_scenario(workers, requests, platform_ids=["A", "B"], seed=seed)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_cooperation_never_hurts_demcom_one_sided(seed):
    """DemCOM reaches the outer path only when no inner worker exists, so
    on one-sided demand enabling cooperation cannot reduce revenue."""
    scenario = one_sided_instance(seed)
    with_coop = Simulator(
        SimulatorConfig(seed=seed, measure_response_time=False)
    ).run(scenario, DemCOM)
    without = Simulator(
        SimulatorConfig(
            seed=seed, measure_response_time=False, cooperation_enabled=False
        )
    ).run(scenario, DemCOM)
    assert with_coop.total_revenue >= without.total_revenue - 1e-9


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_outer_payments_within_definition_2_4(seed):
    """Every outer payment lies in (0, v_r] (Definition 2.4)."""
    scenario = random_instance(seed)
    for factory in (DemCOM, RamCOM):
        result = Simulator(
            SimulatorConfig(seed=seed, measure_response_time=False)
        ).run(scenario, factory)
        for record in result.all_records():
            if record.kind is AssignmentKind.OUTER:
                assert 0.0 < record.payment <= record.request.value + 1e-9


def _random_metric_events(rng: random.Random, count: int) -> list[tuple]:
    """A random telemetry history: (kind, name, value, labels) tuples."""
    events = []
    for _ in range(count):
        kind = rng.choice(("count", "observe", "gauge_add"))
        name = rng.choice(("alpha", "beta", "gamma"))
        labels = {"platform": rng.choice(("A", "B", "C"))}
        if rng.random() < 0.5:
            labels["kind"] = rng.choice(("x", "y"))
        # Dyadic values (multiples of 1/16) keep float sums exact under any
        # grouping, so the merge identity can be asserted bit-for-bit —
        # matching the engine, whose counter increments are integral.
        value = rng.randrange(0, 1600) / 16.0
        events.append((kind, name, value, labels))
    return events


def _apply_events(registry, events) -> None:
    for kind, name, value, labels in events:
        if kind == "count":
            registry.counter(name).inc(value, **labels)
        elif kind == "observe":
            registry.histogram(name + "_hist").observe(value, **labels)
        else:
            registry.gauge(name + "_gauge").add(value, **labels)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=6),
)
def test_merging_shard_snapshots_equals_global_snapshot(seed, shards):
    """Telemetry invariant: N per-shard registries (per platform, per run)
    merge into exactly the snapshot one shared registry would have produced
    — regardless of how the event history is partitioned or the order the
    shards are merged in."""
    from repro.obs import MetricsRegistry, MetricsSnapshot

    rng = random.Random(seed)
    events = _random_metric_events(rng, rng.randint(0, 60))

    global_registry = MetricsRegistry()
    _apply_events(global_registry, events)

    shard_registries = [MetricsRegistry() for _ in range(shards)]
    for event in events:
        _apply_events(shard_registries[rng.randrange(shards)], [event])

    merged = MetricsSnapshot()
    for registry in shard_registries:
        merged = merged.merge(registry.snapshot())
    assert merged.as_dict() == global_registry.snapshot().as_dict()

    # Merge order must not matter (associativity + commutativity).
    reversed_merge = MetricsSnapshot()
    for registry in reversed(shard_registries):
        reversed_merge = reversed_merge.merge(registry.snapshot())
    assert reversed_merge.as_dict() == merged.as_dict()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_per_run_telemetry_summaries_pool_into_global(seed):
    """Simulator-level version of the merge invariant: summaries of N runs
    pool into the summary of one registry that saw all N histories."""
    from repro.obs import MetricsRegistry, Telemetry

    rng = random.Random(seed)
    scenarios = [random_instance(rng.randrange(10_000)) for _ in range(3)]

    pooled = None
    global_registry = MetricsRegistry()
    for index, scenario in enumerate(scenarios):
        telemetry = Telemetry()
        Simulator(
            SimulatorConfig(
                seed=seed + index, measure_response_time=False, telemetry=telemetry
            )
        ).run(scenario, DemCOM)
        summary = telemetry.summary()
        pooled = summary if pooled is None else pooled.merge(summary)
        # Replay this run's counters into the shared registry.
        for name, entries in summary.metrics.counters.items():
            for entry in entries:
                global_registry.counter(name).inc(
                    entry["value"], **dict(entry["labels"])
                )
    assert pooled is not None
    assert (
        pooled.metrics.counters == global_registry.snapshot().counters
    )


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_offers_respect_realized_reservations(seed):
    """Accepted outer assignments actually cleared the oracle's draw."""
    scenario = random_instance(seed)
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, DemCOM
    )
    for record in result.all_records():
        if record.kind is AssignmentKind.OUTER:
            reservation = scenario.oracle.reservation_price(
                record.worker.worker_id,
                record.request.request_id,
                record.request.value,
            )
            assert record.payment >= reservation - 1e-9
