"""Cross-cutting property-based tests on randomly generated COM instances.

These are the load-bearing invariants of the whole system:

* every algorithm's matching satisfies the four Definition-2.6 constraints;
* revenue accounting (Eq. 1) is internally consistent;
* OFF upper-bounds every online algorithm on identical randomness;
* simulation results are a pure function of (scenario, seed);
* served + rejected == arrived.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import TOTA, BatchMatching, GreedyRT, Ranking, solve_offline
from repro.core import (
    DemCOM,
    RamCOM,
    Simulator,
    SimulatorConfig,
    validate_matching,
)
from repro.core.matching import AssignmentKind

from conftest import make_request, make_scenario, make_worker

ALGORITHMS = [
    TOTA,
    DemCOM,
    RamCOM,
    GreedyRT,
    Ranking,
    lambda: BatchMatching(delta_seconds=30.0),
]


def random_instance(seed: int, platforms=("A", "B")):
    """A random two-platform instance with mixed geometry and timing."""
    rng = random.Random(seed)
    workers = []
    for platform in platforms:
        for i in range(rng.randint(1, 6)):
            workers.append(
                make_worker(
                    f"{platform}-w{i}",
                    platform,
                    t=rng.uniform(0, 50),
                    x=rng.uniform(0, 4),
                    y=rng.uniform(0, 4),
                    radius=rng.uniform(0.5, 2.0),
                    shareable=rng.random() > 0.2,
                )
            )
    requests = []
    for i in range(rng.randint(1, 15)):
        requests.append(
            make_request(
                f"r{i}",
                rng.choice(platforms),
                t=rng.uniform(0, 100),
                x=rng.uniform(0, 4),
                y=rng.uniform(0, 4),
                value=rng.uniform(1, 50),
            )
        )
    return make_scenario(workers, requests, platform_ids=list(platforms), seed=seed)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("factory", ALGORITHMS)
def test_constraints_hold_for_every_algorithm(factory, seed):
    scenario = random_instance(seed)
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, factory
    )
    validate_matching(result.all_records())


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("factory", ALGORITHMS)
def test_request_conservation(factory, seed):
    scenario = random_instance(seed)
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, factory
    )
    assert result.total_completed + result.total_rejected == scenario.request_count


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("factory", [DemCOM, RamCOM])
def test_revenue_accounting_identity(factory, seed):
    """Eq. 1 holds record by record, and lender income mirrors payments."""
    scenario = random_instance(seed)
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, factory
    )
    for platform_id, outcome in result.platforms.items():
        ledger = outcome.ledger
        inner = sum(
            record.request.value
            for record in ledger.records
            if record.kind is AssignmentKind.INNER
        )
        outer = sum(
            record.request.value - record.payment
            for record in ledger.records
            if record.kind is AssignmentKind.OUTER
        )
        assert ledger.revenue == pytest.approx(inner + outer)
    total_payments = sum(
        record.payment for record in result.all_records() if record.payment > 0
    )
    total_lender = sum(
        p.ledger.total_lender_income for p in result.platforms.values()
    )
    assert total_lender == pytest.approx(total_payments)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("factory", [TOTA, DemCOM, RamCOM])
def test_offline_dominates_online(factory, seed):
    scenario = random_instance(seed)
    optimum = solve_offline(scenario).total_revenue
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, factory
    )
    assert optimum >= result.total_revenue - 1e-9


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_determinism_across_algorithm_runs(seed):
    scenario = random_instance(seed)
    config = SimulatorConfig(seed=seed, measure_response_time=False)
    for factory in (DemCOM, RamCOM):
        first = Simulator(config).run(scenario, factory)
        second = Simulator(config).run(scenario, factory)
        assert first.total_revenue == second.total_revenue
        assert first.total_completed == second.total_completed


def one_sided_instance(seed: int):
    """All requests target platform A; platform B only supplies workers.

    With no demand of its own, B's lent workers displace nothing, so
    cooperation can only add revenue for A.  (On general two-sided
    instances a borrow may displace the lender's own future assignment, so
    "cooperation never hurts" is NOT an invariant there — the tables merely
    show it helps on realistic workloads.)
    """
    rng = random.Random(seed)
    workers = [
        make_worker(
            f"{platform}-w{i}",
            platform,
            t=rng.uniform(0, 50),
            x=rng.uniform(0, 4),
            y=rng.uniform(0, 4),
            radius=rng.uniform(0.5, 2.0),
        )
        for platform in ("A", "B")
        for i in range(rng.randint(1, 5))
    ]
    requests = [
        make_request(
            f"r{i}",
            "A",
            t=rng.uniform(0, 100),
            x=rng.uniform(0, 4),
            y=rng.uniform(0, 4),
            value=rng.uniform(1, 50),
        )
        for i in range(rng.randint(1, 12))
    ]
    return make_scenario(workers, requests, platform_ids=["A", "B"], seed=seed)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_cooperation_never_hurts_demcom_one_sided(seed):
    """DemCOM reaches the outer path only when no inner worker exists, so
    on one-sided demand enabling cooperation cannot reduce revenue."""
    scenario = one_sided_instance(seed)
    with_coop = Simulator(
        SimulatorConfig(seed=seed, measure_response_time=False)
    ).run(scenario, DemCOM)
    without = Simulator(
        SimulatorConfig(
            seed=seed, measure_response_time=False, cooperation_enabled=False
        )
    ).run(scenario, DemCOM)
    assert with_coop.total_revenue >= without.total_revenue - 1e-9


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_outer_payments_within_definition_2_4(seed):
    """Every outer payment lies in (0, v_r] (Definition 2.4)."""
    scenario = random_instance(seed)
    for factory in (DemCOM, RamCOM):
        result = Simulator(
            SimulatorConfig(seed=seed, measure_response_time=False)
        ).run(scenario, factory)
        for record in result.all_records():
            if record.kind is AssignmentKind.OUTER:
                assert 0.0 < record.payment <= record.request.value + 1e-9


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_offers_respect_realized_reservations(seed):
    """Accepted outer assignments actually cleared the oracle's draw."""
    scenario = random_instance(seed)
    result = Simulator(SimulatorConfig(seed=seed, measure_response_time=False)).run(
        scenario, DemCOM
    )
    for record in result.all_records():
        if record.kind is AssignmentKind.OUTER:
            reservation = scenario.oracle.reservation_price(
                record.worker.worker_id,
                record.request.request_id,
                record.request.value,
            )
            assert record.payment >= reservation - 1e-9
