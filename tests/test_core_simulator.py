"""Tests for the online simulation engine."""

from __future__ import annotations

import pytest

from repro.baselines import TOTA
from repro.core import DemCOM, RamCOM, Simulator, SimulatorConfig, validate_matching
from repro.core.base import Decision, OnlineAlgorithm
from repro.core.events import EventStream
from repro.core.simulator import Scenario
from repro.errors import ConfigurationError, SimulationError

from conftest import (
    make_fixed_rate_oracle,
    make_oracle,
    make_request,
    make_scenario,
    make_worker,
)


class TestScenario:
    def test_requires_platforms(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                events=EventStream(),
                oracle=make_oracle([]),
                platform_ids=[],
            )

    def test_value_upper_bound_inferred(self):
        scenario = make_scenario(
            [make_worker()], [make_request(value=42.0), make_request("r2", value=7.0)]
        )
        assert scenario.value_upper_bound == 42.0

    def test_counts(self):
        scenario = make_scenario([make_worker()], [make_request()])
        assert scenario.worker_count == 1
        assert scenario.request_count == 1


class TestSimulatorBasics:
    def test_unknown_platform_request_raises(self):
        workers = [make_worker("w", "A")]
        scenario = Scenario(
            events=EventStream.from_entities(
                workers, [make_request("r", "Z", t=1.0)]
            ),
            oracle=make_oracle(workers),
            platform_ids=["A"],
        )
        with pytest.raises(SimulationError):
            Simulator(SimulatorConfig()).run(scenario, TOTA)

    def test_unknown_platform_worker_raises(self):
        workers = [make_worker("w", "Z")]
        scenario = Scenario(
            events=EventStream.from_entities(workers, []),
            oracle=make_oracle(workers),
            platform_ids=["A"],
        )
        with pytest.raises(SimulationError):
            Simulator(SimulatorConfig()).run(scenario, TOTA)

    def test_unavailable_worker_decision_raises(self):
        class Cheater(OnlineAlgorithm):
            name = "cheater"

            def decide(self, request, context):
                ghost = make_worker("ghost", "A", t=0.0)
                return Decision.serve_inner(ghost)

        workers = [make_worker("w", "A")]
        scenario = make_scenario(workers, [make_request(t=1.0)])
        with pytest.raises(SimulationError):
            Simulator(SimulatorConfig()).run(scenario, Cheater)

    def test_response_time_measured(self):
        scenario = make_scenario([make_worker()], [make_request(t=1.0)])
        result = Simulator(SimulatorConfig(measure_response_time=True)).run(
            scenario, TOTA
        )
        assert result.platforms["A"].response_time.count == 1
        assert result.mean_response_time_ms >= 0.0

    def test_memory_measured(self):
        scenario = make_scenario([make_worker()], [make_request(t=1.0)])
        result = Simulator(SimulatorConfig()).run(scenario, TOTA)
        assert result.memory_bytes > 0


class TestDeterminism:
    def _scenario(self):
        workers = [
            make_worker(f"a{i}", "A", float(i), x=i * 0.4, radius=1.5)
            for i in range(6)
        ] + [
            make_worker(f"b{i}", "B", float(i), x=i * 0.4 + 0.2, radius=1.5)
            for i in range(6)
        ]
        requests = [
            make_request(f"r{i}", "A", 6.0 + i, x=i * 0.4, value=5.0 + i)
            for i in range(8)
        ]
        return make_scenario(workers, requests, platform_ids=["A", "B"])

    @pytest.mark.parametrize("factory", [TOTA, DemCOM, RamCOM])
    def test_same_seed_same_result(self, factory):
        scenario = self._scenario()
        config = SimulatorConfig(seed=5, measure_response_time=False)
        first = Simulator(config).run(scenario, factory)
        second = Simulator(config).run(scenario, factory)
        assert first.total_revenue == second.total_revenue
        assert [r.request.request_id for r in first.all_records()] == [
            r.request.request_id for r in second.all_records()
        ]
        assert [r.worker.worker_id for r in first.all_records()] == [
            r.worker.worker_id for r in second.all_records()
        ]

    def test_different_seed_can_differ(self):
        scenario = self._scenario()
        revenues = {
            Simulator(
                SimulatorConfig(seed=seed, measure_response_time=False)
            ).run(scenario, RamCOM).total_revenue
            for seed in range(8)
        }
        assert len(revenues) > 1  # the k draw varies

    @pytest.mark.parametrize("factory", [TOTA, DemCOM, RamCOM])
    def test_all_constraints_hold(self, factory):
        scenario = self._scenario()
        result = Simulator(SimulatorConfig(seed=1, measure_response_time=False)).run(
            scenario, factory
        )
        validate_matching(result.all_records())

    def test_accounting_identity(self):
        scenario = self._scenario()
        result = Simulator(SimulatorConfig(seed=1, measure_response_time=False)).run(
            scenario, DemCOM
        )
        completed = result.total_completed
        rejected = result.total_rejected
        assert completed + rejected == scenario.request_count
        # Lender income equals the sum of outer payments.
        payments = sum(
            record.payment
            for record in result.all_records()
            if record.payment > 0
        )
        lender = sum(
            p.ledger.total_lender_income for p in result.platforms.values()
        )
        assert lender == pytest.approx(payments)


class TestWorkerReentry:
    def test_worker_serves_multiple_requests(self):
        workers = [make_worker("w", "A", 0.0)]
        requests = [
            make_request("r1", "A", 10.0),
            make_request("r2", "A", 200.0),
        ]
        scenario = make_scenario(workers, requests)
        config = SimulatorConfig(
            seed=0,
            worker_reentry=True,
            service_duration=100.0,
            measure_response_time=False,
        )
        result = Simulator(config).run(scenario, TOTA)
        assert result.total_completed == 2
        worker_ids = [r.worker.worker_id for r in result.all_records()]
        assert worker_ids == ["w", "w@reentry1"]
        validate_matching(result.all_records())

    def test_worker_busy_during_service(self):
        workers = [make_worker("w", "A", 0.0)]
        requests = [
            make_request("r1", "A", 10.0),
            make_request("r2", "A", 50.0),  # during service
        ]
        scenario = make_scenario(workers, requests)
        config = SimulatorConfig(
            seed=0, worker_reentry=True, service_duration=100.0,
            measure_response_time=False,
        )
        result = Simulator(config).run(scenario, TOTA)
        assert result.total_completed == 1
        assert result.total_rejected == 1

    def test_reentry_returns_home(self):
        workers = [make_worker("w", "A", 0.0, x=0.0)]
        requests = [
            make_request("r1", "A", 10.0, x=0.9),
            # r2 is near the worker's HOME, not near r1's location.
            make_request("r2", "A", 200.0, x=0.1),
        ]
        scenario = make_scenario(workers, requests)
        config = SimulatorConfig(
            seed=0, worker_reentry=True, service_duration=100.0,
            measure_response_time=False,
        )
        result = Simulator(config).run(scenario, TOTA)
        assert result.total_completed == 2
        second = result.all_records()[1]
        assert second.worker.location.x == 0.0  # home, not 0.9

    def test_no_reentry_by_default(self):
        workers = [make_worker("w", "A", 0.0)]
        requests = [
            make_request("r1", "A", 10.0),
            make_request("r2", "A", 500.0),
        ]
        scenario = make_scenario(workers, requests)
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, TOTA
        )
        assert result.total_completed == 1

    def test_reentry_clone_shares_reservation_draws(self):
        workers = [make_worker("b", "B", 0.0, x=0.1)]
        scenario = Scenario(
            events=EventStream.from_entities(
                workers,
                [
                    make_request("r1", "B", 5.0),  # inner service
                    make_request("r2", "A", 500.0, value=10.0),  # borrowed clone
                ],
            ),
            oracle=make_fixed_rate_oracle(workers, rate=0.5),
            platform_ids=["A", "B"],
        )
        # The clone's reservation for r2 equals the base worker's.
        assert scenario.oracle.reservation("b", "r2") == scenario.oracle.reservation(
            "b@reentry1", "r2"
        )


class TestCooperationFlag:
    def test_disabled_exchange_blocks_borrowing(self):
        workers = [make_worker("b", "B", 0.0, x=0.1)]
        scenario = Scenario(
            events=EventStream.from_entities(
                workers, [make_request("r", "A", 1.0, value=10.0)]
            ),
            oracle=make_fixed_rate_oracle(workers, rate=0.1),
            platform_ids=["A", "B"],
        )
        with_coop = Simulator(
            SimulatorConfig(measure_response_time=False)
        ).run(scenario, DemCOM)
        without = Simulator(
            SimulatorConfig(measure_response_time=False, cooperation_enabled=False)
        ).run(scenario, DemCOM)
        # With the exchange enabled DemCOM at least extends offers (it may
        # still undershoot the acceptance cliff); disabled, it cannot even
        # see the outer worker.
        assert with_coop.platforms["A"].cooperative_attempts == 1
        assert without.platforms["A"].cooperative_attempts == 0
        assert without.total_cooperative == 0


class TestDecisionLog:
    def test_disabled_by_default(self, two_platform_scenario):
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            two_platform_scenario, TOTA
        )
        assert result.decisions == []

    def test_one_entry_per_request(self, two_platform_scenario):
        result = Simulator(
            SimulatorConfig(measure_response_time=False, decision_log=True)
        ).run(two_platform_scenario, TOTA)
        assert len(result.decisions) == two_platform_scenario.request_count
        kinds = {entry.kind for entry in result.decisions}
        assert kinds <= {"serve_inner", "serve_outer", "reject"}

    def test_entries_match_ledger(self, two_platform_scenario):
        result = Simulator(
            SimulatorConfig(measure_response_time=False, decision_log=True)
        ).run(two_platform_scenario, TOTA)
        served = [e for e in result.decisions if e.kind == "serve_inner"]
        assert len(served) == result.total_completed
        for entry in served:
            assert entry.worker_id is not None


class TestAbsoluteModeEndToEnd:
    def test_absolute_oracle_drives_absolute_estimator(self):
        """A scenario built in absolute mode runs end-to-end: histories are
        raw prices and offers compare unnormalized."""
        from repro.behavior import BehaviorOracle, UniformDistribution, WorkerBehavior
        from repro.core import DemCOM
        from repro.core.events import EventStream

        worker = make_worker("b", "B", 0.0, x=0.1)
        oracle = BehaviorOracle(seed=0, mode="absolute")
        # Accepts any payment >= 4.0 CNY, regardless of request size.
        oracle.register(
            WorkerBehavior("b", UniformDistribution(4.0, 4.0), [4.0] * 10)
        )
        scenario = Scenario(
            events=EventStream.from_entities(
                [worker], [make_request("r", "A", 1.0, value=20.0)]
            ),
            oracle=oracle,
            platform_ids=["A", "B"],
        )
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, DemCOM
        )
        # Algorithm 2 brackets the absolute cliff at 4.0 (tolerance 2.0);
        # whether the undershot offer clears it is seed-dependent, but the
        # run itself must be well-formed either way.
        assert result.total_completed + result.total_rejected == 1
        for record in result.all_records():
            assert record.payment <= 20.0
