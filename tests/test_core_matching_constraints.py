"""Tests for match records, ledgers (Definition 2.5) and the constraint
validator (Definition 2.6)."""

from __future__ import annotations

import pytest

from repro.core.matching import AssignmentKind, MatchRecord, MatchingLedger
from repro.core.constraints import validate_matching
from repro.errors import ConfigurationError, ConstraintViolationError, SimulationError

from conftest import make_request, make_worker


def inner_record(request_id="r0", worker_id="w0", value=10.0, t=1.0):
    return MatchRecord(
        request=make_request(request_id, value=value, t=t),
        worker=make_worker(worker_id, t=0.0),
        kind=AssignmentKind.INNER,
    )


def outer_record(request_id="r0", worker_id="b0", value=10.0, payment=6.0, t=1.0):
    return MatchRecord(
        request=make_request(request_id, "A", t, value=value),
        worker=make_worker(worker_id, "B", 0.0),
        kind=AssignmentKind.OUTER,
        payment=payment,
    )


class TestMatchRecord:
    def test_inner_with_payment_raises(self):
        with pytest.raises(ConfigurationError):
            MatchRecord(
                request=make_request(),
                worker=make_worker(),
                kind=AssignmentKind.INNER,
                payment=1.0,
            )

    def test_outer_payment_bounds(self):
        with pytest.raises(ConfigurationError):
            outer_record(payment=0.0)
        with pytest.raises(ConfigurationError):
            outer_record(payment=11.0, value=10.0)
        assert outer_record(payment=10.0, value=10.0).payment == 10.0

    def test_platform_revenue(self):
        assert inner_record(value=10.0).platform_revenue == 10.0
        assert outer_record(value=10.0, payment=6.0).platform_revenue == 4.0


class TestMatchingLedger:
    def test_revenue_decomposition_eq1(self):
        ledger = MatchingLedger("A")
        ledger.record(inner_record("r1", "w1", value=10.0))
        ledger.record(outer_record("r2", "b1", value=8.0, payment=5.0))
        assert ledger.revenue_inner == 10.0
        assert ledger.revenue_outer == 3.0
        assert ledger.revenue == 13.0

    def test_counters(self):
        ledger = MatchingLedger("A")
        ledger.record(inner_record("r1", "w1"))
        ledger.record(outer_record("r2", "b1"))
        ledger.record_rejection(make_request("r3"))
        assert ledger.completed_requests == 2
        assert ledger.cooperative_requests == 1
        assert ledger.rejected_requests == 1

    def test_double_request_raises(self):
        ledger = MatchingLedger("A")
        ledger.record(inner_record("r1", "w1"))
        with pytest.raises(SimulationError):
            ledger.record(inner_record("r1", "w2"))

    def test_double_worker_raises(self):
        ledger = MatchingLedger("A")
        ledger.record(inner_record("r1", "w1"))
        with pytest.raises(SimulationError):
            ledger.record(inner_record("r2", "w1"))

    def test_match_then_reject_raises(self):
        ledger = MatchingLedger("A")
        ledger.record(inner_record("r1", "w1"))
        with pytest.raises(SimulationError):
            ledger.record_rejection(make_request("r1"))

    def test_lender_income(self):
        ledger = MatchingLedger("B")
        ledger.record_lender_income("A", 5.0)
        ledger.record_lender_income("A", 2.0)
        ledger.record_lender_income("C", 1.0)
        assert ledger.lender_income == {"A": 7.0, "C": 1.0}
        assert ledger.total_lender_income == 8.0

    def test_payment_rates(self):
        ledger = MatchingLedger("A")
        ledger.record(outer_record("r1", "b1", value=10.0, payment=7.0))
        assert ledger.outer_payment_rates() == [0.7]

    def test_mean_pickup_distance_empty(self):
        assert MatchingLedger("A").mean_pickup_distance() == 0.0


class TestValidateMatching:
    def test_empty_is_valid(self):
        validate_matching([])

    def test_valid_mixed(self):
        validate_matching([inner_record("r1", "w1"), outer_record("r2", "b1")])

    def test_time_violation(self):
        record = MatchRecord(
            request=make_request(t=1.0),
            worker=make_worker(t=2.0),
            kind=AssignmentKind.INNER,
        )
        with pytest.raises(ConstraintViolationError) as exc:
            validate_matching([record])
        assert exc.value.constraint == "time"

    def test_one_by_one_request_violation(self):
        records = [inner_record("r1", "w1"), inner_record("r1", "w2")]
        with pytest.raises(ConstraintViolationError) as exc:
            validate_matching(records)
        assert exc.value.constraint == "1-by-1"

    def test_one_by_one_worker_violation(self):
        records = [inner_record("r1", "w1"), inner_record("r2", "w1")]
        with pytest.raises(ConstraintViolationError) as exc:
            validate_matching(records)
        assert exc.value.constraint == "1-by-1"

    def test_range_violation(self):
        record = MatchRecord(
            request=make_request(x=5.0),
            worker=make_worker(x=0.0, radius=1.0),
            kind=AssignmentKind.INNER,
        )
        with pytest.raises(ConstraintViolationError) as exc:
            validate_matching([record])
        assert exc.value.constraint == "range"

    def test_kind_mismatch(self):
        record = MatchRecord(
            request=make_request(platform="A"),
            worker=make_worker(platform="B"),
            kind=AssignmentKind.OUTER,
            payment=5.0,
        )
        validate_matching([record])  # consistent
        bad = MatchRecord(
            request=make_request(platform="A"),
            worker=make_worker(platform="A"),
            kind=AssignmentKind.OUTER,
            payment=5.0,
        )
        with pytest.raises(ConstraintViolationError) as exc:
            validate_matching([bad])
        assert exc.value.constraint == "kind"

    def test_sharing_violation(self):
        record = MatchRecord(
            request=make_request(platform="A"),
            worker=make_worker(platform="B", shareable=False),
            kind=AssignmentKind.OUTER,
            payment=5.0,
        )
        with pytest.raises(ConstraintViolationError) as exc:
            validate_matching([record])
        assert exc.value.constraint == "sharing"
