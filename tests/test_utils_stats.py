"""Tests for streaming statistics."""

from __future__ import annotations

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import RunningStats, quantile, summarize

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(3.5)
        assert stats.mean == 3.5
        assert stats.min == 3.5
        assert stats.max == 3.5
        assert stats.stddev == 0.0

    def test_known_values(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.total == pytest.approx(10.0)
        assert stats.variance == pytest.approx(statistics.pvariance([1, 2, 3, 4]))

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_matches_statistics_module(self, data):
        stats = RunningStats()
        stats.extend(data)
        assert stats.mean == pytest.approx(statistics.fmean(data), rel=1e-9, abs=1e-6)
        assert stats.min == min(data)
        assert stats.max == max(data)

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.lists(finite_floats, min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, left, right):
        a = RunningStats()
        a.extend(left)
        b = RunningStats()
        b.extend(right)
        merged = a.merge(b)
        direct = RunningStats()
        direct.extend(left + right)
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(direct.variance, rel=1e-6, abs=1e-4)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        merged = a.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)


class TestQuantile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_median_odd(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 7.0, 9.0]
        assert quantile(data, 0.0) == 5.0
        assert quantile(data, 1.0) == 9.0

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_monotone_in_q(self, data):
        data = sorted(data)
        values = [quantile(data, q / 10) for q in range(11)]
        for lower, higher in zip(values, values[1:]):
            # Allow one ulp of interpolation noise.
            assert higher >= lower - 1e-9 * max(1.0, abs(lower))


class TestSummarize:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == pytest.approx(3.0)

    def test_percentiles_ordered(self):
        summary = summarize(range(1000))
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        assert not math.isnan(summary.stddev)
