"""Tests for the deterministic RNG plumbing."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.rng import SeedSequence, derive_rng, derive_seed, spawn_seeds


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_label_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "label")
        assert 0 <= seed < 2**64

    @given(st.integers(min_value=0, max_value=2**63), st.text(max_size=40))
    def test_stable_under_repetition(self, seed, label):
        assert derive_seed(seed, label) == derive_seed(seed, label)


class TestDeriveRng:
    def test_same_stream(self):
        a = derive_rng(7, "workload")
        b = derive_rng(7, "workload")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_independent_streams(self):
        a = derive_rng(7, "one")
        b = derive_rng(7, "two")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(1, "trial", 10)) == 10

    def test_distinct(self):
        seeds = spawn_seeds(1, "trial", 50)
        assert len(set(seeds)) == 50

    def test_deterministic(self):
        assert spawn_seeds(3, "x", 5) == spawn_seeds(3, "x", 5)


class TestSeedSequence:
    def test_child_path_isolation(self):
        root = SeedSequence(9)
        a = root.child("workload").derived_seed("requests")
        b = root.child("behavior").derived_seed("requests")
        assert a != b

    def test_same_path_same_stream(self):
        a = SeedSequence(7).child("w").rng("r")
        b = SeedSequence(7).child("w").rng("r")
        assert a.random() == b.random()

    def test_nested_children(self):
        root = SeedSequence(5)
        deep = root.child("a").child("b").child("c")
        assert deep.path == "a/b/c"

    def test_streams_are_independent(self):
        root = SeedSequence(11)
        streams = list(root.streams("trial", 3))
        values = [rng.random() for rng in streams]
        assert len(set(values)) == 3

    def test_root_label_default(self):
        # No label: falls back to a stable "root" identifier.
        assert SeedSequence(1).derived_seed() == SeedSequence(1).derived_seed()
