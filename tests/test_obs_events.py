"""Tests for :mod:`repro.obs.events` — the ``COMEVT1`` event log.

The anchor properties: the canonical projection is stable under process
restarts (``seq`` renumbering, ops markers), the file tail is
crash-tolerant exactly like the journal's, and subscriber backpressure
drops (and counts) instead of stalling the emitter.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import EventLogError
from repro.obs import MetricsRegistry
from repro.obs.events import (
    CANONICAL_KINDS,
    NULL_EVENT_SINK,
    EventLog,
    GatewayEvent,
    canonical_projection,
    encode_canonical,
    read_events,
    row_digest,
)


class TestEncoding:
    def test_encode_canonical_is_sorted_and_compact(self):
        assert encode_canonical({"b": 1, "a": [2, 3]}) == b'{"a":[2,3],"b":1}'

    def test_row_digest_is_order_independent(self):
        assert row_digest({"a": 1, "b": 2}) == row_digest({"b": 2, "a": 1})
        assert row_digest({"a": 1}) != row_digest({"a": 2})

    def test_envelope_collision_rejected(self):
        log = EventLog()
        with pytest.raises(EventLogError):
            log.emit("decision", 1.0, seq=9)

    def test_event_roundtrip(self):
        event = GatewayEvent(seq=3, kind="decision", time=2.5, fields={"x": 1})
        assert GatewayEvent.from_dict(event.as_dict()) == event

    def test_malformed_envelope_raises(self):
        with pytest.raises(EventLogError):
            GatewayEvent.from_dict({"seq": 1, "time": 0.0})  # no kind


class TestCanonicalProjection:
    def test_ops_kinds_and_seq_are_stripped(self):
        canonical = GatewayEvent(seq=0, kind="decision", time=1.0, fields={"a": 1})
        renumbered = GatewayEvent(
            seq=99, kind="decision", time=1.0, fields={"a": 1}
        )
        crash = GatewayEvent(seq=1, kind="crash", time=1.0, fields={})
        metrics = GatewayEvent(seq=2, kind="metrics", time=1.0, fields={})
        assert canonical_projection(
            [canonical, crash, metrics]
        ) == canonical_projection([renumbered])

    def test_wall_field_is_stripped(self):
        with_wall = GatewayEvent(
            seq=0, kind="drain", time=1.0, fields={"wall": 123.4, "a": 1}
        )
        without = GatewayEvent(seq=0, kind="drain", time=1.0, fields={"a": 1})
        assert canonical_projection([with_wall]) == canonical_projection(
            [without]
        )

    def test_empty_projection(self):
        assert canonical_projection([]) == b""


class TestEventLogFile:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "events.comevt"
        log = EventLog(path)
        log.emit("meta", 0.0, schema="COMEVT1")
        log.emit("decision", 1.0, request="r1", status="serve_inner")
        log.close()
        recorded = read_events(path)
        assert [event.kind for event in recorded] == ["meta", "decision"]
        assert [event.seq for event in recorded] == [0, 1]
        assert recorded[1].fields["request"] == "r1"

    def test_flush_makes_pending_batch_visible(self, tmp_path):
        path = tmp_path / "events.comevt"
        log = EventLog(path)
        log.emit("decision", 1.0, request="r1")
        log.flush()  # write-behind batch must land on flush, not close
        assert len(read_events(path)) == 1
        log.close()

    def test_torn_tail_is_tolerated_and_truncated_on_resume(self, tmp_path):
        path = tmp_path / "events.comevt"
        log = EventLog(path)
        for seq in range(4):
            log.emit("decision", float(seq), request=f"r{seq}")
        log.close()
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"kind":"decision","seq":4')  # torn
        assert len(read_events(path)) == 4  # reader drops the torn tail
        resumed = EventLog.resume(path)
        assert resumed.next_seq == 4
        resumed.emit("decision", 9.0, request="r4")
        resumed.close()
        recorded = read_events(path)
        assert [event.seq for event in recorded] == [0, 1, 2, 3, 4]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "events.comevt"
        log = EventLog(path)
        log.emit("decision", 1.0, request="r1")
        log.emit("decision", 2.0, request="r2")
        log.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"garbage not json\n" + lines[1])
        with pytest.raises(EventLogError):
            read_events(path)

    def test_resume_seeds_ring_and_continues_stream(self, tmp_path):
        path = tmp_path / "events.comevt"
        log = EventLog(path)
        log.emit("meta", 0.0)
        log.emit("decision", 1.0, request="r1")
        log.close()
        resumed = EventLog.resume(path)
        assert [event.seq for event in resumed.events()] == [0, 1]
        resumed.emit("recovered", 1.0, checkpoint_seq=0)
        resumed.close()
        assert [event.seq for event in read_events(path)] == [0, 1, 2]

    def test_emit_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "events.comevt"
        log = EventLog(path)
        log.emit("decision", 1.0)
        log.close()
        log.emit("decision", 2.0)
        assert len(read_events(path)) == 1


class TestEventLogLive:
    def test_ring_catchup_since(self):
        log = EventLog(ring=4)
        for seq in range(6):
            log.emit("decision", float(seq))
        assert [event.seq for event in log.events()] == [2, 3, 4, 5]
        assert [event.seq for event in log.events(since=4)] == [5]

    def test_unbounded_ring(self):
        log = EventLog(ring=0)
        for seq in range(5000):
            log.emit("decision", float(seq))
        assert len(log.events()) == 5000

    def test_subscriber_receives_live_events(self):
        async def scenario():
            log = EventLog()
            queue = log.subscribe()
            log.emit("decision", 1.0, request="r1")
            event = await asyncio.wait_for(queue.get(), timeout=1.0)
            assert event.kind == "decision"
            log.unsubscribe(queue)
            log.emit("decision", 2.0)
            assert queue.empty()

        asyncio.run(scenario())

    def test_slow_subscriber_drops_and_counts(self):
        async def scenario():
            registry = MetricsRegistry()
            log = EventLog(registry=registry, queue_limit=2)
            log.subscribe()
            for seq in range(5):
                log.emit("decision", float(seq))
            assert log.dropped == 3
            assert (
                registry.counter("service_events_dropped_total").value(
                    reason="slow_subscriber"
                )
                == 3
            )

        asyncio.run(scenario())

    def test_observer_runs_inline(self):
        log = EventLog()
        seen: list[str] = []
        log.add_observer(lambda event: seen.append(event.kind))
        log.emit("decision", 1.0)
        log.emit("shed", 2.0)
        assert seen == ["decision", "shed"]

    def test_registry_counters_and_stats(self):
        registry = MetricsRegistry()
        log = EventLog(registry=registry)
        log.emit("decision", 1.0)
        log.emit("decision", 2.0)
        log.emit("worker", 3.0)
        assert (
            registry.counter("service_events_total").value(kind="decision")
            == 2
        )
        stats = log.stats()
        assert stats["emitted"] == 3
        assert stats["next_seq"] == 3
        assert stats["dropped"] == 0
        assert stats["lag"] == 0
        assert stats["events_per_second"] >= 0.0

    def test_null_sink_is_disabled_noop(self):
        assert NULL_EVENT_SINK.enabled is False
        NULL_EVENT_SINK.emit("decision", 1.0, request="r")
        NULL_EVENT_SINK.flush()
        NULL_EVENT_SINK.close()

    def test_canonical_kinds_partition(self):
        from repro.obs.events import OPS_KINDS

        assert not (CANONICAL_KINDS & OPS_KINDS)
        assert "decision" in CANONICAL_KINDS
        assert "crash" in OPS_KINDS


class TestFileFormat:
    def test_lines_are_canonical_json(self, tmp_path):
        path = tmp_path / "events.comevt"
        log = EventLog(path)
        log.emit("decision", 1.0, request="r1", payment=2.5)
        log.close()
        line = path.read_bytes().splitlines()[0]
        payload = json.loads(line)
        assert line == encode_canonical(payload)
        assert set(payload) == {"kind", "seq", "time", "request", "payment"}
