"""Determinism regression: results must not depend on PYTHONHASHSEED.

Runs the same DemCOM + RamCOM simulation in two fresh interpreter
processes with *different* hash seeds and asserts the JSON reports are
byte-identical.  Builtin ``hash()`` and raw set/dict-ordering leaks are
exactly what DET003/DET004 lint for; this is the end-to-end backstop.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parents[1]
HELPER = Path(__file__).parent / "helpers" / "determinism_report.py"


def _report(hash_seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("COM_REPRO_SANITIZE", None)
    completed = subprocess.run(
        [sys.executable, str(HELPER)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr.decode()
    return completed.stdout


def test_reports_identical_across_hash_seeds() -> None:
    first = _report("0")
    second = _report("12345")
    assert first == second
    # sanity: the report is non-trivial (both algorithms, both platforms)
    assert b"DemCOM" in first and b"RamCOM" in first
    assert b"revenue" in first
