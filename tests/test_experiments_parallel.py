"""The parallel experiment executor's byte-identity guarantee.

``ParallelRunner`` fans (algorithm, seed) cells across a process pool and
must merge them into *exactly* the rows the serial harness produces —
deterministic fields byte for byte, pooled telemetry included.  Wall-clock
derived values (``response_time_ms``, the
:data:`repro.obs.WALL_CLOCK_FAMILIES` histogram families) are outside the
guarantee and stripped before comparison, as documented in
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import json

import pytest

from repro.core.simulator import SimulatorConfig
from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    ParallelRunner,
    average_metrics,
    run_algorithm,
    run_comparison,
)
from repro.experiments.parallel import resolve_jobs, run_cell
from repro.experiments.reporting import metrics_to_dict
from repro.obs import WALL_CLOCK_FAMILIES, MetricsSnapshot

from conftest import make_request, make_scenario, make_worker


def _scenario():
    workers = [
        make_worker(f"a{i}", "A", i * 0.2, x=i * 0.25, y=0.1 * i, radius=1.8)
        for i in range(8)
    ] + [
        make_worker(f"b{i}", "B", i * 0.3, x=i * 0.35, y=0.2, radius=1.5)
        for i in range(6)
    ]
    requests = [
        make_request(f"ra{i}", "A", 2.0 + i * 0.3, x=i * 0.25, value=4.0 + i)
        for i in range(10)
    ] + [
        make_request(f"rb{i}", "B", 2.4 + i * 0.4, x=i * 0.35, y=0.2, value=6.0)
        for i in range(6)
    ]
    return make_scenario(workers, requests, platform_ids=["A", "B"])


def _config(**overrides):
    defaults = dict(
        seeds=(0, 1, 2),
        service_duration=600.0,
        simulator=SimulatorConfig(measure_response_time=False),
        telemetry=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _canonical(rows) -> str:
    """Deterministic JSON view: wall-clock values stripped."""
    payload = []
    for row in rows:
        entry = metrics_to_dict(row)
        # OFF amortizes its solve wall-clock into response_time_ms; online
        # rows ran with measure_response_time=False, so dropping the field
        # uniformly loses nothing deterministic.
        entry.pop("response_time_ms", None)
        if row.telemetry is not None:
            entry["telemetry"] = row.telemetry.without_wall_clock().as_dict()
        payload.append(entry)
    return json.dumps(payload, sort_keys=True, default=str)


ALGORITHMS = ["demcom", "ramcom", "off"]


class TestByteIdentity:
    def test_parallel_equals_serial_including_telemetry(self):
        scenario = _scenario()
        config = _config()
        serial = run_comparison(scenario, ALGORITHMS, config)
        parallel = ParallelRunner(jobs=2).run_comparison(
            scenario, ALGORITHMS, config
        )
        assert _canonical(parallel) == _canonical(serial)

    def test_config_jobs_dispatches_to_parallel(self):
        scenario = _scenario()
        serial = run_comparison(scenario, ["demcom"], _config())
        via_config = run_comparison(scenario, ["demcom"], _config(jobs=2))
        assert _canonical(via_config) == _canonical(serial)

    def test_run_algorithm_parallel_counterpart(self):
        scenario = _scenario()
        serial = run_algorithm(scenario, "ramcom", _config())
        parallel = ParallelRunner(jobs=2).run_algorithm(
            scenario, "ramcom", _config()
        )
        assert _canonical([parallel]) == _canonical([serial])

    def test_single_job_falls_back_in_process(self):
        scenario = _scenario()
        config = _config()
        serial = run_comparison(scenario, ["tota"], config)
        in_process = ParallelRunner(jobs=1).run_comparison(
            scenario, ["tota"], config
        )
        assert _canonical(in_process) == _canonical(serial)


class TestCells:
    def test_run_cell_matches_one_serial_seed(self):
        # A cell is one *inner* per-seed iteration; the runner (like the
        # serial harness) folds cells through average_metrics, so the
        # averaged single cell must equal the serial single-seed row.
        scenario = _scenario()
        config = _config(seeds=(4,), telemetry=False)
        row = average_metrics([run_cell(_scenario(), "demcom", 4, config)])
        serial = run_algorithm(scenario, "demcom", config)
        assert _canonical([row]) == _canonical([serial])

    def test_run_cell_none_seed_is_offline(self):
        config = _config(telemetry=False)
        row = run_cell(_scenario(), "off", None, config)
        serial = run_algorithm(_scenario(), "off", config)
        assert row.algorithm == serial.algorithm
        assert row.revenue == serial.revenue

    def test_empty_seeds_raise(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(jobs=2).run_comparison(
                _scenario(), ["demcom"], _config(seeds=())
            )

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)


class TestWallClockCanonicalization:
    def test_without_families_drops_all_kinds(self):
        snapshot = MetricsSnapshot(
            counters={"a_total": [], "decision_seconds": []},
            gauges={"decision_seconds": []},
            histograms={"decision_seconds": [], "keep_me": []},
        )
        stripped = snapshot.without_families("decision_seconds")
        assert "decision_seconds" not in stripped.counters
        assert "decision_seconds" not in stripped.gauges
        assert "decision_seconds" not in stripped.histograms
        assert "a_total" in stripped.counters
        assert "keep_me" in stripped.histograms

    def test_wall_clock_families_are_the_measured_latencies(self):
        assert "decision_seconds" in WALL_CLOCK_FAMILIES
        assert "exchange_rpc_seconds" in WALL_CLOCK_FAMILIES

    def test_summary_without_wall_clock_is_parallel_stable(self):
        scenario = _scenario()
        config = _config(seeds=(0,))
        serial = run_comparison(scenario, ["demcom"], config)[0]
        parallel = ParallelRunner(jobs=2).run_comparison(
            scenario, ["demcom", "ramcom"], config
        )[0]
        assert serial.telemetry is not None and parallel.telemetry is not None
        assert (
            serial.telemetry.without_wall_clock().as_dict()
            == parallel.telemetry.without_wall_clock().as_dict()
        )
