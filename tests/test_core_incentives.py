"""Tests for the incentive machinery: Eq. 4, Algorithm 2, and MER pricing."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.acceptance import AcceptanceEstimator
from repro.core.payment import (
    MinimumOuterPaymentEstimator,
    PaymentEstimate,
    sample_count,
)
from repro.core.pricing import MaximumExpectedRevenuePricer
from repro.errors import ConfigurationError


class TestAcceptanceEstimator:
    def test_invalid_defaults(self):
        with pytest.raises(ConfigurationError):
            AcceptanceEstimator(default_probability=1.5)
        with pytest.raises(ConfigurationError):
            AcceptanceEstimator(mode="weird")

    def test_cold_start_default(self):
        estimator = AcceptanceEstimator(default_probability=0.4)
        assert estimator.probability(5.0, "ghost", 10.0) == 0.4
        assert estimator.probability(0.0, "ghost", 10.0) == 0.0

    def test_eq4_relative(self):
        estimator = AcceptanceEstimator()
        estimator.set_history("w", [0.5, 0.6, 0.8, 0.9])
        # offer rate 0.7 clears two of four history rates
        assert estimator.probability(7.0, "w", 10.0) == 0.5
        assert estimator.probability(10.0, "w", 10.0) == 1.0
        assert estimator.probability(4.0, "w", 10.0) == 0.0

    def test_eq4_absolute(self):
        estimator = AcceptanceEstimator(mode="absolute")
        estimator.set_history("w", [3.0, 6.0])
        assert estimator.probability(4.0, "w", 100.0) == 0.5
        assert estimator.probability(6.0, "w", 1.0) == 1.0

    def test_probability_monotone_in_payment(self):
        estimator = AcceptanceEstimator()
        estimator.set_history("w", [0.2, 0.4, 0.6, 0.8])
        probabilities = [
            estimator.probability(p, "w", 10.0) for p in (1, 3, 5, 7, 9, 10)
        ]
        assert probabilities == sorted(probabilities)

    def test_invalid_request_value(self):
        estimator = AcceptanceEstimator()
        estimator.set_history("w", [0.5])
        with pytest.raises(ConfigurationError):
            estimator.probability(1.0, "w", 0.0)

    def test_record_completion_keeps_sorted(self):
        estimator = AcceptanceEstimator()
        estimator.record_completion("w", 8.0, 10.0)
        estimator.record_completion("w", 2.0, 10.0)
        assert estimator.history_size("w") == 2
        assert estimator.probability(5.0, "w", 10.0) == 0.5

    def test_candidate_payments_relative(self):
        estimator = AcceptanceEstimator()
        estimator.set_history("w", [0.5, 0.9, 1.2])
        payments = estimator.candidate_payments("w", 10.0)
        assert payments == [5.0, 9.0]  # 1.2 exceeds the value, dropped

    def test_candidate_payments_absolute(self):
        estimator = AcceptanceEstimator(mode="absolute")
        estimator.set_history("w", [3.0, 12.0])
        assert estimator.candidate_payments("w", 10.0) == [3.0]

    def test_support(self):
        estimator = AcceptanceEstimator()
        assert estimator.support("w") is None
        estimator.set_history("w", [0.3, 0.7])
        assert estimator.support("w") == (0.3, 0.7)

    def test_has_history(self):
        estimator = AcceptanceEstimator()
        assert not estimator.has_history("w")
        estimator.set_history("w", [0.5])
        assert estimator.has_history("w")


class TestSampleCount:
    def test_lemma1_formula(self):
        import math

        assert sample_count(0.1, 0.5) == math.ceil(4 * math.log(20) / 0.25)

    def test_invalid_ranges(self):
        with pytest.raises(ConfigurationError):
            sample_count(0.0, 0.5)
        with pytest.raises(ConfigurationError):
            sample_count(0.1, 1.0)

    def test_tighter_knobs_cost_more_samples(self):
        assert sample_count(0.05, 0.3) > sample_count(0.1, 0.5)


class TestMinimumOuterPaymentEstimator:
    def _estimator(self, histories: dict, **kwargs) -> MinimumOuterPaymentEstimator:
        acceptance = AcceptanceEstimator()
        for worker_id, history in histories.items():
            acceptance.set_history(worker_id, history)
        return MinimumOuterPaymentEstimator(acceptance, **kwargs)

    def test_no_candidates_always_rejected(self):
        estimator = self._estimator({})
        result = estimator.estimate(10.0, [], random.Random(0))
        assert result.always_rejected
        assert result.payment > 10.0

    def test_invalid_value_raises(self):
        estimator = self._estimator({"w": [0.5]})
        with pytest.raises(ConfigurationError):
            estimator.estimate(0.0, ["w"], random.Random(0))

    def test_deterministic_cliff(self):
        # History all at rate 0.5: acceptance is a step at half the value.
        estimator = self._estimator({"w": [0.5] * 10})
        result = estimator.estimate(10.0, ["w"], random.Random(1))
        # Bisection brackets the cliff at 5.0 within xi * value.
        assert 5.0 - 1.0 <= result.payment <= 5.0 + 1.0
        assert result.rejected_instances == 0

    def test_estimate_undershoots_cliff(self):
        """The midpoint reading sits at or below the acceptance cliff —
        DemCOM's documented weakness (§III-D)."""
        estimator = self._estimator({"w": [0.5] * 10})
        result = estimator.estimate(10.0, ["w"], random.Random(1))
        assert result.payment <= 5.0

    def test_unreachable_worker_rejects(self):
        # History rates above 1: no payment <= v_r can clear them.
        estimator = self._estimator({"w": [1.5] * 5})
        result = estimator.estimate(10.0, ["w"], random.Random(0))
        assert result.always_rejected

    def test_cheapest_candidate_drives_payment(self):
        cheap_only = self._estimator({"cheap": [0.3] * 20}).estimate(
            10.0, ["cheap"], random.Random(2)
        )
        both = self._estimator(
            {"cheap": [0.3] * 20, "dear": [0.9] * 20}
        ).estimate(10.0, ["cheap", "dear"], random.Random(2))
        assert both.payment <= cheap_only.payment + 1.0

    def test_sample_count_matches_config(self):
        estimator = self._estimator({"w": [0.5]}, xi=0.2, eta=0.7)
        assert estimator.samples == sample_count(0.2, 0.7)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1.0, max_value=50.0), st.integers(0, 2**31))
    def test_payment_positive_and_bounded(self, value, seed):
        estimator = self._estimator({"w": [0.4, 0.6, 0.8]})
        result = estimator.estimate(value, ["w"], random.Random(seed))
        assert 0.0 < result.payment <= value + estimator.epsilon + 1e-9

    def test_deterministic_given_rng(self):
        estimator = self._estimator({"w": [0.4, 0.6, 0.8]})
        a = estimator.estimate(10.0, ["w"], random.Random(9)).payment
        b = estimator.estimate(10.0, ["w"], random.Random(9)).payment
        assert a == b


class TestMaximumExpectedRevenuePricer:
    def _pricer(self, histories: dict, **kwargs) -> MaximumExpectedRevenuePricer:
        acceptance = AcceptanceEstimator()
        for worker_id, history in histories.items():
            acceptance.set_history(worker_id, history)
        return MaximumExpectedRevenuePricer(acceptance, **kwargs)

    def test_invalid_config(self):
        acceptance = AcceptanceEstimator()
        with pytest.raises(ConfigurationError):
            MaximumExpectedRevenuePricer(acceptance, grid_steps=0)
        with pytest.raises(ConfigurationError):
            MaximumExpectedRevenuePricer(acceptance, max_breakpoints=-1)

    def test_no_candidates(self):
        pricer = self._pricer({})
        quote = pricer.quote(10.0, [])
        assert quote.expected_revenue == 0.0
        assert quote.acceptance_probability == 0.0

    def test_invalid_value(self):
        pricer = self._pricer({"w": [0.5]})
        with pytest.raises(ConfigurationError):
            pricer.quote(-1.0, ["w"])

    def test_single_cliff_pays_just_above(self):
        # Step CDF at rate 0.6: optimum is the breakpoint itself.
        pricer = self._pricer({"w": [0.6] * 10})
        quote = pricer.quote(10.0, ["w"])
        assert quote.payment == pytest.approx(6.0)
        assert quote.acceptance_probability == 1.0
        assert quote.expected_revenue == pytest.approx(4.0)

    def test_exactness_from_breakpoints(self):
        # Without breakpoints a coarse grid misses the 0.61 step.
        histories = {"w": [0.61] * 10}
        exact = self._pricer(histories, grid_steps=5).quote(10.0, ["w"])
        coarse = self._pricer(
            histories, grid_steps=5, include_history_breakpoints=False
        ).quote(10.0, ["w"])
        assert exact.expected_revenue >= coarse.expected_revenue
        assert exact.payment == pytest.approx(6.1)

    def test_multiple_workers_any_acceptance(self):
        # Two workers with step CDFs at 0.5 and 0.9: paying 0.5v reaches
        # one worker with probability 1.
        pricer = self._pricer({"a": [0.5] * 10, "b": [0.9] * 10})
        quote = pricer.quote(10.0, ["a", "b"])
        assert quote.payment == pytest.approx(5.0)
        assert quote.acceptance_probability == 1.0

    def test_trade_off_prefers_expected_revenue(self):
        # Worker accepts at 0.2 with prob 0.5 or at 0.8 surely:
        # (10-2)*0.5 = 4.0 > (10-8)*1.0 = 2.0 -> pick the cheap gamble.
        pricer = self._pricer({"w": [0.2] * 5 + [0.8] * 5})
        quote = pricer.quote(10.0, ["w"])
        assert quote.payment == pytest.approx(2.0)
        assert quote.expected_revenue == pytest.approx(4.0)

    def test_quote_never_exceeds_value(self):
        pricer = self._pricer({"w": [0.4, 1.3]})
        quote = pricer.quote(10.0, ["w"])
        assert 0.0 < quote.payment <= 10.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.05, max_value=1.2), min_size=1, max_size=20),
        st.floats(min_value=1.0, max_value=40.0),
    )
    def test_optimum_dominates_grid(self, history, value):
        """The returned quote is at least as good as every grid candidate."""
        pricer = self._pricer({"w": history})
        quote = pricer.quote(value, ["w"])
        acceptance = pricer.estimator
        for i in range(1, 51):
            payment = value * i / 50
            probability = acceptance.probability(payment, "w", value)
            assert quote.expected_revenue >= (value - payment) * probability - 1e-9


class TestLemma1Accuracy:
    """Empirical check of Lemma 1: with n_s = ceil(4 ln(2/xi) / eta^2)
    instances, the estimate deviates from its expectation by more than a
    xi-fraction with probability below eta."""

    def test_concentration_bound_holds(self):
        import random as random_module

        acceptance = AcceptanceEstimator()
        # Three candidates with soft cliffs around rates 0.6-0.8.
        rng = random_module.Random(0)
        for index, center in enumerate((0.6, 0.7, 0.8)):
            acceptance.set_history(
                f"w{index}",
                [max(0.05, rng.gauss(center, 0.05)) for _ in range(60)],
            )
        xi, eta = 0.1, 0.5
        estimator = MinimumOuterPaymentEstimator(acceptance, xi=xi, eta=eta)
        workers = ["w0", "w1", "w2"]
        value = 10.0

        # Ground truth: the estimator's own expectation, taken over many
        # independent runs (400 * n_s instances in total).
        truth = sum(
            estimator.estimate(value, workers, random_module.Random(1000 + i)).payment
            for i in range(60)
        ) / 60

        violations = 0
        trials = 120
        for trial in range(trials):
            estimate = estimator.estimate(
                value, workers, random_module.Random(trial)
            ).payment
            if estimate - truth > xi * truth:
                violations += 1
        # Lemma 1 guarantees < eta; allow generous sampling slack.
        assert violations / trials < eta

    def test_more_samples_tighter_spread(self):
        import random as random_module
        import statistics

        acceptance = AcceptanceEstimator()
        rng = random_module.Random(3)
        acceptance.set_history(
            "w", [max(0.05, rng.gauss(0.7, 0.08)) for _ in range(60)]
        )

        def spread(xi, eta):
            estimator = MinimumOuterPaymentEstimator(acceptance, xi=xi, eta=eta)
            values = [
                estimator.estimate(10.0, ["w"], random_module.Random(i)).payment
                for i in range(60)
            ]
            return statistics.pstdev(values)

        loose = spread(0.2, 0.7)   # few instances
        tight = spread(0.05, 0.25)  # many instances
        assert tight < loose
