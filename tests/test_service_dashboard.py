"""Tests for event-log record→replay and the live dashboard.

Two anchors:

* **verified replay** — a ``COMEVT1`` stream recorded from a gateway run
  re-drives through :func:`~repro.service.replay.replay_event_log` and
  reproduces both the canonical stream and the metrics row byte for
  byte, for DemCOM and RamCOM, in-process and over TCP;
* **dashboard** — :class:`~repro.service.dashboard.LiveState` folds the
  stream into a consistent world view, and
  :class:`~repro.service.dashboard.DashboardServer` serves it over plain
  HTTP/SSE with wall-clock metric families stripped from ``/state``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ServiceError
from repro.obs.events import EventLog, GatewayEvent, read_events
from repro.obs.summary import WALL_CLOCK_FAMILIES
from repro.service import (
    DashboardServer,
    LiveState,
    MatchingGateway,
    ReplayReport,
    replay_event_log,
    request_to_wire,
)
from repro.core.events import EventKind

from test_service import build_scenario, golden_row, service_config, submit_event


async def record_run(scenario, algorithm, config, path) -> MatchingGateway:
    """Drive the full trace through a recording gateway and drain it."""
    gateway = MatchingGateway(scenario, algorithm, config, events=path)
    await gateway.start()
    for event in scenario.events:
        await submit_event(gateway, event)
    await gateway.drain()
    await gateway.stop()
    return gateway


class TestRecordReplay:
    @pytest.mark.parametrize("algorithm", ["demcom", "ramcom"])
    @pytest.mark.parametrize("tcp", [False, True], ids=["in-process", "tcp"])
    def test_replay_reproduces_the_run(self, tmp_path, algorithm, tcp):
        scenario = build_scenario(seed=11, requests=50, workers=25)
        config = service_config()
        path = tmp_path / "events.comevt"

        async def main() -> ReplayReport:
            await record_run(scenario, algorithm, config, path)
            return await replay_event_log(
                path, scenario, algorithm=algorithm, config=config, tcp=tcp
            )

        report = asyncio.run(main())
        assert report.verified
        assert report.stream_identical and report.row_identical
        assert report.mode == ("tcp" if tcp else "in-process")
        trace = list(scenario.events)
        assert report.requests == sum(
            1 for event in trace if event.kind is EventKind.REQUEST
        )
        assert report.workers == sum(
            1 for event in trace if event.kind is EventKind.WORKER
        )
        assert report.sheds == 0
        assert report.crashes_recorded == 0
        # The replayed row also equals the offline golden row.
        assert (
            json.dumps(report.metrics_row, sort_keys=True)
            == golden_row(scenario, algorithm, config)
        )
        payload = report.as_dict()
        assert payload["verified"] is True
        assert payload["canonical_events"] <= payload["recorded_events"]

    def test_shed_events_replay_identically(self, tmp_path):
        scenario = build_scenario(seed=13, requests=30, workers=15)
        config = service_config()
        path = tmp_path / "events.comevt"

        async def main() -> ReplayReport:
            gateway = MatchingGateway(
                scenario, "ramcom", config, events=path
            )
            await gateway.start()
            shed_budget = 3
            for event in scenario.events:
                if event.kind is EventKind.REQUEST and shed_budget > 0:
                    shed_budget -= 1
                    await gateway.replay_shed(event.request)
                else:
                    await submit_event(gateway, event)
            await gateway.drain()
            await gateway.stop()
            return await replay_event_log(
                path, scenario, algorithm="ramcom", config=config
            )

        report = asyncio.run(main())
        assert report.sheds == 3
        assert report.requests == 27
        assert report.verified

    def test_foreign_stream_is_rejected(self, tmp_path):
        scenario = build_scenario(seed=11, requests=20, workers=10)
        config = service_config()
        path = tmp_path / "events.comevt"

        async def main() -> None:
            await record_run(scenario, "ramcom", config, path)
            # Same recording, wrong algorithm for the replay deployment.
            await replay_event_log(
                path, scenario, algorithm="demcom", config=config
            )

        with pytest.raises(ServiceError, match="does not match"):
            asyncio.run(main())

    def test_stream_without_meta_is_rejected(self, tmp_path):
        path = tmp_path / "events.comevt"
        log = EventLog(path)
        log.emit("worker", 1.0, worker={"id": "w1"})
        log.close()
        scenario = build_scenario(seed=11, requests=5, workers=5)
        with pytest.raises(ServiceError, match="no meta event"):
            asyncio.run(
                replay_event_log(path, scenario, config=service_config())
            )

    def test_recording_is_complete_and_self_describing(self, tmp_path):
        scenario = build_scenario(seed=11, requests=20, workers=10)
        path = tmp_path / "events.comevt"
        asyncio.run(record_run(scenario, "ramcom", service_config(), path))
        recorded = read_events(path)
        kinds = [event.kind for event in recorded]
        assert kinds[0] == "meta"
        assert kinds[-1] == "drain"
        meta = recorded[0].fields
        assert meta["algorithm"] == "RamCOM"  # the engine's display name
        assert meta["scenario"] == scenario.name
        drain = recorded[-1].fields
        assert "metrics_sha256" in drain
        trace = list(scenario.events)
        assert kinds.count("decision") == sum(
            1 for event in trace if event.kind is EventKind.REQUEST
        )
        assert kinds.count("worker") == sum(
            1 for event in trace if event.kind is EventKind.WORKER
        )


def _decision_event(
    seq: int, request_id: str = "r1", worker: str | None = "w1"
) -> GatewayEvent:
    fields = {
        "request": {
            "id": request_id,
            "platform": "p1",
            "x": 1.5,
            "y": 2.5,
            "release": 1.0,
            "deadline": 9.0,
        },
        "platform": "p1",
        "status": "serve_inner",
        "worker": worker,
        "payment": 4.0,
    }
    return GatewayEvent(seq=seq, kind="decision", time=1.0, fields=fields)


class TestLiveState:
    def test_cell_km_must_be_positive(self):
        with pytest.raises(ServiceError):
            LiveState(cell_km=0.0)

    def test_worker_and_decision_fold(self):
        state = LiveState(cell_km=1.0)
        state.apply(
            GatewayEvent(
                seq=0,
                kind="worker",
                time=0.5,
                fields={
                    "worker": {"id": "w1", "platform": "p1", "x": 0.0, "y": 0.0}
                },
            )
        )
        state.apply(_decision_event(seq=1))
        assert state.workers["w1"]["status"] == "matched"
        assert state.requests["r1"]["status"] == "serve_inner"
        assert state.cells == {"1,2": 1}
        assert state.decisions == {"serve_inner": 1}
        assert state.payments == 4.0
        assert len(state.matches) == 1
        assert state.events_seen == 2
        assert state.last_time == 1.0

    def test_resolution_updates_request_by_id(self):
        state = LiveState()
        state.apply(_decision_event(seq=0, worker=None))
        state.apply(
            GatewayEvent(
                seq=1,
                kind="resolution",
                time=5.0,
                fields={
                    "request": "r1",
                    "status": "expired",
                    "worker": None,
                },
            )
        )
        assert state.requests["r1"]["status"] == "expired"
        assert state.cells == {"1,2": 1}  # resolution adds no new cell
        assert state.decisions == {"serve_inner": 1, "expired": 1}

    def test_ops_events_fold_into_counters(self):
        state = LiveState()
        state.apply(
            GatewayEvent(
                seq=0, kind="breaker", time=1.0, fields={"trips": 2}
            )
        )
        state.apply(GatewayEvent(seq=1, kind="crash", time=2.0, fields={}))
        state.apply(GatewayEvent(seq=2, kind="recovered", time=3.0, fields={}))
        state.apply(GatewayEvent(seq=3, kind="drain", time=4.0, fields={}))
        assert state.breaker_trips == 2
        assert state.crashes == 1
        assert state.recoveries == 1
        assert state.drained is True

    def test_shed_fold(self):
        state = LiveState()
        state.apply(
            GatewayEvent(
                seq=0,
                kind="shed",
                time=1.0,
                fields={
                    "request": {
                        "id": "r9",
                        "platform": "p2",
                        "x": -0.5,
                        "y": 0.5,
                    }
                },
            )
        )
        assert state.sheds == 1
        assert state.requests["r9"]["status"] == "shed"

    def test_as_dict_is_json_ready(self):
        state = LiveState()
        state.apply(_decision_event(seq=0))
        payload = json.loads(json.dumps(state.as_dict()))
        assert payload["decisions"] == {"serve_inner": 1}
        assert payload["events_seen"] == 1


async def _http_get(host: str, port: int, path: str) -> tuple[str, bytes]:
    """Minimal HTTP/1.0-style GET; returns (status line, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, __, body = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n", 1)[0].decode(), body


class TestDashboardServer:
    def test_requires_an_event_log(self):
        scenario = build_scenario(seed=11, requests=5, workers=5)
        gateway = MatchingGateway(scenario, "ramcom", service_config())
        with pytest.raises(ServiceError, match="needs an EventLog"):
            DashboardServer(gateway)

    def test_address_before_start_raises(self):
        scenario = build_scenario(seed=11, requests=5, workers=5)
        gateway = MatchingGateway(
            scenario, "ramcom", service_config(), events=EventLog()
        )
        server = DashboardServer(gateway)
        with pytest.raises(ServiceError, match="not started"):
            server.address

    def test_http_endpoints(self, tmp_path):
        scenario = build_scenario(seed=11, requests=40, workers=20)
        config = service_config()

        async def main() -> dict:
            gateway = MatchingGateway(scenario, "ramcom", config)
            # Attach with the gateway's registry so the emission counters
            # show up under /metrics.
            gateway.attach_events(EventLog(registry=gateway.registry))
            dashboard = DashboardServer(gateway, cell_km=2.0)
            host, port = await dashboard.start()
            await gateway.start()
            for event in scenario.events:
                await submit_event(gateway, event)
            await gateway.drain()

            pages: dict[str, tuple[str, bytes]] = {}
            for path in ("/", "/state", "/metrics", "/missing"):
                pages[path] = await _http_get(host, port, path)
            post_reader, post_writer = await asyncio.open_connection(
                host, port
            )
            post_writer.write(b"POST /state HTTP/1.1\r\n\r\n")
            await post_writer.drain()
            post_status = (await post_reader.read()).split(b"\r\n", 1)[0]
            post_writer.close()
            pages["POST"] = (post_status.decode(), b"")

            await gateway.stop()
            await dashboard.stop()
            return pages

        pages = asyncio.run(main())
        assert pages["/"][0].startswith("HTTP/1.1 200")
        assert b"<!DOCTYPE html>" in pages["/"][1]
        assert pages["/missing"][0].startswith("HTTP/1.1 404")
        assert pages["POST"][0].startswith("HTTP/1.1 405")

        state = json.loads(pages["/state"][1])
        assert state["world"]["drained"] is True
        assert state["world"]["decisions"]  # at least one decision folded
        assert state["stats"]["events"]["emitted"] > 0
        assert state["stats"]["events"]["lag"] == 0
        assert "events_per_second" in state["stats"]["events"]
        # Wall-clock families are stripped from every nested snapshot.
        flat = json.dumps(state)
        for family in WALL_CLOCK_FAMILIES:
            assert family not in flat

        metrics = json.loads(pages["/metrics"][1])
        assert "counters" in metrics
        assert "service_events_total" in metrics["counters"]

    def test_sse_stream_catches_up_and_follows(self):
        scenario = build_scenario(seed=11, requests=10, workers=5)
        config = service_config()

        async def main() -> list[dict]:
            gateway = MatchingGateway(
                scenario, "ramcom", config, events=EventLog()
            )
            dashboard = DashboardServer(gateway)
            host, port = await dashboard.start()
            await gateway.start()
            events = list(scenario.events)
            half = len(events) // 2
            for event in events[:half]:
                await submit_event(gateway, event)

            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /events HTTP/1.1\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"text/event-stream" in head

            # Ring catch-up arrives first; then live events follow as
            # the rest of the trace is driven.
            for event in events[half:]:
                await submit_event(gateway, event)
            await gateway.drain()

            frames: list[dict] = []
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line.startswith(b"data: "):
                    frames.append(json.loads(line[len(b"data: ") :]))
                    if frames[-1]["kind"] == "drain":
                        break
            writer.close()
            await gateway.stop()
            await dashboard.stop()
            return frames

        frames = asyncio.run(main())
        kinds = [frame["kind"] for frame in frames]
        assert kinds[0] == "meta"
        assert kinds[-1] == "drain"
        assert "decision" in kinds
        seqs = [frame["seq"] for frame in frames]
        assert seqs == sorted(set(seqs))  # in order, no duplicates

    def test_state_reflects_recorded_file_on_attach(self, tmp_path):
        # A dashboard attached to a resumed log folds the ring catch-up.
        scenario = build_scenario(seed=11, requests=20, workers=10)
        config = service_config()
        path = tmp_path / "events.comevt"
        asyncio.run(record_run(scenario, "ramcom", config, path))

        gateway = MatchingGateway(scenario, "ramcom", config)
        gateway.attach_events(EventLog.resume(path), recovered=False)
        dashboard = DashboardServer(gateway)
        assert dashboard.state.drained is True
        assert dashboard.state.events_seen == len(read_events(path))
        assert sum(dashboard.state.decisions.values()) >= 20
        gateway.events.close()


class TestWireHelpers:
    def test_decision_event_round_trips_request_wire(self, tmp_path):
        scenario = build_scenario(seed=11, requests=5, workers=5)
        path = tmp_path / "events.comevt"
        asyncio.run(record_run(scenario, "ramcom", service_config(), path))
        decisions = [
            event
            for event in read_events(path)
            if event.kind == "decision"
        ]
        originals = {
            event.request.request_id: event.request
            for event in scenario.events
            if event.kind is EventKind.REQUEST
        }
        for event in decisions:
            wire = event.fields["request"]
            assert wire == request_to_wire(originals[wire["id"]])
