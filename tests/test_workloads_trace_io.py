"""Tests for real-trace CSV loading and scenario conversion."""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro.errors import WorkloadError
from repro.geo.distance import haversine_km
from repro.geo.point import Point
from repro.workloads import RawTrace, load_trace_csv, scenario_from_traces

DATA = Path(__file__).resolve().parent.parent / "data"


def write_csv(tmp_path: Path, rows: list[str], header: str | None = None) -> Path:
    path = tmp_path / "trace.csv"
    lines = [header or "kind,id,timestamp,lon,lat,value,radius"]
    lines.extend(rows)
    path.write_text("\n".join(lines) + "\n")
    return path


class TestLoadTraceCsv:
    def test_sample_files_load(self):
        trace = load_trace_csv(DATA / "sample_trace_didi.csv", "didi")
        assert trace.platform_id == "didi"
        assert len(trace.workers) == 30
        assert len(trace.requests) == 120

    def test_hhmmss_timestamps(self, tmp_path):
        path = write_csv(
            tmp_path,
            ["worker,w1,08:30:15,104.0,30.6,,1.5"],
        )
        trace = load_trace_csv(path, "p")
        __, time_seconds, __, __, radius = trace.workers[0]
        assert time_seconds == 8 * 3600 + 30 * 60 + 15
        assert radius == 1.5

    def test_numeric_timestamps(self, tmp_path):
        path = write_csv(tmp_path, ["request,r1,12345.5,104.0,30.6,18.0,"])
        trace = load_trace_csv(path, "p")
        assert trace.requests[0][1] == 12345.5
        assert trace.requests[0][4] == 18.0

    def test_missing_value_defaults_none(self, tmp_path):
        path = write_csv(tmp_path, ["request,r1,0,104.0,30.6,,"])
        trace = load_trace_csv(path, "p")
        assert trace.requests[0][4] is None

    def test_missing_columns_raise(self, tmp_path):
        path = write_csv(tmp_path, ["request,0"], header="kind,timestamp")
        with pytest.raises(WorkloadError):
            load_trace_csv(path, "p")

    def test_bad_kind_raises(self, tmp_path):
        path = write_csv(tmp_path, ["martian,x,0,104.0,30.6,,"])
        with pytest.raises(WorkloadError):
            load_trace_csv(path, "p")

    def test_bad_timestamp_raises(self, tmp_path):
        path = write_csv(tmp_path, ["worker,w1,noon,104.0,30.6,,"])
        with pytest.raises(WorkloadError):
            load_trace_csv(path, "p")

    def test_bad_coordinates_raise(self, tmp_path):
        path = write_csv(tmp_path, ["worker,w1,0,east,30.6,,"])
        with pytest.raises(WorkloadError):
            load_trace_csv(path, "p")

    def test_empty_id_raises(self, tmp_path):
        path = write_csv(tmp_path, ["worker,,0,104.0,30.6,,"])
        with pytest.raises(WorkloadError):
            load_trace_csv(path, "p")


class TestScenarioFromTraces:
    def test_empty_raises(self):
        with pytest.raises(WorkloadError):
            scenario_from_traces([])

    def test_duplicate_platforms_raise(self):
        trace = RawTrace("p")
        trace.workers.append(("w1", 0.0, 104.0, 30.6, 1.0))
        with pytest.raises(WorkloadError):
            scenario_from_traces([trace, RawTrace("p")])

    def test_projection_preserves_distances(self):
        """Planar distances match haversine to <1% at metro scale."""
        trace = RawTrace("p")
        a = (104.00, 30.60)
        b = (104.10, 30.68)
        trace.workers.append(("w1", 0.0, *a, 1.0))
        trace.workers.append(("w2", 0.0, *b, 1.0))
        scenario = scenario_from_traces([trace])
        w1, w2 = scenario.events.workers
        planar = w1.location.distance_to(w2.location)
        geographic = haversine_km(Point(*a), Point(*b))
        assert planar == pytest.approx(geographic, rel=0.01)

    def test_values_filled_from_model(self):
        trace = RawTrace("p")
        trace.workers.append(("w1", 0.0, 104.0, 30.6, 1.0))
        trace.requests.append(("r1", 10.0, 104.0, 30.6, None))
        trace.requests.append(("r2", 11.0, 104.0, 30.6, 33.5))
        scenario = scenario_from_traces([trace])
        values = {r.request_id: r.value for r in scenario.events.requests}
        assert values["p-r2"] == 33.5
        assert values["p-r1"] > 0

    def test_behaviours_registered_for_all_workers(self):
        trace = load_trace_csv(DATA / "sample_trace_didi.csv", "didi")
        scenario = scenario_from_traces([trace])
        assert all(w.worker_id in scenario.oracle for w in scenario.events.workers)

    def test_deterministic(self):
        trace = load_trace_csv(DATA / "sample_trace_didi.csv", "didi")
        a = scenario_from_traces([trace], seed=3)
        b = scenario_from_traces([trace], seed=3)
        assert [r.value for r in a.events.requests] == [
            r.value for r in b.events.requests
        ]

    def test_end_to_end_run(self):
        from repro.baselines import TOTA
        from repro.core import Simulator, SimulatorConfig, validate_matching

        didi = load_trace_csv(DATA / "sample_trace_didi.csv", "didi")
        yueche = load_trace_csv(DATA / "sample_trace_yueche.csv", "yueche")
        scenario = scenario_from_traces([didi, yueche], seed=1)
        result = Simulator(
            SimulatorConfig(
                seed=0,
                worker_reentry=True,
                service_duration=1800.0,
                measure_response_time=False,
            )
        ).run(scenario, TOTA)
        validate_matching(result.all_records())
        assert result.total_completed > 0
        assert not math.isnan(result.total_revenue)
