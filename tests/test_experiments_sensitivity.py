"""Tests for the sensitivity-study module (tiny sweeps)."""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.experiments.sensitivity import (
    SensitivityResult,
    going_rate_sensitivity,
    jitter_sensitivity,
    occupation_sensitivity,
    skew_sensitivity,
)

TINY = ExperimentConfig(seeds=(0,), service_duration=1800.0)


class TestSensitivityResult:
    def test_series_extraction(self):
        result = going_rate_sensitivity(values=(0.6, 0.9), config=TINY)
        revenue = result.series("ramcom", "total_revenue")
        assert len(revenue) == 2
        assert all(value > 0 for value in revenue)

    def test_render(self):
        result = skew_sensitivity(values=(0.0, 0.9), config=TINY)
        rendered = result.render()
        assert "Sensitivity — skew" in rendered
        assert "rev(RamCOM)" in rendered


class TestDirections:
    def test_going_rate_moves_payment_rates(self):
        result = going_rate_sensitivity(values=(0.6, 0.9), config=TINY)
        low, high = result.series("ramcom", "payment_rate")
        assert high > low

    def test_occupation_reduces_completions(self):
        result = occupation_sensitivity(values=(900.0, 3600.0), config=TINY)
        fast, slow = result.series("tota", "total_completed")
        assert fast > slow

    def test_jitter_rows_shape(self):
        result = jitter_sensitivity(values=(0.02,), config=TINY)
        assert isinstance(result, SensitivityResult)
        value, by_algorithm = result.rows[0]
        assert value == 0.02
        assert set(by_algorithm) == {"tota", "demcom", "ramcom"}

    def test_skew_zero_still_runs_all_algorithms(self):
        result = skew_sensitivity(values=(0.0,), config=TINY)
        __, by_algorithm = result.rows[0]
        assert by_algorithm["tota"].total_completed > 0
