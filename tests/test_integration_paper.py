"""Integration tests reproducing the paper's worked examples and headline
claims end-to-end."""

from __future__ import annotations

import math
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))

from repro.baselines import TOTA, solve_offline
from repro.core import (
    DemCOM,
    RamCOM,
    Simulator,
    SimulatorConfig,
    validate_matching,
)
from repro.core.acceptance import AcceptanceEstimator
from repro.core.pricing import MaximumExpectedRevenuePricer
from repro.core.registry import algorithm_factory


class TestPaperExample1:
    """Example 1 / Fig. 3: TOTA best = 18, COM = 21."""

    @pytest.fixture
    def scenario(self):
        from paper_example_1 import build_instance

        return build_instance()

    def test_tota_offline_optimum_is_18(self, scenario):
        solution = solve_offline(scenario, include_cooperation=False)
        assert solution.ledgers["blue"].revenue == 18.0

    def test_com_offline_optimum_is_21(self, scenario):
        solution = solve_offline(scenario, include_cooperation=True)
        assert solution.ledgers["blue"].revenue == 21.0
        validate_matching(solution.records)

    def test_com_serves_all_five(self, scenario):
        solution = solve_offline(scenario, include_cooperation=True)
        assert solution.ledgers["blue"].completed_requests == 5
        assert solution.ledgers["blue"].cooperative_requests == 2

    def test_lender_income_is_win_win(self, scenario):
        # Red workers earn 50% of r3 (6) and r5 (4): 3 + 2 = 5.
        solution = solve_offline(scenario, include_cooperation=True)
        assert solution.ledgers["red"].total_lender_income == pytest.approx(5.0)

    def test_online_tota_cannot_exceed_18(self, scenario):
        result = Simulator(
            SimulatorConfig(seed=0, measure_response_time=False)
        ).run(scenario, TOTA)
        assert result.platforms["blue"].ledger.revenue <= 18.0

    def test_demcom_at_least_inner_revenue(self, scenario):
        result = Simulator(
            SimulatorConfig(seed=0, measure_response_time=False)
        ).run(scenario, DemCOM)
        validate_matching(result.all_records())
        # Inner greedy guarantees r1 (4), r2 (9), r4 (3).
        assert result.platforms["blue"].ledger.revenue_inner == 16.0


class TestPaperExample3:
    """Example 3: the MER computation over a discrete payment menu.

    The paper gives (v_r3 - v') in {1..5} with acceptance probabilities
    {0.9, 0.8, 0.4, 0.3, 0.2} and expects the maximized expected revenue
    2 * 0.8 = 1.6 at margin 2 (payment 4).
    """

    def test_example3_mer(self):
        value = 6.0
        margins = {1.0: 0.9, 2.0: 0.8, 3.0: 0.4, 4.0: 0.3, 5.0: 0.2}
        # Build a history whose Eq.-4 CDF matches the given acceptance
        # probabilities at the payments v' = value - margin:
        # pr(payment=5)=0.9, pr(4)=0.8, pr(3)=0.4, pr(2)=0.3, pr(1)=0.2.
        # A 10-entry rate history achieving those steps:
        # Steps sit exactly at the menu's payment rates k/6 so the CDF is
        # flat between menu points (as in the paper's discrete menu).
        history_rates = (
            [1 / 6] * 2  # cdf(1/6) = 0.2
            + [2 / 6]  # cdf(2/6) = 0.3
            + [3 / 6]  # cdf(3/6) = 0.4
            + [4 / 6] * 4  # cdf(4/6) = 0.8
            + [5 / 6]  # cdf(5/6) = 0.9
            + [0.99]
        )
        estimator = AcceptanceEstimator()
        estimator.set_history("w", history_rates)
        for payment, expected in ((5.0, 0.9), (4.0, 0.8), (3.0, 0.4), (2.0, 0.3), (1.0, 0.2)):
            assert estimator.probability(payment, "w", value) == pytest.approx(
                expected
            )
        pricer = MaximumExpectedRevenuePricer(estimator, grid_steps=6)
        quote = pricer.quote(value, ["w"])
        assert quote.expected_revenue == pytest.approx(1.6)
        assert quote.payment == pytest.approx(4.0, abs=0.05)
        assert quote.acceptance_probability == pytest.approx(0.8)


class TestHeadlineShapes:
    """The evaluation section's qualitative claims on a mid-size city."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=700, worker_count=180, city_km=8.0)
        ).build(seed=2)
        simulator = Simulator(
            SimulatorConfig(seed=0, worker_reentry=True, service_duration=1800.0)
        )
        out = {}
        for name in ("tota", "demcom", "ramcom"):
            result = simulator.run(scenario, algorithm_factory(name))
            validate_matching(result.all_records())
            out[name] = result
        return out

    @staticmethod
    def _headline_revenue(result):
        return sum(
            p.ledger.revenue + p.ledger.total_lender_income
            for p in result.platforms.values()
        )

    def test_revenue_ordering(self, results):
        tota = self._headline_revenue(results["tota"])
        demcom = self._headline_revenue(results["demcom"])
        ramcom = self._headline_revenue(results["ramcom"])
        assert ramcom > demcom > tota

    def test_cooperative_requests_ordering(self, results):
        assert (
            results["ramcom"].total_cooperative
            > results["demcom"].total_cooperative
            > 0
        )
        assert results["tota"].total_cooperative == 0

    def test_acceptance_ratio_ordering(self, results):
        demcom = results["demcom"].overall_acceptance_ratio
        ramcom = results["ramcom"].overall_acceptance_ratio
        assert ramcom is not None and demcom is not None
        assert ramcom > demcom

    def test_payment_rates_in_paper_band(self, results):
        demcom = results["demcom"].overall_payment_rate
        ramcom = results["ramcom"].overall_payment_rate
        assert 0.6 <= demcom <= 0.9
        assert 0.6 <= ramcom <= 0.9

    def test_completions_beat_tota(self, results):
        assert results["demcom"].total_completed > results["tota"].total_completed
        assert results["ramcom"].total_completed > results["tota"].total_completed


class TestTheoremShapes:
    def test_ramcom_bound_constant(self):
        from repro.experiments.competitive import RAMCOM_THEORETICAL_CR

        assert RAMCOM_THEORETICAL_CR == pytest.approx(1.0 / (8.0 * math.e))

    def test_demcom_adversarial_unbounded(self):
        """The greedy trap drives DemCOM's ratio below any constant."""
        from repro.experiments.competitive import demcom_worst_case_family

        for epsilon in (0.5, 0.05, 0.005):
            scenario, expected = demcom_worst_case_family(epsilon)
            result = Simulator(
                SimulatorConfig(seed=0, measure_response_time=False)
            ).run(scenario, DemCOM)
            assert result.total_revenue == pytest.approx(expected)
        # ratio == epsilon -> 0: no constant lower bound exists.
