"""Subprocess helper: print a canonical JSON report of a small run.

Executed by ``tests/test_determinism_hashseed.py`` under different
``PYTHONHASHSEED`` values; any dependence on builtin hashing or set
iteration order shows up as a byte-level diff between the two outputs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parents[1]))

from repro.core import DemCOM, RamCOM, Simulator, SimulatorConfig

from conftest import make_request, make_scenario, make_worker


def build_scenario():
    workers = [
        make_worker(f"a{i}", "A", i * 0.25, x=i * 0.3, y=0.1 * i, radius=1.6)
        for i in range(8)
    ] + [
        make_worker(f"b{i}", "B", i * 0.4, x=i * 0.5, y=0.2, radius=1.4)
        for i in range(6)
    ]
    requests = [
        make_request(f"ra{i}", "A", 2.0 + i * 0.3, x=i * 0.3, value=4.0 + i)
        for i in range(10)
    ] + [
        make_request(f"rb{i}", "B", 2.5 + i * 0.4, x=i * 0.45, y=0.2, value=6.0)
        for i in range(6)
    ]
    return make_scenario(workers, requests, platform_ids=["A", "B"])


def report_for(algorithm) -> dict:
    config = SimulatorConfig(seed=7, measure_response_time=False, sanitize=True)
    result = Simulator(config).run(build_scenario(), algorithm)
    platforms = {}
    for pid in sorted(result.platforms):
        ledger = result.platforms[pid].ledger
        platforms[pid] = {
            "revenue": round(ledger.revenue, 12),
            "revenue_inner": round(ledger.revenue_inner, 12),
            "revenue_outer": round(ledger.revenue_outer, 12),
            "lender_income": round(ledger.total_lender_income, 12),
            "matches": [
                [
                    record.request.request_id,
                    record.worker.worker_id,
                    record.kind.value,
                    round(record.payment, 12),
                ]
                for record in ledger.records
            ],
            "rejected": [request.request_id for request in ledger.rejected],
        }
    return {"total_revenue": round(result.total_revenue, 12), "platforms": platforms}


def main() -> None:
    payload = {
        algorithm.name: report_for(algorithm) for algorithm in (DemCOM, RamCOM)
    }
    json.dump(payload, sys.stdout, sort_keys=True, indent=1)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
