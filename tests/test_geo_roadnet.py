"""Tests for the road-network distance substrate (paper §II extension)."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.geo import BoundingBox, Point, RoadNetwork
from repro.geo.distance import manhattan


class TestConstruction:
    def test_empty_network_queries_raise(self):
        with pytest.raises(ConfigurationError):
            RoadNetwork().nearest_node(Point(0, 0))

    def test_add_road_defaults_to_euclidean_length(self):
        net = RoadNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(3, 4))
        net.add_road(a, b)
        assert net.node_distance(a, b) == 5.0

    def test_add_road_validation(self):
        net = RoadNetwork()
        a = net.add_node(Point(0, 0))
        with pytest.raises(ConfigurationError):
            net.add_road(a, a)
        with pytest.raises(ConfigurationError):
            net.add_road(a, 99)
        b = net.add_node(Point(1, 0))
        with pytest.raises(ConfigurationError):
            net.add_road(a, b, length=0.0)

    def test_grid_validation(self):
        box = BoundingBox.square(2.0)
        with pytest.raises(ConfigurationError):
            RoadNetwork.grid(box, spacing_km=0.0)
        with pytest.raises(ConfigurationError):
            RoadNetwork.grid(box, blocked_fraction=1.0)

    def test_grid_node_count(self):
        net = RoadNetwork.grid(BoundingBox.square(2.0), spacing_km=1.0)
        assert net.node_count == 9  # 3x3 lattice


class TestDistances:
    def test_full_grid_is_manhattan_between_nodes(self):
        net = RoadNetwork.grid(BoundingBox.square(4.0), spacing_km=1.0)
        a, b = Point(0, 0), Point(3, 2)
        assert net.distance(a, b) == pytest.approx(manhattan(a, b))

    def test_distance_symmetric(self):
        net = RoadNetwork.grid(BoundingBox.square(3.0), spacing_km=0.5, seed=2)
        a, b = Point(0.3, 0.7), Point(2.2, 1.9)
        assert net.distance(a, b) == pytest.approx(net.distance(b, a))

    def test_distance_dominates_euclidean(self):
        rng = random.Random(0)
        net = RoadNetwork.grid(
            BoundingBox.square(4.0), spacing_km=0.5, blocked_fraction=0.15, seed=3
        )
        for _ in range(30):
            a = Point(rng.uniform(0, 4), rng.uniform(0, 4))
            b = Point(rng.uniform(0, 4), rng.uniform(0, 4))
            road = net.distance(a, b)
            if math.isfinite(road):
                assert road >= a.distance_to(b) - 1e-9

    def test_disconnected_components_are_infinite(self):
        net = RoadNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(1, 0))
        c = net.add_node(Point(5, 0))
        net.add_road(a, b)
        assert math.isinf(net.node_distance(a, c))
        assert math.isinf(net.distance(Point(0, 0), Point(5, 0)))

    def test_blocking_increases_distances(self):
        box = BoundingBox.square(4.0)
        full = RoadNetwork.grid(box, spacing_km=0.5)
        blocked = RoadNetwork.grid(box, spacing_km=0.5, blocked_fraction=0.3, seed=7)
        rng = random.Random(1)
        increased = 0
        for _ in range(20):
            a = Point(rng.uniform(0, 4), rng.uniform(0, 4))
            b = Point(rng.uniform(0, 4), rng.uniform(0, 4))
            d_full = full.distance(a, b)
            d_blocked = blocked.distance(a, b)
            assert d_blocked >= d_full - 1e-9
            if d_blocked > d_full + 1e-9:
                increased += 1
        assert increased > 0  # blocking actually bites somewhere

    def test_within_uses_road_metric(self):
        # Straight-line 1.41 km apart, but the grid forces a 2 km detour.
        net = RoadNetwork.grid(BoundingBox.square(2.0), spacing_km=1.0)
        a, b = Point(0, 0), Point(1, 1)
        assert a.distance_to(b) < 1.5
        assert not net.within(a, b, 1.5)
        assert net.within(a, b, 2.0)

    def test_path_cache_consistency(self):
        net = RoadNetwork.grid(BoundingBox.square(3.0), spacing_km=0.5)
        a, b = Point(0.2, 0.4), Point(2.5, 2.5)
        first = net.distance(a, b)
        second = net.distance(a, b)  # served from the cache
        assert first == second


class TestSimulatorIntegration:
    def test_road_network_restricts_matching(self):
        """A worker Euclidean-within range but road-unreachable is skipped."""
        from repro.core import Simulator, SimulatorConfig
        from repro.baselines import TOTA
        from conftest import make_request, make_scenario, make_worker

        # Two islands with no connecting road.
        net = RoadNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(0.4, 0))
        net.add_road(a, b)
        net.add_node(Point(2, 0))  # isolated node near the request

        workers = [make_worker("w", "A", 0.0, 2.0, 0.0, radius=3.0)]
        requests = [make_request("r", "A", 1.0, 0.0, 0.0)]
        scenario = make_scenario(workers, requests)

        euclidean_run = Simulator(
            SimulatorConfig(measure_response_time=False)
        ).run(scenario, TOTA)
        assert euclidean_run.total_completed == 1

        road_run = Simulator(
            SimulatorConfig(measure_response_time=False, road_network=net)
        ).run(scenario, TOTA)
        assert road_run.total_completed == 0

    def test_road_mode_subset_of_euclidean_matches(self):
        """Road mode can only shrink the eligible sets (soundness of the
        Euclidean prefilter)."""
        from repro.core.waiting_list import WaitingList
        from conftest import make_request, make_worker

        net = RoadNetwork.grid(
            BoundingBox.square(4.0), spacing_km=0.5, blocked_fraction=0.25, seed=5
        )
        rng = random.Random(2)
        euclidean_list = WaitingList()
        road_list = WaitingList(road_network=net)
        for i in range(25):
            worker = make_worker(
                f"w{i}",
                "A",
                0.0,
                rng.uniform(0, 4),
                rng.uniform(0, 4),
                radius=1.2,
            )
            euclidean_list.add(worker)
            road_list.add(worker)
        for i in range(10):
            request = make_request(
                f"r{i}", "A", 1.0, rng.uniform(0, 4), rng.uniform(0, 4)
            )
            road_ids = {w.worker_id for w in road_list.eligible_for(request)}
            euclid_ids = {w.worker_id for w in euclidean_list.eligible_for(request)}
            assert road_ids <= euclid_ids


class TestAgainstNetworkx:
    def test_shortest_paths_match_networkx(self):
        """The Dijkstra metric agrees with networkx on random road graphs."""
        import networkx as nx

        rng = random.Random(17)
        for trial in range(5):
            net = RoadNetwork()
            graph = nx.Graph()
            node_count = rng.randint(5, 25)
            for i in range(node_count):
                net.add_node(Point(rng.uniform(0, 10), rng.uniform(0, 10)))
                graph.add_node(i)
            for __ in range(node_count * 2):
                a, b = rng.sample(range(node_count), 2)
                length = rng.uniform(0.1, 5.0)
                net.add_road(a, b, length)
                # networkx keeps the lighter parallel edge; mirror RoadNetwork,
                # which overwrites — so assign rather than min().
                graph.add_edge(a, b, weight=length)
            expected = dict(nx.all_pairs_dijkstra_path_length(graph, weight="weight"))
            for a in range(node_count):
                for b in range(node_count):
                    ours = net.node_distance(a, b)
                    theirs = expected.get(a, {}).get(b, math.inf)
                    assert ours == pytest.approx(theirs)


class TestCacheInvalidation:
    def test_new_road_invalidates_cached_paths(self):
        net = RoadNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(10, 0))
        c = net.add_node(Point(5, 0))
        net.add_road(a, c, 5.0)
        net.add_road(c, b, 5.0)
        assert net.node_distance(a, b) == 10.0  # populates the cache
        net.add_road(a, b, 3.0)  # a shortcut appears
        assert net.node_distance(a, b) == 3.0

    def test_new_node_invalidates_cached_paths(self):
        net = RoadNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(1, 0))
        net.add_road(a, b)
        assert net.node_distance(a, b) == 1.0
        c = net.add_node(Point(2, 0))
        net.add_road(b, c)
        assert net.node_distance(a, c) == 2.0
