"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_arguments(self):
        args = build_parser().parse_args(["table", "V", "--scale", "0.01"])
        assert args.command == "table"
        assert args.table_id == "V"
        assert args.scale == 0.01

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "IX"])

    def test_figure_arguments(self):
        args = build_parser().parse_args(["figure", "radius", "acceptance"])
        assert args.axis == "radius"
        assert args.metric == "acceptance"

    def test_trace_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["trace", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "trace" in out and "--no-wall" in out

    def test_trace_arguments(self):
        args = build_parser().parse_args(
            ["trace", "--algorithm", "demcom", "--no-wall", "--seed", "3"]
        )
        assert args.command == "trace"
        assert args.algorithm == "demcom"
        assert args.no_wall is True
        assert args.seed == 3

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"com-repro {__version__}" in capsys.readouterr().out

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--port", "4000", "--real-time", "--speed", "60"]
        )
        assert args.command == "serve"
        assert args.port == 4000
        assert args.real_time is True
        assert args.speed == 60.0
        assert args.max_pending == 1024

    def test_replay_serve_arguments(self):
        args = build_parser().parse_args(
            ["replay-serve", "--algorithm", "demcom", "--verify"]
        )
        assert args.command == "replay-serve"
        assert args.algorithm == "demcom"
        assert args.verify is True
        assert args.snapshot_at is None

    def test_shared_defaults_are_hoisted(self):
        from repro.cli import DEFAULT_SERVICE_DURATION

        table = build_parser().parse_args(["table", "V"])
        replay = build_parser().parse_args(["replay-serve"])
        assert (
            table.service_duration
            == replay.service_duration
            == DEFAULT_SERVICE_DURATION
        )


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "RDC10" in out and "91321" in out

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("demcom", "ramcom", "tota"):
            assert name in out

    def test_table_small(self, capsys):
        assert (
            main(
                [
                    "table",
                    "VII",
                    "--scale",
                    "0.003",
                    "--seeds",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table VII" in out
        assert "RamCOM" in out

    def test_figure_small(self, capsys):
        assert (
            main(
                [
                    "figure",
                    "workers",
                    "revenue",
                    "--values",
                    "10,20",
                    "--seeds",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fig. 5(e)" in out

    def test_cr_random_order(self, capsys):
        assert main(["cr", "tota", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "random-order" in out

    def test_replay_serve_verify(self, capsys, tmp_path):
        import json

        output = tmp_path / "served.json"
        assert (
            main(
                [
                    "replay-serve",
                    "--requests",
                    "30",
                    "--workers",
                    "15",
                    "--verify",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "VERIFY OK" in out
        metrics = json.loads(output.read_text())
        assert metrics["algorithm"] == "RamCOM"

    def test_replay_serve_snapshot_drill(self, capsys):
        assert (
            main(
                [
                    "replay-serve",
                    "--requests",
                    "30",
                    "--workers",
                    "15",
                    "--snapshot-at",
                    "20",
                    "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "checkpointed after 20 events" in out
        assert "VERIFY OK" in out

    def test_trace_writes_artifacts(self, capsys, tmp_path):
        import json

        output = tmp_path / "trace_out"
        assert (
            main(
                [
                    "trace",
                    "--requests",
                    "40",
                    "--workers",
                    "15",
                    "--no-wall",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()
        assert (output / "trace.jsonl").exists()
        chrome = json.loads((output / "trace.chrome.json").read_text())
        assert any(e.get("ph") == "X" for e in chrome["traceEvents"])
        metrics = json.loads((output / "metrics.json").read_text())
        assert "decisions_total" in metrics["counters"]
