"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_arguments(self):
        args = build_parser().parse_args(["table", "V", "--scale", "0.01"])
        assert args.command == "table"
        assert args.table_id == "V"
        assert args.scale == 0.01

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "IX"])

    def test_figure_arguments(self):
        args = build_parser().parse_args(["figure", "radius", "acceptance"])
        assert args.axis == "radius"
        assert args.metric == "acceptance"


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "RDC10" in out and "91321" in out

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("demcom", "ramcom", "tota"):
            assert name in out

    def test_table_small(self, capsys):
        assert (
            main(
                [
                    "table",
                    "VII",
                    "--scale",
                    "0.003",
                    "--seeds",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table VII" in out
        assert "RamCOM" in out

    def test_figure_small(self, capsys):
        assert (
            main(
                [
                    "figure",
                    "workers",
                    "revenue",
                    "--values",
                    "10,20",
                    "--seeds",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fig. 5(e)" in out

    def test_cr_random_order(self, capsys):
        assert main(["cr", "tota", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "random-order" in out
