"""Tests for reservation distributions and the behaviour oracle."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.behavior import (
    BehaviorOracle,
    EmpiricalDistribution,
    LognormalDistribution,
    NormalDistribution,
    UniformDistribution,
    WorkerBehavior,
    generate_history,
)
from repro.errors import ConfigurationError

probabilities = st.floats(min_value=0.001, max_value=0.999)


class TestUniformDistribution:
    def test_cdf_endpoints(self):
        dist = UniformDistribution(2.0, 4.0)
        assert dist.cdf(1.9) == 0.0
        assert dist.cdf(3.0) == 0.5
        assert dist.cdf(4.1) == 1.0

    def test_degenerate(self):
        dist = UniformDistribution(3.0, 3.0)
        assert dist.cdf(3.0) == 1.0
        assert dist.cdf(2.999) == 0.0
        assert dist.sample(random.Random(0)) == 3.0

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformDistribution(4.0, 2.0)
        with pytest.raises(ConfigurationError):
            UniformDistribution(-1.0, 2.0)

    def test_mean(self):
        assert UniformDistribution(2.0, 4.0).mean() == 3.0

    @given(probabilities)
    def test_quantile_inverts_cdf(self, q):
        dist = UniformDistribution(1.0, 9.0)
        assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_samples_in_support(self):
        dist = UniformDistribution(2.0, 4.0)
        rng = random.Random(7)
        assert all(2.0 <= dist.sample(rng) <= 4.0 for _ in range(100))


class TestNormalDistribution:
    def test_cdf_median(self):
        dist = NormalDistribution(5.0, 1.0)
        assert dist.cdf(5.0) == pytest.approx(0.5)

    def test_truncation_at_zero(self):
        dist = NormalDistribution(0.5, 2.0)
        rng = random.Random(1)
        assert all(dist.sample(rng) >= 0.0 for _ in range(200))
        assert dist.cdf(-0.1) == 0.0

    def test_invalid_sigma(self):
        with pytest.raises(ConfigurationError):
            NormalDistribution(1.0, 0.0)

    @given(probabilities)
    def test_quantile_inverts_cdf(self, q):
        dist = NormalDistribution(5.0, 2.0)
        value = dist.quantile(q)
        if value > 0:
            assert dist.cdf(value) == pytest.approx(q, abs=1e-6)

    def test_truncated_mean_above_naive(self):
        # Truncation moves mass up from negative values.
        dist = NormalDistribution(0.0, 1.0)
        assert dist.mean() > 0.0

    def test_sample_mean_close(self):
        dist = NormalDistribution(10.0, 1.0)
        rng = random.Random(0)
        mean = sum(dist.sample(rng) for _ in range(4000)) / 4000
        assert mean == pytest.approx(10.0, abs=0.1)


class TestLognormalDistribution:
    def test_median(self):
        dist = LognormalDistribution(mu=1.0, sigma=0.5)
        import math

        assert dist.cdf(math.e) == pytest.approx(0.5)

    def test_positive_support(self):
        dist = LognormalDistribution(0.0, 1.0)
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(-1.0) == 0.0

    @given(probabilities)
    def test_quantile_inverts_cdf(self, q):
        dist = LognormalDistribution(0.5, 0.7)
        assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-6)

    def test_mean_formula(self):
        import math

        dist = LognormalDistribution(1.0, 0.5)
        assert dist.mean() == pytest.approx(math.exp(1.0 + 0.125))


class TestEmpiricalDistribution:
    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution([])

    def test_negative_raises(self):
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution([1.0, -0.5])

    def test_cdf_is_step_function(self):
        dist = EmpiricalDistribution([1.0, 2.0, 2.0, 4.0])
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(1.0) == 0.25
        assert dist.cdf(2.0) == 0.75
        assert dist.cdf(4.0) == 1.0

    def test_sample_from_support(self):
        values = [1.0, 3.0, 5.0]
        dist = EmpiricalDistribution(values)
        rng = random.Random(0)
        assert all(dist.sample(rng) in values for _ in range(50))

    def test_mean(self):
        assert EmpiricalDistribution([1.0, 3.0]).mean() == 2.0

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_cdf_monotone(self, values):
        dist = EmpiricalDistribution(values)
        grid = sorted(values)
        cdfs = [dist.cdf(v) for v in grid]
        assert cdfs == sorted(cdfs)
        assert cdfs[-1] == 1.0


class TestGenerateHistory:
    def test_length(self):
        dist = UniformDistribution(0.0, 1.0)
        assert len(generate_history(dist, 25, random.Random(0))) == 25

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            generate_history(UniformDistribution(0, 1), -1, random.Random(0))

    def test_empirical_cdf_consistency(self):
        # Eq. 4 over a generated history converges to the true CDF.
        dist = UniformDistribution(0.2, 0.8)
        history = generate_history(dist, 4000, random.Random(3))
        empirical = EmpiricalDistribution(history)
        for probe in (0.3, 0.5, 0.7):
            assert empirical.cdf(probe) == pytest.approx(dist.cdf(probe), abs=0.04)


class TestBehaviorOracle:
    def _oracle(self, mode: str = "relative") -> BehaviorOracle:
        oracle = BehaviorOracle(seed=5, mode=mode)
        oracle.register(
            WorkerBehavior("w1", UniformDistribution(0.4, 0.8), [0.5, 0.6])
        )
        return oracle

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            BehaviorOracle(seed=0, mode="nonsense")

    def test_duplicate_registration_raises(self):
        oracle = self._oracle()
        with pytest.raises(ConfigurationError):
            oracle.register(WorkerBehavior("w1", UniformDistribution(0, 1), []))

    def test_reservation_deterministic(self):
        oracle = self._oracle()
        assert oracle.reservation("w1", "r1") == oracle.reservation("w1", "r1")

    def test_reservation_varies_by_request(self):
        oracle = self._oracle()
        draws = {oracle.reservation("w1", f"r{i}") for i in range(20)}
        assert len(draws) > 1

    def test_reentry_clone_shares_draw(self):
        oracle = self._oracle()
        base = oracle.reservation("w1", "r9")
        assert oracle.reservation("w1@reentry1", "r9") == base
        assert oracle.reservation("w1@reentry3", "r9") == base

    def test_offer_relative_mode(self):
        oracle = self._oracle()
        rate = oracle.reservation("w1", "r1")
        value = 10.0
        assert oracle.offer("w1", "r1", rate * value, value)
        assert not oracle.offer("w1", "r1", rate * value - 0.01, value)

    def test_offer_absolute_mode(self):
        oracle = BehaviorOracle(seed=5, mode="absolute")
        oracle.register(WorkerBehavior("w1", UniformDistribution(3.0, 3.0), [3.0]))
        assert oracle.offer("w1", "r1", 3.0, 100.0)
        assert not oracle.offer("w1", "r1", 2.99, 100.0)

    def test_reservation_price_scales_with_value(self):
        oracle = self._oracle()
        small = oracle.reservation_price("w1", "r1", 10.0)
        large = oracle.reservation_price("w1", "r1", 20.0)
        assert large == pytest.approx(2 * small)

    def test_history_of(self):
        oracle = self._oracle()
        assert oracle.history_of("w1") == [0.5, 0.6]
        assert oracle.history_of("w1@reentry2") == [0.5, 0.6]

    def test_contains_and_len(self):
        oracle = self._oracle()
        assert "w1" in oracle
        assert "w2" not in oracle
        assert len(oracle) == 1

    def test_true_acceptance_probability(self):
        behavior = WorkerBehavior("w", UniformDistribution(0.4, 0.8), [])
        assert behavior.true_acceptance_probability(0.6) == pytest.approx(0.5)
