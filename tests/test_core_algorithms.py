"""Behavioural tests for DemCOM, RamCOM and the baseline algorithms."""

from __future__ import annotations

import math

import pytest

from repro.baselines import TOTA, GreedyRT, Ranking, RandomAssign
from repro.core import DemCOM, RamCOM, Simulator, SimulatorConfig
from repro.core.base import DecisionKind
from repro.core.simulator import Scenario
from repro.core.events import EventStream

from conftest import (
    make_fixed_rate_oracle,
    make_request,
    make_scenario,
    make_worker,
)


def run(scenario, factory, seed=0, **config_kwargs):
    simulator = Simulator(
        SimulatorConfig(seed=seed, measure_response_time=False, **config_kwargs)
    )
    return simulator.run(scenario, factory)


def fixed_rate_scenario(workers, requests, rate=0.5, platform_ids=None):
    if platform_ids is None:
        platform_ids = sorted(
            {w.platform_id for w in workers} | {r.platform_id for r in requests}
        )
    return Scenario(
        events=EventStream.from_entities(workers, requests),
        oracle=make_fixed_rate_oracle(workers, rate=rate),
        platform_ids=platform_ids,
    )


class TestTOTA:
    def test_serves_nearest_inner(self):
        workers = [
            make_worker("far", "A", 0.0, 0.8, 0.0),
            make_worker("near", "A", 0.0, 0.1, 0.0),
        ]
        requests = [make_request("r", "A", 1.0, 0.0, 0.0)]
        result = run(make_scenario(workers, requests), TOTA)
        assert result.platforms["A"].ledger.records[0].worker.worker_id == "near"

    def test_rejects_without_inner(self):
        workers = [make_worker("b", "B", 0.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0)]
        scenario = make_scenario(workers, requests, platform_ids=["A", "B"])
        result = run(scenario, TOTA)
        assert result.total_completed == 0
        assert result.total_rejected == 1

    def test_never_cooperates(self):
        workers = [
            make_worker("a", "A", 0.0, 5.0, 5.0),
            make_worker("b", "B", 0.0, 0.1, 0.0),
        ]
        requests = [make_request("r", "A", 1.0)]
        scenario = make_scenario(workers, requests, platform_ids=["A", "B"])
        result = run(scenario, TOTA)
        assert result.total_cooperative == 0
        assert result.overall_acceptance_ratio is None


class TestDemCOM:
    def test_inner_priority_over_outer(self):
        workers = [
            make_worker("a", "A", 0.0, 0.5, 0.0),
            make_worker("b", "B", 0.0, 0.1, 0.0),
        ]
        requests = [make_request("r", "A", 1.0)]
        scenario = fixed_rate_scenario(workers, requests, rate=0.1)
        result = run(scenario, DemCOM)
        record = result.platforms["A"].ledger.records[0]
        assert record.worker.worker_id == "a"  # inner wins despite b nearer

    def test_borrows_when_no_inner(self):
        workers = [make_worker("b", "B", 0.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0, value=10.0)]
        # Deterministic acceptance at rate 0.4; Algorithm 2 brackets the
        # cliff and the offer lands within xi*v of it.
        scenario = fixed_rate_scenario(workers, requests, rate=0.4)
        result = run(scenario, DemCOM)
        ledger = result.platforms["A"].ledger
        if ledger.cooperative_requests:  # offer cleared the cliff
            record = ledger.records[0]
            assert record.worker.worker_id == "b"
            assert 0.0 < record.payment <= 10.0
            assert result.platforms["B"].ledger.total_lender_income == pytest.approx(
                record.payment
            )
        else:  # undershoot: documented DemCOM weakness
            assert result.total_rejected == 1

    def test_rejects_unaffordable_workers(self):
        workers = [make_worker("b", "B", 0.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0, value=10.0)]
        # Reservation rate 1.5 > 1: no payment <= v_r can attract b.
        scenario = fixed_rate_scenario(workers, requests, rate=1.5)
        result = run(scenario, DemCOM)
        assert result.total_rejected == 1
        # No offers were extended, so no cooperative attempt is counted.
        assert result.platforms["A"].cooperative_attempts == 0

    def test_rejects_with_no_candidates_at_all(self):
        workers = [make_worker("b", "B", 0.0, 9.0, 9.0)]
        requests = [make_request("r", "A", 1.0)]
        scenario = fixed_rate_scenario(workers, requests)
        result = run(scenario, DemCOM)
        assert result.total_rejected == 1

    def test_matches_tota_when_cooperation_disabled(self):
        workers = [
            make_worker("a", "A", 0.0, 0.5, 0.0),
            make_worker("b", "B", 0.0, 0.1, 0.0),
        ]
        requests = [
            make_request("r1", "A", 1.0),
            make_request("r2", "A", 2.0, x=3.0),
        ]
        scenario = fixed_rate_scenario(workers, requests, rate=0.1)
        with_coop = run(scenario, DemCOM)
        without = run(scenario, DemCOM, cooperation_enabled=False)
        tota = run(scenario, TOTA)
        assert without.total_revenue == tota.total_revenue
        assert with_coop.total_revenue >= without.total_revenue


class TestRamCOM:
    def test_theta_formula(self):
        assert RamCOM.theta_for(100.0) == math.ceil(math.log(101.0))
        assert RamCOM.theta_for(0.5) == 1

    def test_fixed_k_validation(self):
        scenario = fixed_rate_scenario(
            [make_worker("a", "A")], [make_request("r", "A", value=9.0)]
        )
        with pytest.raises(ValueError):
            run(scenario, lambda: RamCOM(fixed_k=99))

    def test_above_threshold_uses_inner(self):
        workers = [
            make_worker("a", "A", 0.0, 0.5, 0.0),
            make_worker("b", "B", 0.0, 0.1, 0.0),
        ]
        # value 90 > e^k for any k <= theta(100)=5? e^5 = 148 > 90, so pin
        # k=1 (threshold e) to guarantee the inner path.
        requests = [make_request("r", "A", 1.0, value=90.0)]
        scenario = Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=make_fixed_rate_oracle(workers, rate=0.5),
            platform_ids=["A", "B"],
            value_upper_bound=100.0,
        )
        result = run(scenario, lambda: RamCOM(fixed_k=1))
        record = result.platforms["A"].ledger.records[0]
        assert record.worker.platform_id == "A"

    def test_below_threshold_goes_outer(self):
        workers = [
            make_worker("a", "A", 0.0, 0.5, 0.0),
            make_worker("b", "B", 0.0, 0.1, 0.0),
        ]
        # value 5 < e^4 = 54.6: outer path even though an inner is free.
        requests = [make_request("r", "A", 1.0, value=5.0)]
        scenario = Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=make_fixed_rate_oracle(workers, rate=0.5),
            platform_ids=["A", "B"],
            value_upper_bound=100.0,
        )
        result = run(scenario, lambda: RamCOM(fixed_k=4))
        record = result.platforms["A"].ledger.records[0]
        assert record.worker.platform_id == "B"
        # MER over a degenerate cliff at 0.5 pays exactly half the value.
        assert record.payment == pytest.approx(2.5)

    def test_above_threshold_falls_through_to_outer(self):
        # Example 3's r_3 case: above threshold but no inner worker free.
        workers = [make_worker("b", "B", 0.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0, value=90.0)]
        scenario = Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=make_fixed_rate_oracle(workers, rate=0.5),
            platform_ids=["A", "B"],
            value_upper_bound=100.0,
        )
        result = run(scenario, lambda: RamCOM(fixed_k=1))
        assert result.total_cooperative == 1

    def test_threshold_drawn_within_range(self):
        scenario = fixed_rate_scenario(
            [make_worker("a", "A")], [make_request("r", "A", value=50.0)]
        )
        for seed in range(10):
            algorithm = RamCOM()
            run(scenario, lambda: algorithm, seed=seed)
            theta = RamCOM.theta_for(scenario.value_upper_bound)
            assert math.exp(1) <= algorithm.threshold <= math.exp(theta)


class TestExtensionBaselines:
    def test_greedy_rt_threshold_rejects_small_values(self):
        workers = [make_worker("a", "A", 0.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0, value=1.5)]
        scenario = Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=make_fixed_rate_oracle(workers),
            platform_ids=["A"],
            value_upper_bound=100.0,
        )
        # k=3: threshold e^2 = 7.39 > 1.5 -> reject despite a free worker.
        result = run(scenario, lambda: GreedyRT(fixed_k=3))
        assert result.total_rejected == 1

    def test_greedy_rt_with_k1_equals_tota(self):
        workers = [make_worker("a", "A", 0.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0, value=1.5)]
        scenario = fixed_rate_scenario(workers, requests)
        result = run(scenario, lambda: GreedyRT(fixed_k=1))
        tota = run(scenario, TOTA)
        assert result.total_revenue == tota.total_revenue

    def test_ranking_uses_priority_not_distance(self):
        workers = [
            make_worker("w1", "A", 0.0, 0.1, 0.0),
            make_worker("w2", "A", 0.0, 0.9, 0.0),
        ]
        requests = [make_request("r", "A", 1.0)]
        scenario = fixed_rate_scenario(workers, requests)
        chosen = set()
        for seed in range(12):
            result = run(scenario, Ranking, seed=seed)
            chosen.add(result.platforms["A"].ledger.records[0].worker.worker_id)
        assert chosen == {"w1", "w2"}  # both get picked across seeds

    def test_random_assign_completes(self):
        workers = [make_worker("w1", "A", 0.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0)]
        result = run(fixed_rate_scenario(workers, requests), RandomAssign)
        assert result.total_completed == 1

    def test_decision_constructors(self):
        from repro.core.base import Decision

        worker = make_worker()
        inner = Decision.serve_inner(worker)
        assert inner.kind is DecisionKind.SERVE_INNER
        outer = Decision.serve_outer(worker, 5.0, offers_made=2)
        assert outer.cooperative_attempt
        reject = Decision.reject()
        assert reject.kind is DecisionKind.REJECT
