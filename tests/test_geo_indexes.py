"""Tests for the grid index and k-d tree, cross-checked vs brute force."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.geo import GridIndex, KDTree, Point

# width=32 keeps coordinates float32-representable: squaring them in
# float64 can never underflow to zero, which would otherwise let a
# denormal-coordinate point pass the brute-force distance check while
# sitting in a grid cell outside the query's reach.
coords = st.floats(min_value=-50, max_value=50, allow_nan=False, width=32)
point_lists = st.lists(
    st.tuples(coords, coords), min_size=0, max_size=60, unique=True
)


def brute_radius(items: dict, center: Point, radius: float) -> set:
    return {
        key
        for key, point in items.items()
        if point.squared_distance_to(center) <= radius * radius
    }


def brute_nearest(items: dict, center: Point):
    best_key, best_distance = None, math.inf
    for key, point in items.items():
        distance = point.distance_to(center)
        if distance < best_distance:
            best_key, best_distance = key, distance
    return best_key, best_distance


class TestGridIndexBasics:
    def test_invalid_cell_size(self):
        with pytest.raises(ConfigurationError):
            GridIndex(0.0)

    def test_insert_contains_len(self):
        index = GridIndex(1.0)
        index.insert("a", Point(0.5, 0.5))
        assert "a" in index and len(index) == 1

    def test_reinsert_moves(self):
        index = GridIndex(1.0)
        index.insert("a", Point(0, 0))
        index.insert("a", Point(10, 10))
        assert len(index) == 1
        assert index.location_of("a") == Point(10, 10)
        assert index.query_radius(Point(0, 0), 0.5) == []

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            GridIndex(1.0).remove("ghost")

    def test_discard_is_silent(self):
        GridIndex(1.0).discard("ghost")

    def test_negative_radius_raises(self):
        with pytest.raises(ConfigurationError):
            GridIndex(1.0).query_radius(Point(0, 0), -1.0)

    def test_negative_coordinates(self):
        index = GridIndex(1.0)
        index.insert("a", Point(-3.7, -2.1))
        assert index.query_radius(Point(-3.5, -2.0), 0.5) == ["a"]

    def test_boundary_inclusive(self):
        index = GridIndex(1.0)
        index.insert("a", Point(1.0, 0.0))
        assert index.query_radius(Point(0, 0), 1.0) == ["a"]

    def test_nearest_empty(self):
        assert GridIndex(1.0).nearest(Point(0, 0)) is None

    def test_clear(self):
        index = GridIndex(1.0)
        index.insert("a", Point(0, 0))
        index.clear()
        assert len(index) == 0


class TestGridIndexVsBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(point_lists, coords, coords, st.floats(min_value=0, max_value=20))
    def test_query_radius_matches(self, raw, cx, cy, radius):
        index = GridIndex(1.3)
        items = {}
        for i, (x, y) in enumerate(raw):
            point = Point(x, y)
            items[i] = point
            index.insert(i, point)
        center = Point(cx, cy)
        assert set(index.query_radius(center, radius)) == brute_radius(
            items, center, radius
        )

    @settings(max_examples=60, deadline=None)
    @given(point_lists, coords, coords)
    def test_nearest_matches(self, raw, cx, cy):
        index = GridIndex(1.3)
        items = {}
        for i, (x, y) in enumerate(raw):
            point = Point(x, y)
            items[i] = point
            index.insert(i, point)
        center = Point(cx, cy)
        result = index.nearest(center)
        if not items:
            assert result is None
            return
        assert result is not None
        __, expected_distance = brute_nearest(items, center)
        assert result[1] == pytest.approx(expected_distance)

    def test_interleaved_inserts_and_removals(self):
        rng = random.Random(3)
        index = GridIndex(0.9)
        items: dict = {}
        for step in range(400):
            if items and rng.random() < 0.4:
                key = rng.choice(list(items))
                index.remove(key)
                del items[key]
            else:
                key = step
                point = Point(rng.uniform(-20, 20), rng.uniform(-20, 20))
                index.insert(key, point)
                items[key] = point
            if step % 37 == 0:
                center = Point(rng.uniform(-20, 20), rng.uniform(-20, 20))
                radius = rng.uniform(0, 8)
                assert set(index.query_radius(center, radius)) == brute_radius(
                    items, center, radius
                )


class TestKDTree:
    def test_empty(self):
        tree = KDTree([])
        assert len(tree) == 0
        assert tree.nearest(Point(0, 0)) is None
        assert tree.query_radius(Point(0, 0), 5.0) == []

    def test_single(self):
        tree = KDTree([("a", Point(1, 1))])
        key, distance = tree.nearest(Point(0, 0))
        assert key == "a"
        assert distance == pytest.approx(math.sqrt(2))

    def test_negative_radius_raises(self):
        with pytest.raises(ConfigurationError):
            KDTree([("a", Point(0, 0))]).query_radius(Point(0, 0), -1)

    @settings(max_examples=60, deadline=None)
    @given(point_lists, coords, coords, st.floats(min_value=0, max_value=20))
    def test_radius_matches_brute_force(self, raw, cx, cy, radius):
        items = {i: Point(x, y) for i, (x, y) in enumerate(raw)}
        tree = KDTree(list(items.items()))
        center = Point(cx, cy)
        assert set(tree.query_radius(center, radius)) == brute_radius(
            items, center, radius
        )

    @settings(max_examples=60, deadline=None)
    @given(point_lists, coords, coords)
    def test_nearest_matches_brute_force(self, raw, cx, cy):
        items = {i: Point(x, y) for i, (x, y) in enumerate(raw)}
        tree = KDTree(list(items.items()))
        center = Point(cx, cy)
        result = tree.nearest(center)
        if not items:
            assert result is None
            return
        assert result is not None
        __, expected = brute_nearest(items, center)
        assert result[1] == pytest.approx(expected)

    def test_agrees_with_grid_index(self):
        rng = random.Random(9)
        pairs = [
            (i, Point(rng.uniform(0, 10), rng.uniform(0, 10))) for i in range(200)
        ]
        tree = KDTree(pairs)
        grid = GridIndex(1.0)
        for key, point in pairs:
            grid.insert(key, point)
        for _ in range(20):
            center = Point(rng.uniform(0, 10), rng.uniform(0, 10))
            radius = rng.uniform(0, 3)
            assert set(tree.query_radius(center, radius)) == set(
                grid.query_radius(center, radius)
            )
