"""Tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.core.base import Decision, OnlineAlgorithm
from repro.core.registry import (
    algorithm_factory,
    available_algorithms,
    make_algorithm,
    register_algorithm,
)
from repro.errors import UnknownAlgorithmError


class TestRegistry:
    def test_builtins_present(self):
        names = available_algorithms()
        for name in ("demcom", "ramcom", "tota", "greedy-rt", "ranking", "random"):
            assert name in names

    def test_make_algorithm_case_insensitive(self):
        assert make_algorithm("DemCOM").name == "DemCOM"
        assert make_algorithm("RAMCOM").name == "RamCOM"

    def test_unknown_raises_with_suggestions(self):
        with pytest.raises(UnknownAlgorithmError) as exc:
            make_algorithm("ghost-algorithm")
        assert "demcom" in str(exc.value)
        assert exc.value.name == "ghost-algorithm"

    def test_factory_returns_fresh_instances(self):
        factory = algorithm_factory("ramcom")
        assert factory() is not factory()

    def test_custom_registration(self):
        class AlwaysReject(OnlineAlgorithm):
            name = "AlwaysReject"

            def decide(self, request, context):
                return Decision.reject()

        register_algorithm("always-reject-test", AlwaysReject)
        try:
            instance = make_algorithm("always-reject-test")
            assert instance.name == "AlwaysReject"
            assert "always-reject-test" in available_algorithms()
        finally:
            # Keep the global registry clean for other tests.
            from repro.core import registry

            registry._FACTORIES.pop("always-reject-test", None)

    def test_errors_module_hierarchy(self):
        from repro.errors import (
            ConfigurationError,
            ConstraintViolationError,
            GraphError,
            ReproError,
            SimulationError,
            WorkloadError,
        )

        for exc_type in (
            ConfigurationError,
            ConstraintViolationError,
            GraphError,
            SimulationError,
            WorkloadError,
            UnknownAlgorithmError,
        ):
            assert issubclass(exc_type, ReproError)
        # The registry error doubles as a KeyError for dict-style callers.
        assert issubclass(UnknownAlgorithmError, KeyError)
        violation = ConstraintViolationError("time", "details")
        assert violation.constraint == "time"
