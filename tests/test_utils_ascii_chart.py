"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.utils.ascii_chart import MARKERS, AsciiChart, render_panel


class TestAsciiChart:
    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            AsciiChart(width=5, height=12)
        with pytest.raises(ConfigurationError):
            AsciiChart(width=40, height=2)

    def test_empty_series_rejected(self):
        chart = AsciiChart()
        with pytest.raises(ConfigurationError):
            chart.add_series("a", [])

    def test_mismatched_lengths_rejected(self):
        chart = AsciiChart()
        chart.add_series("a", [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            chart.add_series("b", [1.0])

    def test_render_without_series_rejected(self):
        with pytest.raises(ConfigurationError):
            AsciiChart().render()

    def test_too_many_series_rejected(self):
        chart = AsciiChart()
        for index in range(len(MARKERS)):
            chart.add_series(f"s{index}", [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            chart.add_series("overflow", [1.0, 2.0])

    def test_markers_present(self):
        chart = AsciiChart(width=30, height=6)
        chart.add_series("up", [1.0, 2.0, 3.0])
        chart.add_series("down", [3.0, 2.0, 1.0])
        rendered = chart.render()
        assert "o" in rendered and "x" in rendered
        assert "o=up" in rendered and "x=down" in rendered

    def test_monotone_series_monotone_rows(self):
        chart = AsciiChart(width=30, height=10)
        chart.add_series("up", [0.0, 5.0, 10.0])
        lines = chart.render().splitlines()
        plot = [line.split("|", 1)[1] for line in lines if "|" in line]
        rows_of_o = [row for row, content in enumerate(plot) if "o" in content]
        # Later (higher-value) points occupy higher rows (smaller indices).
        assert rows_of_o == sorted(rows_of_o)
        # min at the bottom row, max at the top row
        assert "o" in plot[0] and "o" in plot[-1]

    def test_constant_series_renders(self):
        chart = AsciiChart(width=20, height=5)
        chart.add_series("flat", [2.0, 2.0, 2.0])
        rendered = chart.render()
        assert rendered.count("o") == 3 or "o" in rendered

    def test_single_point(self):
        chart = AsciiChart(width=20, height=5)
        chart.add_series("dot", [1.5])
        assert "o" in chart.render()

    def test_x_labels(self):
        chart = AsciiChart(width=30, height=5, title="T")
        chart.add_series("a", [1.0, 2.0])
        rendered = chart.render([100, 2500])
        assert rendered.splitlines()[0] == "T"
        assert "100" in rendered
        assert "2.5k" in rendered

    def test_axis_labels_show_extremes(self):
        chart = AsciiChart(width=20, height=6)
        chart.add_series("a", [10.0, 90.0])
        rendered = chart.render()
        assert "90" in rendered
        assert "10" in rendered


class TestRenderPanel:
    def test_renders_figure_panel(self):
        from repro.experiments.figures import FigurePanel

        panel = FigurePanel(
            panel_id="5(a)",
            axis="requests",
            metric="revenue",
            x_values=[500.0, 1000.0],
            series={"tota": [1.0, 2.0], "ramcom": [2.0, 3.0]},
        )
        rendered = render_panel(panel)
        assert "Fig. 5(a)" in rendered
        assert "o=tota" in rendered
        assert "x=ramcom" in rendered
