"""Tests for entities (Definitions 2.1-2.3) and arrival streams."""

from __future__ import annotations

import pytest

from repro.core.entities import Request, Worker
from repro.core.events import ArrivalEvent, EventKind, EventStream, merge_streams
from repro.errors import ConfigurationError
from repro.geo.point import Point

from conftest import make_request, make_worker


class TestRequest:
    def test_value_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            make_request(value=0.0)
        with pytest.raises(ConfigurationError):
            make_request(value=-1.0)

    def test_negative_arrival_raises(self):
        with pytest.raises(ConfigurationError):
            make_request(t=-1.0)

    def test_frozen(self):
        request = make_request()
        with pytest.raises(AttributeError):
            request.value = 5.0  # type: ignore[misc]


class TestWorker:
    def test_radius_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            make_worker(radius=0.0)

    def test_is_inner_for(self):
        worker = make_worker(platform="A")
        assert worker.is_inner_for("A")
        assert not worker.is_inner_for("B")

    def test_can_reach_boundary(self):
        worker = make_worker(x=0, y=0, radius=1.0)
        assert worker.can_reach(make_request(x=1.0, y=0.0))
        assert not worker.can_reach(make_request(x=1.01, y=0.0))

    def test_arrived_before(self):
        worker = make_worker(t=5.0)
        assert worker.arrived_before(make_request(t=5.0))
        assert worker.arrived_before(make_request(t=6.0))
        assert not worker.arrived_before(make_request(t=4.0))

    def test_default_shareable(self):
        assert make_worker().shareable


class TestArrivalEvent:
    def test_kind_payload_consistency(self):
        with pytest.raises(ConfigurationError):
            ArrivalEvent(time=0.0, kind=EventKind.WORKER)
        with pytest.raises(ConfigurationError):
            ArrivalEvent(time=0.0, kind=EventKind.REQUEST)

    def test_constructors(self):
        worker = make_worker(t=3.0)
        event = ArrivalEvent.of_worker(worker)
        assert event.time == 3.0 and event.kind is EventKind.WORKER

    def test_sort_key_workers_first_on_tie(self):
        worker = make_worker("w", t=1.0)
        request = make_request("r", t=1.0)
        assert ArrivalEvent.of_worker(worker).sort_key() < ArrivalEvent.of_request(
            request
        ).sort_key()


class TestEventStream:
    def test_orders_by_time(self):
        workers = [make_worker("w1", t=5.0), make_worker("w2", t=1.0)]
        requests = [make_request("r1", t=3.0)]
        stream = EventStream.from_entities(workers, requests)
        times = [event.time for event in stream]
        assert times == sorted(times)

    def test_paper_table2_order(self):
        """The arrival order of the paper's Table II round-trips."""
        ids = ["w1", "w2", "r1", "w3", "r2", "r3", "w4", "r4", "w5", "r5"]
        workers, requests = [], []
        for t, entity_id in enumerate(ids, start=1):
            if entity_id.startswith("w"):
                workers.append(make_worker(entity_id, t=float(t)))
            else:
                requests.append(make_request(entity_id, t=float(t)))
        stream = EventStream.from_entities(workers, requests)
        observed = [
            (e.worker.worker_id if e.kind is EventKind.WORKER else e.request.request_id)
            for e in stream
        ]
        assert observed == ids

    def test_workers_requests_accessors(self):
        stream = EventStream.from_entities(
            [make_worker("w", t=0)], [make_request("r", t=1)]
        )
        assert [w.worker_id for w in stream.workers] == ["w"]
        assert [r.request_id for r in stream.requests] == ["r"]

    def test_len_and_getitem(self):
        stream = EventStream.from_entities([make_worker()], [make_request()])
        assert len(stream) == 2
        assert stream[0].kind is EventKind.WORKER

    def test_reordered_rewrites_times(self):
        stream = EventStream.from_entities(
            [make_worker("w", t=0)], [make_request("r", t=1)]
        )
        flipped = stream.reordered([1, 0])
        assert flipped[0].kind is EventKind.REQUEST
        assert flipped[0].time == 0.0
        assert flipped[1].time == 1.0

    def test_reordered_requires_permutation(self):
        stream = EventStream.from_entities([make_worker()], [make_request()])
        with pytest.raises(ConfigurationError):
            stream.reordered([0, 0])

    def test_reordered_preserves_payloads(self):
        worker = make_worker("w", x=3.3, radius=2.0)
        request = make_request("r", value=7.5)
        stream = EventStream.from_entities([worker], [request])
        flipped = stream.reordered([1, 0])
        assert flipped.workers[0].location == Point(3.3, 0.0)
        assert flipped.workers[0].service_radius == 2.0
        assert flipped.requests[0].value == 7.5

    def test_merge_streams(self):
        a = EventStream.from_entities([make_worker("w1", t=0)], [])
        b = EventStream.from_entities([make_worker("w2", "B", t=1)], [])
        merged = merge_streams([a, b])
        assert [w.worker_id for w in merged.workers] == ["w1", "w2"]
