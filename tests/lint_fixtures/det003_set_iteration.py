"""Fixture: DET003 — iterating a set literal without sorted()."""


def platform_order(extra: str) -> list[str]:
    return [name for name in {"A", "B", extra}]
