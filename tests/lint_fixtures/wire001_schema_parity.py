"""Fixture: WIRE001 — encoder writes a field the decoder never reads."""


def job_to_wire(job) -> dict:
    return {"id": job.job_id, "priority": job.priority}


def job_from_wire(payload: dict) -> tuple:
    return (payload["id"],)
