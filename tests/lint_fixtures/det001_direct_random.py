"""Fixture: DET001 — direct random.Random construction outside utils/rng."""

import random


def make_stream(seed: int) -> random.Random:
    return random.Random(seed)
