"""Fixture: DET002 — wall-clock read outside the timer/obs allowlist."""

import time


def stamp() -> float:
    return time.time()
