"""Fixture: OBS001 — probe emission without a probe.enabled guard."""


def record_decision(probe, platform_id: str) -> None:
    probe.count("decisions_total", 1, platform=platform_id)
