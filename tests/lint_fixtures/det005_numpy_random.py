"""Fixture: numpy.random drawn outside the kernel seam (DET005)."""

import numpy as np


def draw() -> float:
    generator = np.random.default_rng(7)
    return float(generator.standard_normal())
