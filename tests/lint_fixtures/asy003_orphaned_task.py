"""Fixture: ASY003 — a create_task result discarded on the spot."""

import asyncio


async def heartbeat() -> None:
    return None


async def spawn_unsupervised() -> None:
    asyncio.create_task(heartbeat())
