"""Fixture: DET004 — builtin hash() is salted by PYTHONHASHSEED."""


def bucket_for(label: str) -> int:
    return hash(label) % 64
