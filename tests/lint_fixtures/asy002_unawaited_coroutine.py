"""Fixture: ASY002 — a coroutine called as a bare statement."""


async def apply_decision() -> None:
    return None


async def decision_loop() -> None:
    apply_decision()
