"""Fixture: an inline suppression silences the only violation."""

import random


def make_stream(seed: int) -> random.Random:
    return random.Random(seed)  # comlint: disable=DET001
