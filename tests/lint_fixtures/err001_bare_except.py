"""Fixture: ERR001 — a bare except swallowing everything."""


def swallow(action):
    try:
        return action()
    except:
        return None
