"""Fixture: ERR002 — broad except Exception without re-raising."""


def swallow(action):
    try:
        return action()
    except Exception:
        return None
