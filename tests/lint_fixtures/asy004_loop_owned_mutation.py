"""Fixture: ASY004 — loop-owned state mutated off the decision loop."""


class Gateway:
    def __init__(self) -> None:
        self._session = object()  # comlint: loop-owned

    async def _decision_loop(self) -> None:
        self._apply()

    def _apply(self) -> None:
        # Reachable from the loop: allowed.
        self._session = object()

    def poke_from_caller_task(self) -> None:
        self._session = object()
