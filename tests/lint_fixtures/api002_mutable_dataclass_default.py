"""Fixture: API002 — mutable dataclass field default."""

from dataclasses import dataclass


@dataclass
class RunSummary:
    labels: list = []
