"""Fixture: API001 — mutable default argument."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket
