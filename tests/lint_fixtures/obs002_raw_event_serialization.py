"""Fixture: OBS002 — raw json.dumps in an event-sink-aware module."""

import json

from repro.obs.events import EventLog


def record(log: EventLog, row: dict) -> bytes:
    return json.dumps(row, sort_keys=True).encode()
