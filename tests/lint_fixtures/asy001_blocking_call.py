"""Fixture: ASY001 — a blocking call inside an async function."""

import time


async def pace_decisions() -> None:
    time.sleep(0.1)
