"""Fixture: representative project-idiomatic code with zero violations."""

from dataclasses import dataclass, field


@dataclass
class Tally:
    counts: dict = field(default_factory=dict)

    def bump(self, key: str) -> None:
        self.counts[key] = self.counts.get(key, 0) + 1

    def ordered_keys(self) -> list[str]:
        return [key for key in sorted(set(self.counts))]


def record_decision(probe, platform_id: str) -> None:
    if probe.enabled:
        probe.count("decisions_total", 1, platform=platform_id)
