"""ConstraintSanitizer: each Def-2.6 constraint caught by name.

Integration tests run deliberately-broken algorithms through the real
:class:`Simulator` with ``sanitize=True`` and assert the sanitizer stops
the run at the first bad decision, naming the violated constraint.
Sequence-level tests cover the constraints the simulator's own guards
make unreachable end-to-end (e.g. revising a settled request).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import ConstraintSanitizer, sanitize_from_env
from repro.core import DemCOM, RamCOM, Simulator, SimulatorConfig
from repro.core.base import Decision, OnlineAlgorithm
from repro.core.matching import MatchingLedger
from repro.errors import SanitizerViolation

from conftest import make_request, make_scenario, make_worker


class _Cheater(OnlineAlgorithm):
    """Serves whatever ``pick(request, context)`` fabricates."""

    name = "cheater"

    def decide(self, request, context):
        decision = self.pick(request, context)
        return decision if decision is not None else Decision.reject()

    def pick(self, request, context):  # pragma: no cover - overridden
        raise NotImplementedError


def _run(scenario, algorithm, **config_kwargs):
    config = SimulatorConfig(
        measure_response_time=False, sanitize=True, **config_kwargs
    )
    return Simulator(config).run(scenario, algorithm)


def _violation(scenario, algorithm, **config_kwargs) -> SanitizerViolation:
    with pytest.raises(SanitizerViolation) as excinfo:
        _run(scenario, algorithm, **config_kwargs)
    return excinfo.value


class TestDef26Constraints:
    def test_time_constraint(self):
        """A worker object claiming a later arrival than the exchange saw."""

        class TimeTraveller(_Cheater):
            def pick(self, request, context):
                worker = context.exchange.inner_candidates(
                    context.platform_id, request
                )[0]
                return Decision.serve_inner(
                    replace(worker, arrival_time=request.arrival_time + 100.0)
                )

        scenario = make_scenario([make_worker()], [make_request(t=1.0)])
        error = _violation(scenario, TimeTraveller)
        assert error.constraint == "time"
        assert error.request_id == "r0" and error.worker_id == "w0"

    def test_one_by_one_constraint(self):
        """The same worker may not serve two requests."""

        class DoubleDipper(_Cheater):
            chosen = None

            def pick(self, request, context):
                if DoubleDipper.chosen is None:
                    DoubleDipper.chosen = context.exchange.inner_candidates(
                        context.platform_id, request
                    )[0]
                return Decision.serve_inner(DoubleDipper.chosen)

        DoubleDipper.chosen = None
        scenario = make_scenario(
            [make_worker(radius=2.0)],
            [make_request("r0", t=1.0), make_request("r1", t=2.0)],
        )
        error = _violation(scenario, DoubleDipper)
        assert error.constraint == "one-by-one"
        assert error.request_id == "r1"

    def test_invariable_constraint(self):
        """A settled request is never revisited (sequence-level: the
        simulator's own flush bookkeeping blocks this path upstream)."""
        sanitizer = ConstraintSanitizer()
        worker = make_worker()
        request = make_request(t=1.0)
        sanitizer.observe_worker(worker)
        sanitizer.observe_rejection(request, time=1.0)
        with pytest.raises(SanitizerViolation) as excinfo:
            sanitizer.check_assignment(request, worker, outer=False, payment=0.0)
        assert excinfo.value.constraint == "invariable"
        with pytest.raises(SanitizerViolation) as excinfo:
            sanitizer.observe_rejection(request, time=2.0)
        assert excinfo.value.constraint == "invariable"

    def test_range_constraint(self):
        """Serving a request outside the worker's service disk."""

        class LongArm(_Cheater):
            def pick(self, request, context):
                return Decision.serve_inner(self.far)

        LongArm.far = make_worker("far", "A", t=0.0, x=5.0, radius=1.0)
        scenario = make_scenario(
            [LongArm.far], [make_request(t=1.0, x=0.0)]
        )
        error = _violation(scenario, LongArm)
        assert error.constraint == "range"
        assert error.worker_id == "far"


class TestAuxiliaryChecks:
    def test_waiting_list_ghost_worker(self):
        class Necromancer(_Cheater):
            def pick(self, request, context):
                return Decision.serve_inner(make_worker("ghost", "A", t=0.0))

        scenario = make_scenario([make_worker()], [make_request(t=1.0)])
        error = _violation(scenario, Necromancer)
        assert error.constraint == "waiting-list"
        assert error.worker_id == "ghost"

    def test_outer_payment_above_value(self):
        class Overpayer(_Cheater):
            def pick(self, request, context):
                workers = context.exchange.outer_candidates(
                    context.platform_id, request
                )
                if not workers:
                    return None
                return Decision.serve_outer(
                    workers[0], payment=request.value * 2.0, offers_made=1
                )

        scenario = make_scenario(
            [make_worker("b0", "B", t=0.0)],
            [make_request(t=1.0)],
            platform_ids=["A", "B"],
        )
        error = _violation(scenario, Overpayer)
        assert error.constraint == "payment"

    def test_inner_assignment_must_not_pay(self):
        sanitizer = ConstraintSanitizer()
        worker = make_worker()
        sanitizer.observe_worker(worker)
        with pytest.raises(SanitizerViolation) as excinfo:
            sanitizer.check_assignment(
                make_request(t=1.0), worker, outer=False, payment=1.0
            )
        assert excinfo.value.constraint == "payment"

    def test_sharing_flag_mismatch(self):
        sanitizer = ConstraintSanitizer()
        worker = make_worker()  # home platform A
        sanitizer.observe_worker(worker)
        with pytest.raises(SanitizerViolation) as excinfo:
            sanitizer.check_assignment(
                make_request(t=1.0), worker, outer=True, payment=1.0
            )
        assert excinfo.value.constraint == "sharing"

    def test_offer_checks(self):
        sanitizer = ConstraintSanitizer()
        request = make_request(t=1.0, value=10.0)
        inner = make_worker("w_in", "A", t=0.0)
        outer = make_worker("w_out", "B", t=0.0)
        selfish = make_worker("w_ns", "B", t=0.0, shareable=False)
        for worker in (inner, outer, selfish):
            sanitizer.observe_worker(worker)

        with pytest.raises(SanitizerViolation) as excinfo:
            sanitizer.check_offer(request, inner, 5.0, "A")
        assert excinfo.value.constraint == "sharing"
        with pytest.raises(SanitizerViolation) as excinfo:
            sanitizer.check_offer(request, selfish, 5.0, "A")
        assert excinfo.value.constraint == "sharing"
        with pytest.raises(SanitizerViolation) as excinfo:
            sanitizer.check_offer(request, outer, 11.0, "A")
        assert excinfo.value.constraint == "payment"
        sanitizer.check_offer(request, outer, 5.0, "A")  # valid: no raise


class TestConservation:
    def test_lender_income_divergence(self):
        sanitizer = ConstraintSanitizer()
        lender = make_worker("b0", "B", t=0.0)
        sanitizer.observe_worker(lender)
        request = make_request(t=1.0)
        sanitizer.check_assignment(request, lender, outer=True, payment=5.0)
        sanitizer.commit_assignment(request, lender, outer=True, payment=5.0)
        stale = MatchingLedger("B")  # never credited the 5.0
        with pytest.raises(SanitizerViolation) as excinfo:
            sanitizer.check_lender_conservation({"B": stale}, time=1.0)
        assert excinfo.value.constraint == "conservation"
        assert excinfo.value.platform_id == "B"

    def test_lender_income_dropped_in_simulation(self, monkeypatch):
        """If the ledger stops crediting lenders, the very next committed
        outer assignment trips the incremental conservation check."""
        monkeypatch.setattr(
            MatchingLedger,
            "record_lender_income",
            lambda self, borrower, payment: None,
        )

        class FairBorrower(_Cheater):
            def pick(self, request, context):
                workers = context.exchange.outer_candidates(
                    context.platform_id, request
                )
                if not workers:
                    return None
                return Decision.serve_outer(
                    workers[0], payment=request.value / 2.0, offers_made=1
                )

        scenario = make_scenario(
            [make_worker("b0", "B", t=0.0)],
            [make_request(t=1.0)],
            platform_ids=["A", "B"],
        )
        error = _violation(scenario, FairBorrower)
        assert error.constraint == "conservation"

    def test_finalize_revenue_decomposition(self):
        class LyingLedger(MatchingLedger):
            @property
            def revenue(self) -> float:
                return 999.0

        sanitizer = ConstraintSanitizer()
        with pytest.raises(SanitizerViolation) as excinfo:
            sanitizer.finalize({"A": LyingLedger("A")}, time=5.0)
        assert excinfo.value.constraint == "conservation"


class TestEnablement:
    def test_sanitize_from_env(self):
        assert not sanitize_from_env({})
        assert not sanitize_from_env({"COM_REPRO_SANITIZE": "0"})
        for value in ("1", "true", "YES", " on "):
            assert sanitize_from_env({"COM_REPRO_SANITIZE": value})

    def test_env_var_enables_sanitizer(self, monkeypatch):
        monkeypatch.setenv("COM_REPRO_SANITIZE", "1")

        class Necromancer(_Cheater):
            def pick(self, request, context):
                return Decision.serve_inner(make_worker("ghost", "A", t=0.0))

        scenario = make_scenario([make_worker()], [make_request(t=1.0)])
        with pytest.raises(SanitizerViolation):
            # note: config does NOT set sanitize=True
            Simulator(SimulatorConfig(measure_response_time=False)).run(
                scenario, Necromancer
            )

    @pytest.mark.parametrize("algorithm", [DemCOM, RamCOM])
    def test_sanitized_run_matches_plain_run(self, algorithm):
        workers = [
            make_worker(f"a{i}", "A", float(i) * 0.3, x=i * 0.4, radius=1.5)
            for i in range(5)
        ] + [
            make_worker(f"b{i}", "B", float(i) * 0.5, x=i * 0.6, radius=1.5)
            for i in range(4)
        ]
        requests = [
            make_request(f"r{i}", "A", 2.0 + i * 0.5, x=i * 0.35, value=5.0 + i)
            for i in range(8)
        ]
        scenario = make_scenario(workers, requests, platform_ids=["A", "B"])
        plain = Simulator(
            SimulatorConfig(seed=3, measure_response_time=False)
        ).run(scenario, algorithm)
        sanitized = Simulator(
            SimulatorConfig(seed=3, measure_response_time=False, sanitize=True)
        ).run(scenario, algorithm)
        assert sanitized.total_revenue == plain.total_revenue
        for pid in ("A", "B"):
            assert (
                sanitized.platforms[pid].ledger.revenue
                == plain.platforms[pid].ledger.revenue
            )
            assert len(sanitized.platforms[pid].ledger.records) == len(
                plain.platforms[pid].ledger.records
            )
