"""Tests for workload generation: values, spatial patterns, arrivals,
synthetic sweeps and the simulated city traces."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.geo.bbox import BoundingBox
from repro.utils.rng import SeedSequence
from repro.workloads import (
    CITY_PAIRS,
    DATASETS,
    DiurnalArrivals,
    HotspotPattern,
    NormalValueModel,
    RealFareModel,
    SyntheticWorkload,
    SyntheticWorkloadConfig,
    UniformArrivals,
    UniformPattern,
    build_city_pair,
    complementary_hotspots,
    dataset_statistics,
    make_value_model,
)
from repro.workloads.builders import BehaviorConfig
from repro.geo.point import Point


class TestValueModels:
    def test_factory(self):
        assert isinstance(make_value_model("real"), RealFareModel)
        assert isinstance(make_value_model("NORMAL"), NormalValueModel)
        with pytest.raises(ConfigurationError):
            make_value_model("exotic")

    def test_real_fare_bounds(self):
        model = RealFareModel()
        rng = random.Random(0)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(model.minimum <= v <= model.maximum for v in samples)
        assert max(samples) <= model.upper_bound

    def test_real_fare_mean_band(self):
        model = RealFareModel()
        rng = random.Random(1)
        mean = sum(model.sample(rng) for _ in range(5000)) / 5000
        # Paper-recoverable band: mean fare ~ 18-20 CNY.
        assert 15.0 <= mean <= 22.0

    def test_real_fare_invalid(self):
        with pytest.raises(ConfigurationError):
            RealFareModel(median=-1)
        with pytest.raises(ConfigurationError):
            RealFareModel(minimum=10, maximum=5)

    def test_normal_model(self):
        model = NormalValueModel(mu=20, sigma=5)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(2000)]
        assert all(v > 0 for v in samples)
        assert sum(samples) / len(samples) == pytest.approx(20.0, abs=1.0)

    def test_normal_invalid(self):
        with pytest.raises(ConfigurationError):
            NormalValueModel(sigma=0)
        with pytest.raises(ConfigurationError):
            NormalValueModel(mu=20, maximum=10)


class TestSpatialPatterns:
    def test_uniform_in_box(self):
        box = BoundingBox.square(5.0)
        pattern = UniformPattern(box)
        rng = random.Random(0)
        assert all(box.contains(pattern.sample(rng)) for _ in range(200))

    def test_hotspot_clipped_to_box(self):
        box = BoundingBox.square(2.0)
        pattern = HotspotPattern(box, [(Point(1, 1), 5.0)], [1.0])
        rng = random.Random(0)
        assert all(box.contains(pattern.sample(rng)) for _ in range(200))

    def test_hotspot_validation(self):
        box = BoundingBox.square(2.0)
        with pytest.raises(ConfigurationError):
            HotspotPattern(box, [], [])
        with pytest.raises(ConfigurationError):
            HotspotPattern(box, [(Point(0, 0), 1.0)], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            HotspotPattern(box, [(Point(0, 0), 1.0)], [0.0])
        with pytest.raises(ConfigurationError):
            HotspotPattern(box, [(Point(0, 0), 1.0)], [1.0], background=2.0)

    def test_hotspot_concentration(self):
        box = BoundingBox.square(10.0)
        pattern = HotspotPattern(
            box, [(Point(2, 2), 0.3)], [1.0], background=0.0
        )
        rng = random.Random(1)
        near = sum(
            1
            for _ in range(300)
            if pattern.sample(rng).distance_to(Point(2, 2)) < 1.0
        )
        assert near > 270

    def test_complementary_validation(self):
        box = BoundingBox.square(5.0)
        rng = random.Random(0)
        with pytest.raises(ConfigurationError):
            complementary_hotspots(box, 1, 0.5, rng)
        with pytest.raises(ConfigurationError):
            complementary_hotspots(box, 4, 1.5, rng)
        with pytest.raises(ConfigurationError):
            complementary_hotspots(box, 4, 0.5, rng, gradient=0.5)

    def test_complementary_mirror_structure(self):
        box = BoundingBox.square(5.0)
        patterns = complementary_hotspots(box, 4, 0.8, random.Random(0))
        assert set(patterns) == {"A", "B"}
        a_workers, a_requests = patterns["A"]
        b_workers, b_requests = patterns["B"]
        # B's workers share A's request weights: sampling many points, the
        # two should concentrate in the same region.
        rng1, rng2 = random.Random(1), random.Random(1)
        a_req_mean = sum(a_requests.sample(rng1).x for _ in range(400)) / 400
        b_wrk_mean = sum(b_workers.sample(rng2).x for _ in range(400)) / 400
        assert a_req_mean == pytest.approx(b_wrk_mean, abs=0.8)

    def test_skew_zero_is_balanced(self):
        box = BoundingBox.square(5.0)
        patterns = complementary_hotspots(box, 4, 0.0, random.Random(0))
        a_workers, a_requests = patterns["A"]
        rng1, rng2 = random.Random(2), random.Random(2)
        worker_mean = sum(a_workers.sample(rng1).x for _ in range(500)) / 500
        request_mean = sum(a_requests.sample(rng2).x for _ in range(500)) / 500
        assert worker_mean == pytest.approx(request_mean, abs=0.01)


class TestArrivals:
    def test_uniform_sorted_in_horizon(self):
        process = UniformArrivals(1000.0)
        times = process.sample_times(100, random.Random(0))
        assert times == sorted(times)
        assert all(0 <= t <= 1000 for t in times)

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            UniformArrivals(0.0)

    def test_negative_count(self):
        with pytest.raises(ConfigurationError):
            UniformArrivals(10.0).sample_times(-1, random.Random(0))

    def test_diurnal_peaks_concentrate_mass(self):
        process = DiurnalArrivals(86400.0, peak_hours=(12.0,), base_level=0.05)
        times = process.sample_times(3000, random.Random(0))
        near_noon = sum(1 for t in times if 10 * 3600 <= t <= 14 * 3600)
        assert near_noon > 1500  # far above the uniform share (~1/6)

    def test_diurnal_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(86400.0, peak_hours=())
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(86400.0, peak_width_hours=0.0)

    def test_diurnal_sorted(self):
        process = DiurnalArrivals(86400.0)
        times = process.sample_times(200, random.Random(3))
        assert times == sorted(times)


class TestBehaviorConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BehaviorConfig(going_rate_mean=0.0)
        with pytest.raises(ConfigurationError):
            BehaviorConfig(jitter=-0.1)

    def test_history_rates_bounded(self):
        config = BehaviorConfig()
        history = config.sample_history(200, random.Random(0))
        assert len(history) == 200
        assert all(0.05 <= rate <= 1.2 for rate in history)

    def test_history_centered_near_going_rate(self):
        config = BehaviorConfig(going_rate_mean=0.8, going_rate_spread=0.0, jitter=0.0)
        history = config.sample_history(10, random.Random(0))
        assert all(rate == pytest.approx(0.8) for rate in history)


class TestSyntheticWorkload:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticWorkloadConfig(request_count=1)
        with pytest.raises(ConfigurationError):
            SyntheticWorkloadConfig(arrival="weekly")

    def test_build_counts(self):
        workload = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=100, worker_count=40)
        )
        scenario = workload.build(seed=0)
        assert scenario.request_count == 100
        assert scenario.worker_count == 40
        # equal split per platform
        per_platform = {
            pid: sum(1 for w in scenario.events.workers if w.platform_id == pid)
            for pid in scenario.platform_ids
        }
        assert set(per_platform.values()) == {20}

    def test_deterministic_build(self):
        workload = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=50, worker_count=20)
        )
        a = workload.build(seed=3)
        b = workload.build(seed=3)
        assert [r.request_id for r in a.events.requests] == [
            r.request_id for r in b.events.requests
        ]
        assert [r.value for r in a.events.requests] == [
            r.value for r in b.events.requests
        ]

    def test_seed_changes_content(self):
        workload = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=50, worker_count=20)
        )
        a = workload.build(seed=1)
        b = workload.build(seed=2)
        assert [r.value for r in a.events.requests] != [
            r.value for r in b.events.requests
        ]

    def test_all_workers_have_behaviour(self):
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=30, worker_count=10)
        ).build(seed=0)
        assert all(w.worker_id in scenario.oracle for w in scenario.events.workers)

    def test_radius_applied(self):
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=10, worker_count=4, radius_km=2.5)
        ).build(seed=0)
        assert all(w.service_radius == 2.5 for w in scenario.events.workers)

    def test_uniform_arrival_mode(self):
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(
                request_count=30, worker_count=10, arrival="uniform"
            )
        ).build(seed=0)
        assert scenario.request_count == 30

    def test_value_upper_bound_from_model(self):
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=10, worker_count=4)
        ).build(seed=0)
        assert scenario.value_upper_bound == 100.0


class TestCityTraces:
    def test_table3_registry_matches_paper(self):
        assert DATASETS["RDC10"].requests == 91_321
        assert DATASETS["RDC10"].workers == 9_145
        assert DATASETS["RYX11"].workers == 2_686
        assert all(spec.radius_km == 1.0 for spec in DATASETS.values())

    def test_pairs_cover_three_tables(self):
        assert set(CITY_PAIRS) == {"chengdu-oct", "chengdu-nov", "xian-nov"}

    def test_unknown_pair_raises(self):
        with pytest.raises(WorkloadError):
            build_city_pair("tokyo-jan")

    def test_scaled_counts(self):
        scenario = build_city_pair("chengdu-oct", scale=0.005, seed=0)
        stats = dataset_statistics(scenario)
        assert stats["RDC10"]["requests"] == round(91_321 * 0.005)
        assert stats["RDC10"]["workers"] == round(9_145 * 0.005)
        assert stats["RYC10"]["requests"] == round(90_589 * 0.005)

    def test_ratio_preserved(self):
        scenario = build_city_pair("xian-nov", scale=0.01, seed=0)
        stats = dataset_statistics(scenario)
        # Xi'an is the worker-scarce city: |R|/|W| ~ 21-24.
        assert 18 <= stats["RDX11"]["ratio"] <= 28

    def test_deterministic(self):
        a = build_city_pair("chengdu-oct", scale=0.003, seed=5)
        b = build_city_pair("chengdu-oct", scale=0.003, seed=5)
        assert [r.value for r in a.events.requests] == [
            r.value for r in b.events.requests
        ]

    def test_mean_value_in_fare_band(self):
        scenario = build_city_pair("chengdu-nov", scale=0.01, seed=0)
        stats = dataset_statistics(scenario)
        for platform_stats in stats.values():
            assert 14.0 <= platform_stats["mean_value"] <= 24.0

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            build_city_pair("chengdu-oct", scale=0.0)
        with pytest.raises(ConfigurationError):
            build_city_pair("chengdu-oct", scale=2.0)


class TestSeedSequenceIntegration:
    def test_platform_streams_differ(self):
        seeds = SeedSequence(0).child("test")
        a = seeds.rng("A/workers").random()
        b = seeds.rng("B/workers").random()
        assert a != b
