"""Tests for timers, memory accounting and table rendering."""

from __future__ import annotations

import time

import pytest

from repro.utils.memory import MemoryMeter, approximate_size_bytes
from repro.utils.tables import TextTable, format_float, format_si
from repro.utils.timer import Stopwatch, TimingAccumulator


class TestStopwatch:
    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.005)
        assert watch.elapsed_seconds >= 0.004

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_restart(self):
        watch = Stopwatch().start()
        first = watch.stop()
        watch.start()
        second = watch.stop()
        assert first >= 0 and second >= 0

    def test_success_not_flagged(self):
        with Stopwatch() as watch:
            pass
        assert watch.failed is False

    def test_exception_propagates_and_flags_sample(self):
        watch = Stopwatch()
        with pytest.raises(ValueError, match="boom"):
            with watch:
                time.sleep(0.001)
                raise ValueError("boom")
        # The exception escapes, the elapsed time is still measured for
        # diagnostics, but the sample is flagged so latency metrics skip it.
        assert watch.failed is True
        assert watch.elapsed_seconds > 0.0

    def test_restart_clears_failed_flag(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch:
                raise RuntimeError
        assert watch.failed
        with watch:
            pass
        assert watch.failed is False


class TestTimingAccumulator:
    def test_empty_means_zero(self):
        acc = TimingAccumulator()
        assert acc.mean_ms == 0.0
        assert acc.max_ms == 0.0

    def test_records_in_milliseconds(self):
        acc = TimingAccumulator()
        acc.record(0.001)
        acc.record(0.003)
        assert acc.count == 2
        assert acc.mean_ms == pytest.approx(2.0)
        assert acc.max_ms == pytest.approx(3.0)
        assert acc.total_seconds == pytest.approx(0.004)


class TestApproximateSize:
    def test_atomic(self):
        assert approximate_size_bytes(1) > 0
        assert approximate_size_bytes("hello") > 0

    def test_container_grows_with_content(self):
        small = approximate_size_bytes([1] * 10)
        large = approximate_size_bytes(list(range(1000)))
        assert large > small

    def test_shared_objects_counted_once(self):
        shared = list(range(100))
        single = approximate_size_bytes([shared])
        double = approximate_size_bytes([shared, shared])
        # The second reference adds only list overhead, not the payload.
        assert double - single < approximate_size_bytes(shared) / 2

    def test_cycles_terminate(self):
        a: list = []
        a.append(a)
        assert approximate_size_bytes(a) > 0

    def test_objects_with_slots(self):
        class Slotted:
            __slots__ = ("x", "y")

            def __init__(self):
                self.x = list(range(50))
                self.y = "payload"

        assert approximate_size_bytes(Slotted()) > approximate_size_bytes(object())

    def test_mapping(self):
        assert approximate_size_bytes({"k": list(range(100))}) > approximate_size_bytes(
            {}
        )


class TestApproximateSizeNdarray:
    """Array-backend footprints are charged via ``nbytes``."""

    @pytest.fixture()
    def np(self):
        return pytest.importorskip("numpy")

    def test_owning_array_charges_nbytes(self, np):
        array = np.zeros(10_000, dtype=np.float64)
        size = approximate_size_bytes(array)
        assert size >= array.nbytes
        # A deep element walk of 10k boxed floats would cost >=24B each;
        # the nbytes path stays within a small header of the raw buffer.
        assert size < array.nbytes + 1024

    def test_scales_with_buffer_not_shape(self, np):
        flat = np.zeros(4096, dtype=np.float64)
        square = flat.reshape(64, 64).copy()
        assert approximate_size_bytes(square) == pytest.approx(
            approximate_size_bytes(flat), abs=512
        )

    def test_view_charges_base_once(self, np):
        base = np.zeros(100_000, dtype=np.float64)
        views = [base[i:] for i in range(10)]
        size = approximate_size_bytes([base, *views])
        # Ten aliasing views add headers, not ten more 800kB buffers.
        assert size < 2 * base.nbytes

    def test_arrays_inside_objects_are_found(self, np):
        class Holder:
            def __init__(self, np_module):
                self.matrix = np_module.ones((200, 200), dtype=np_module.float64)

        holder = Holder(np)
        assert approximate_size_bytes(holder) >= holder.matrix.nbytes

    def test_acceptance_matrix_footprint(self, np):
        from repro.core.acceptance import AcceptanceEstimator

        estimator = AcceptanceEstimator()
        ids = [f"w{worker_id}" for worker_id in range(32)]
        for worker_id in ids:
            estimator.set_history(worker_id, [0.2, 0.5, 0.8])
        matrix = estimator.matrix(ids)
        assert approximate_size_bytes(matrix) >= matrix.entries.nbytes


class TestMemoryMeter:
    def test_measures_allocation(self):
        meter = MemoryMeter()
        with meter:
            data = list(range(200_000))
        assert meter.peak_bytes > 100_000
        del data


class TestFormatting:
    def test_format_float_basic(self):
        assert format_float(1.23456) == "1.235"
        assert format_float(1.0, digits=1) == "1.0"

    def test_format_float_none_and_nan(self):
        assert format_float(None) == "-"
        assert format_float(float("nan")) == "-"
        assert format_float(float("inf")) == "-"

    def test_format_si(self):
        assert format_si(500) == "500"
        assert format_si(2500) == "2.5k"
        assert format_si(100_000) == "100k"
        assert format_si(2_000_000) == "2M"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["Name", "Value"], title="T")
        table.add_row(["abc", 1.5])
        table.add_row(["de", None])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        assert "-" in lines[2]
        assert "abc" in lines[3]
        assert lines[4].startswith("de")

    def test_row_width_mismatch_raises(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_markdown(self):
        table = TextTable(["a"])
        table.add_row([1])
        markdown = table.render_markdown()
        assert "| a |" in markdown
        assert "|---|" in markdown

    def test_csv(self):
        table = TextTable(["a", "b"])
        table.add_row([1, 2.5])
        assert table.render_csv().splitlines() == ["a,b", "1,2.500"]


class TestTimingPercentiles:
    def test_exact_until_reservoir_full(self):
        acc = TimingAccumulator()
        for value in range(1, 101):
            acc.record(value / 1000.0)
        assert acc.percentile_ms(0.5) == pytest.approx(50.5, abs=1.0)
        assert acc.percentile_ms(1.0) == pytest.approx(100.0)

    def test_empty_is_zero(self):
        assert TimingAccumulator().percentile_ms(0.9) == 0.0

    def test_reservoir_bounded(self):
        acc = TimingAccumulator()
        for value in range(5000):
            acc.record(float(value))
        assert len(acc._reservoir) == TimingAccumulator.RESERVOIR_SIZE
        # The estimate still tracks the true distribution roughly.
        assert acc.percentile_ms(0.5) == pytest.approx(2500 * 1e3, rel=0.15)

    def test_repeated_queries_use_cached_sort(self):
        acc = TimingAccumulator()
        for value in (0.005, 0.001, 0.003, 0.002, 0.004):
            acc.record(value)
        first = [acc.percentile_ms(q) for q in (0.1, 0.5, 0.9)]
        assert acc._sorted is not None
        cached = acc._sorted
        second = [acc.percentile_ms(q) for q in (0.1, 0.5, 0.9)]
        # Same answers, and the sorted view object was not rebuilt.
        assert second == first
        assert acc._sorted is cached

    def test_record_invalidates_cached_sort(self):
        acc = TimingAccumulator()
        acc.record(0.002)
        acc.record(0.001)
        assert acc.percentile_ms(1.0) == pytest.approx(2.0)
        acc.record(0.009)
        assert acc._sorted is None
        assert acc.percentile_ms(1.0) == pytest.approx(9.0)

    def test_reservoir_replacement_invalidates_cache(self):
        acc = TimingAccumulator()
        for value in range(TimingAccumulator.RESERVOIR_SIZE):
            acc.record(float(value))
        acc.percentile_ms(0.5)
        # Keep recording until a reservoir slot is actually replaced, then
        # the cached sorted view must have been dropped.
        before = acc.samples()
        while acc.samples() == before:
            acc.record(1e9)
        assert acc._sorted is None
