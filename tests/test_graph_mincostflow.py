"""Tests for the capacitated assignment solver.

Exactness is cross-checked against the unit-capacity Hungarian matcher on
a copy-expanded graph (the two formulations are equivalent by
construction).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.hungarian import max_weight_matching
from repro.graph.mincostflow import CapacitatedAssignment


def copy_expansion_optimum(
    edges: list[tuple[int, int, float]], capacities: dict[int, int]
) -> float:
    """Reference optimum: expand machines into capacity-many copies."""
    graph = BipartiteGraph()
    for job, machine, weight in edges:
        for copy in range(capacities.get(machine, 1)):
            graph.add_edge(job, (machine, copy), weight)
    return max_weight_matching(graph).total_weight


class TestBasics:
    def test_empty(self):
        assert CapacitatedAssignment().solve() == ({}, 0.0)

    def test_single_edge(self):
        solver = CapacitatedAssignment()
        solver.add_edge("r", "w", 4.0)
        pairs, weight = solver.solve()
        assert pairs == {"r": "w"}
        assert weight == 4.0

    def test_capacity_two_serves_both(self):
        solver = CapacitatedAssignment()
        solver.set_capacity("w", 2)
        solver.add_edge("r1", "w", 5.0)
        solver.add_edge("r2", "w", 3.0)
        pairs, weight = solver.solve()
        assert weight == 8.0
        assert set(pairs) == {"r1", "r2"}

    def test_capacity_one_picks_heavier(self):
        solver = CapacitatedAssignment()
        solver.set_capacity("w", 1)
        solver.add_edge("r1", "w", 5.0)
        solver.add_edge("r2", "w", 3.0)
        pairs, weight = solver.solve()
        assert weight == 5.0
        assert pairs == {"r1": "w"}

    def test_zero_capacity(self):
        solver = CapacitatedAssignment()
        solver.set_capacity("w", 0)
        solver.add_edge("r", "w", 5.0)
        assert solver.solve() == ({}, 0.0)

    def test_negative_capacity_raises(self):
        with pytest.raises(GraphError):
            CapacitatedAssignment().set_capacity("w", -1)

    def test_non_finite_weight_raises(self):
        with pytest.raises(GraphError):
            CapacitatedAssignment().add_edge("r", "w", float("inf"))

    def test_non_positive_weights_unused(self):
        solver = CapacitatedAssignment()
        solver.add_edge("r", "w", -1.0)
        assert solver.solve() == ({}, 0.0)

    def test_rebalancing_through_full_machine(self):
        # r1 prefers w1 but must yield it to r2 (who has no alternative).
        solver = CapacitatedAssignment()
        solver.add_edge("r1", "w1", 10.0)
        solver.add_edge("r1", "w2", 9.0)
        solver.add_edge("r2", "w1", 8.0)
        pairs, weight = solver.solve()
        assert weight == 17.0
        assert pairs == {"r1": "w2", "r2": "w1"}


class TestAgainstCopyExpansion:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10),  # jobs
        st.integers(min_value=1, max_value=5),  # machines
        st.floats(min_value=0.1, max_value=1.0),  # density
        st.integers(min_value=1, max_value=4),  # max capacity
        st.integers(min_value=0, max_value=2**31),
    )
    def test_optimum_matches(self, jobs, machines, density, max_cap, seed):
        rng = random.Random(seed)
        capacities = {m: rng.randint(1, max_cap) for m in range(machines)}
        edges = [
            (j, m, round(rng.uniform(0.1, 10.0), 3))
            for j in range(jobs)
            for m in range(machines)
            if rng.random() < density
        ]
        solver = CapacitatedAssignment()
        for machine, capacity in capacities.items():
            solver.set_capacity(machine, capacity)
        for job, machine, weight in edges:
            solver.add_edge(job, machine, weight)
        __, ours = solver.solve()
        expected = copy_expansion_optimum(edges, capacities)
        assert ours == pytest.approx(expected, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_capacities_respected(self, seed):
        rng = random.Random(seed)
        solver = CapacitatedAssignment()
        capacities = {m: rng.randint(1, 3) for m in range(4)}
        for machine, capacity in capacities.items():
            solver.set_capacity(machine, capacity)
        for job in range(12):
            for machine in range(4):
                if rng.random() < 0.5:
                    solver.add_edge(job, machine, rng.uniform(0.1, 5.0))
        pairs, __ = solver.solve()
        loads: dict = {}
        for machine in pairs.values():
            loads[machine] = loads.get(machine, 0) + 1
        for machine, load in loads.items():
            assert load <= capacities[machine]

    def test_large_instance_smoke(self):
        rng = random.Random(0)
        solver = CapacitatedAssignment()
        for machine in range(30):
            solver.set_capacity(machine, rng.randint(1, 8))
        for job in range(300):
            for __ in range(3):
                solver.add_edge(job, rng.randrange(30), rng.uniform(1, 20))
        pairs, weight = solver.solve()
        assert weight > 0
        assert len(pairs) <= 300
