"""Tests for the offline optimum (OFF) and its reentry relaxation."""

from __future__ import annotations

import pytest

from repro.baselines import TOTA, solve_offline, solve_offline_reentry
from repro.core import DemCOM, RamCOM, Simulator, SimulatorConfig, validate_matching
from repro.core.events import EventStream
from repro.core.simulator import Scenario

from conftest import (
    make_fixed_rate_oracle,
    make_request,
    make_scenario,
    make_worker,
)


class TestSolveOffline:
    def test_empty_scenario(self):
        scenario = make_scenario([], [], platform_ids=["A"])
        solution = solve_offline(scenario)
        assert solution.total_revenue == 0.0
        assert solution.total_completed == 0

    def test_inner_preferred_over_outer(self):
        # Inner edge is worth v, outer only v - rho: OFF uses the inner.
        workers = [
            make_worker("a", "A", 0.0, 0.5, 0.0),
            make_worker("b", "B", 0.0, 0.1, 0.0),
        ]
        requests = [make_request("r", "A", 1.0, value=10.0)]
        scenario = Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=make_fixed_rate_oracle(workers, rate=0.5),
            platform_ids=["A", "B"],
        )
        solution = solve_offline(scenario)
        assert solution.ledgers["A"].records[0].worker.worker_id == "a"
        assert solution.total_revenue == 10.0

    def test_outer_pays_realized_reservation(self):
        workers = [make_worker("b", "B", 0.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0, value=10.0)]
        scenario = Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=make_fixed_rate_oracle(workers, rate=0.3),
            platform_ids=["A", "B"],
        )
        solution = solve_offline(scenario)
        record = solution.ledgers["A"].records[0]
        assert record.payment == pytest.approx(3.0)
        assert solution.ledgers["A"].revenue == pytest.approx(7.0)
        assert solution.ledgers["B"].total_lender_income == pytest.approx(3.0)

    def test_unprofitable_outer_excluded(self):
        workers = [make_worker("b", "B", 0.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0, value=10.0)]
        scenario = Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=make_fixed_rate_oracle(workers, rate=1.5),
            platform_ids=["A", "B"],
        )
        solution = solve_offline(scenario)
        assert solution.total_completed == 0

    def test_no_cooperation_variant(self):
        workers = [
            make_worker("a", "A", 0.0, 5.0, 5.0),
            make_worker("b", "B", 0.0, 0.1, 0.0),
        ]
        requests = [make_request("r", "A", 1.0, value=10.0)]
        scenario = Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=make_fixed_rate_oracle(workers, rate=0.3),
            platform_ids=["A", "B"],
        )
        with_coop = solve_offline(scenario, include_cooperation=True)
        without = solve_offline(scenario, include_cooperation=False)
        assert with_coop.total_completed == 1
        assert without.total_completed == 0

    def test_time_constraint_respected(self):
        workers = [make_worker("late", "A", 10.0, 0.1, 0.0)]
        requests = [make_request("r", "A", 1.0)]
        scenario = make_scenario(workers, requests)
        assert solve_offline(scenario).total_completed == 0

    def test_records_validate(self, two_platform_scenario):
        solution = solve_offline(two_platform_scenario)
        validate_matching(solution.records)

    def test_rejections_recorded(self):
        workers = [make_worker("a", "A", 0.0, 9.0, 9.0)]
        requests = [make_request("r", "A", 1.0)]
        solution = solve_offline(make_scenario(workers, requests))
        assert solution.ledgers["A"].rejected_requests == 1

    def test_optimal_vs_greedy_trap(self):
        # Greedy would burn the single worker on the early cheap request.
        workers = [make_worker("w", "A", 0.0, 0.0, 0.0, radius=2.0)]
        requests = [
            make_request("cheap", "A", 1.0, x=0.5, value=1.0),
            make_request("rich", "A", 2.0, x=-0.5, value=50.0),
        ]
        scenario = make_scenario(workers, requests)
        solution = solve_offline(scenario)
        assert solution.total_revenue == 50.0


class TestOfflineDominatesOnline:
    """OFF >= every online algorithm on identical realized randomness."""

    def _scenario(self, seed: int) -> Scenario:
        import random

        rng = random.Random(seed)
        workers = [
            make_worker(
                f"{platform}{i}",
                platform,
                rng.uniform(0, 5),
                rng.uniform(0, 3),
                rng.uniform(0, 3),
                radius=1.2,
            )
            for platform in ("A", "B")
            for i in range(5)
        ]
        requests = [
            make_request(
                f"r{i}",
                rng.choice(["A", "B"]),
                rng.uniform(5, 10),
                rng.uniform(0, 3),
                rng.uniform(0, 3),
                value=rng.uniform(5, 30),
            )
            for i in range(12)
        ]
        return make_scenario(workers, requests, platform_ids=["A", "B"], seed=seed)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("factory", [TOTA, DemCOM, RamCOM])
    def test_off_upper_bounds_online(self, seed, factory):
        scenario = self._scenario(seed)
        offline_revenue = solve_offline(scenario).total_revenue
        result = Simulator(
            SimulatorConfig(seed=seed, measure_response_time=False)
        ).run(scenario, factory)
        assert offline_revenue >= result.total_revenue - 1e-9


class TestSolveOfflineReentry:
    def test_invalid_arguments(self):
        scenario = make_scenario([make_worker()], [make_request()])
        with pytest.raises(ValueError):
            solve_offline_reentry(scenario, service_duration=0.0)
        with pytest.raises(ValueError):
            solve_offline_reentry(scenario, service_duration=10.0, max_services=0)

    def test_capacity_allows_multiple_services(self):
        workers = [make_worker("w", "A", 0.0)]
        requests = [
            make_request("r1", "A", 10.0, value=5.0),
            make_request("r2", "A", 400.0, value=7.0),
        ]
        scenario = make_scenario(workers, requests)
        solution = solve_offline_reentry(scenario, service_duration=100.0)
        assert solution.total_completed == 2
        assert solution.total_revenue == 12.0
        validate_matching(solution.records)

    def test_capacity_limits_services(self):
        workers = [make_worker("w", "A", 0.0)]
        requests = [
            make_request(f"r{i}", "A", float(10 + i), value=5.0) for i in range(5)
        ]
        scenario = make_scenario(workers, requests)
        # horizon = 14s, duration 1000s: capacity 1.
        solution = solve_offline_reentry(scenario, service_duration=1000.0)
        assert solution.total_completed == 1

    @pytest.mark.parametrize("factory", [TOTA, DemCOM, RamCOM])
    def test_reentry_off_dominates_online_reentry(self, factory):
        import random

        rng = random.Random(4)
        workers = [
            make_worker(
                f"{p}{i}", p, rng.uniform(0, 500), rng.uniform(0, 2),
                rng.uniform(0, 2), radius=1.5,
            )
            for p in ("A", "B")
            for i in range(4)
        ]
        requests = [
            make_request(
                f"r{i}", rng.choice(["A", "B"]), rng.uniform(500, 5000),
                rng.uniform(0, 2), rng.uniform(0, 2), value=rng.uniform(5, 20),
            )
            for i in range(15)
        ]
        scenario = make_scenario(workers, requests, platform_ids=["A", "B"])
        duration = 600.0
        bound = solve_offline_reentry(scenario, service_duration=duration)
        result = Simulator(
            SimulatorConfig(
                seed=0,
                worker_reentry=True,
                service_duration=duration,
                measure_response_time=False,
            )
        ).run(scenario, factory)
        assert bound.total_revenue >= result.total_revenue - 1e-9
