"""Tests for :mod:`repro.service` — the online matching gateway.

The anchor property is golden equivalence: a trace replayed through the
service under the virtual clock — in-process, over TCP, or interrupted by
a snapshot/restore — produces a metric row byte-identical to
``Simulator.run`` on the same scenario and config.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import Simulator, SimulatorConfig
from repro.core.events import EventKind
from repro.core.registry import algorithm_factory
from repro.errors import ServiceError
from repro.experiments.metrics import AlgorithmMetrics
from repro.experiments.reporting import metrics_to_dict
from repro.service import (
    STATUS_SHED,
    AdmissionController,
    AdmissionPolicy,
    GatewayClient,
    MatchingGateway,
    MatchingServer,
    RealTimeClock,
    ServiceOutcome,
    VirtualClock,
    drive_trace,
    read_snapshot,
    request_from_wire,
    request_to_wire,
    worker_from_wire,
    worker_to_wire,
)
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

from conftest import make_request, make_scenario, make_worker


def build_scenario(seed: int = 7, requests: int = 60, workers: int = 30):
    return SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=requests, worker_count=workers, horizon_seconds=3600.0
        )
    ).build(seed=seed)


def service_config() -> SimulatorConfig:
    # measure_response_time=False drops the engine's only wall-clock field,
    # making the metric row a pure function of the scenario.
    return SimulatorConfig(measure_response_time=False)


def golden_row(scenario, algorithm: str, config: SimulatorConfig) -> str:
    result = Simulator(config).run(scenario, algorithm_factory(algorithm))
    return json.dumps(
        metrics_to_dict(AlgorithmMetrics.from_simulation(result)), sort_keys=True
    )


async def submit_event(target, event, clock=None) -> None:
    if clock is not None:
        clock.advance_to(event.time)
    if event.kind is EventKind.WORKER:
        await target.submit_worker(event.worker)
    else:
        await target.submit_request(event.request)


class TestClocks:
    def test_virtual_clock_advances_monotonically(self):
        clock = VirtualClock()
        assert clock.virtual and clock.now() == 0.0
        clock.advance_to(5.0)
        clock.advance_to(3.0)  # never rewinds
        assert clock.now() == 5.0

    def test_virtual_sleep_advances_instantly(self):
        clock = VirtualClock()

        async def main():
            await clock.sleep_until(42.0)
            return clock.now()

        assert asyncio.run(main()) == 42.0

    def test_real_time_clock_moves_forward(self):
        clock = RealTimeClock(speed=100.0)
        assert not clock.virtual

        async def main():
            start = clock.now()
            await asyncio.sleep(0.01)
            return clock.now() - start

        assert asyncio.run(main()) > 0.0

    def test_real_time_clock_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            RealTimeClock(speed=0.0)


class TestAdmission:
    def test_policy_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_pending=-1)

    def test_bounded_controller_sheds_at_capacity(self):
        controller = AdmissionController(AdmissionPolicy(max_pending=2))
        assert controller.admit(pending=0)
        assert controller.admit(pending=1)
        assert not controller.admit(pending=2)
        assert (controller.offered, controller.admitted, controller.shed) == (
            3,
            2,
            1,
        )
        assert controller.shed_rate == pytest.approx(1 / 3)

    def test_unbounded_policy_never_sheds(self):
        controller = AdmissionController(AdmissionPolicy(max_pending=0))
        assert controller.policy.unbounded
        assert all(controller.admit(pending=10**6) for _ in range(100))
        assert controller.shed == 0


class TestWireCodecs:
    def test_request_round_trip(self):
        request = make_request("r1", "B", t=4.5, x=1.25, y=-2.5, value=17.0)
        assert request_from_wire(request_to_wire(request), 0.0) == request

    def test_worker_round_trip(self):
        worker = make_worker("w1", "A", t=2.0, x=0.5, y=0.75, radius=2.0)
        assert worker_from_wire(worker_to_wire(worker), 0.0) == worker

    def test_missing_field_raises_service_error(self):
        with pytest.raises(ServiceError):
            request_from_wire({"id": "r1"}, 0.0)

    def test_missing_timestamp_uses_default(self):
        payload = request_to_wire(make_request())
        del payload["t"]
        assert request_from_wire(payload, 9.0).arrival_time == 9.0


class TestGatewayEquivalence:
    @pytest.mark.parametrize("algorithm", ["demcom", "ramcom"])
    def test_virtual_clock_replay_matches_batch_run(self, algorithm):
        scenario = build_scenario()
        config = service_config()
        golden = golden_row(scenario, algorithm, config)

        async def replay() -> str:
            gateway = MatchingGateway(
                scenario=scenario, algorithm=algorithm, config=config
            )
            await gateway.start()
            for event in scenario.events:
                await submit_event(gateway, event, clock=gateway.clock)
            await gateway.drain()
            return json.dumps(gateway.metrics_dict(), sort_keys=True)

        assert asyncio.run(replay()) == golden

    @pytest.mark.parametrize("algorithm", ["demcom", "ramcom"])
    def test_tcp_replay_matches_batch_run(self, algorithm):
        scenario = build_scenario(seed=9)
        config = service_config()
        golden = golden_row(scenario, algorithm, config)

        async def replay() -> str:
            server = MatchingServer(
                MatchingGateway(
                    scenario=scenario, algorithm=algorithm, config=config
                )
            )
            host, port = await server.start()
            try:
                async with GatewayClient(host, port) as client:
                    metrics = await drive_trace(client, scenario.events)
            finally:
                await server.stop()
            return json.dumps(metrics, sort_keys=True)

        assert asyncio.run(replay()) == golden


class TestGatewayLifecycle:
    def test_submit_before_start_raises(self):
        gateway = MatchingGateway(scenario=build_scenario(requests=5, workers=3))

        async def main():
            await gateway.submit_worker(make_worker())

        with pytest.raises(ServiceError):
            asyncio.run(main())

    def test_immediate_outcome_and_query(self):
        workers = [make_worker("w0", "A", t=0.0)]
        requests = [make_request("r0", "A", t=1.0)]
        scenario = make_scenario(workers, requests)

        async def main():
            gateway = MatchingGateway(
                scenario=scenario, config=service_config()
            )
            await gateway.start()
            for event in scenario.events:
                await submit_event(gateway, event, clock=gateway.clock)
            outcome = gateway.outcome_of("r0")
            await gateway.drain()
            return outcome

        outcome = asyncio.run(main())
        assert isinstance(outcome, ServiceOutcome)
        assert outcome.request_id == "r0"
        assert outcome.status in {"serve_inner", "serve_outer", "reject"}

    def test_drain_stops_the_gateway(self):
        scenario = build_scenario(requests=5, workers=3)

        async def main():
            gateway = MatchingGateway(scenario=scenario, config=service_config())
            await gateway.start()
            await gateway.drain()
            assert not gateway.running
            with pytest.raises(ServiceError):
                await gateway.submit_worker(make_worker())
            return gateway.metrics_dict()

        metrics = asyncio.run(main())
        assert metrics["algorithm"] == "RamCOM"

    def test_stats_shape(self):
        scenario = build_scenario(requests=5, workers=3)
        request_count = sum(
            1 for e in scenario.events if e.kind is not EventKind.WORKER
        )

        async def main():
            gateway = MatchingGateway(scenario=scenario, config=service_config())
            await gateway.start()
            for event in scenario.events:
                await submit_event(gateway, event, clock=gateway.clock)
            stats = gateway.stats()
            await gateway.drain()
            return stats

        stats = asyncio.run(main())
        assert stats["algorithm"] == "RamCOM"
        assert stats["running"] is True
        assert stats["decided"] == request_count > 0
        assert stats["admission"]["shed"] == 0
        assert stats["clock"]["virtual"] is True
        assert "service_decisions_total" in stats["metrics"]["counters"]


class TestAdmissionShedding:
    def test_overload_sheds_requests_but_not_workers(self):
        scenario = build_scenario(requests=40, workers=10)
        events = list(scenario.events)

        async def main():
            gateway = MatchingGateway(
                scenario=scenario,
                config=service_config(),
                admission=AdmissionPolicy(max_pending=1),
            )
            await gateway.start()
            for event in events:
                gateway.clock.advance_to(event.time)
            # Fire every submission concurrently so the queue backs up.
            worker_jobs = [
                gateway.submit_worker(e.worker)
                for e in events
                if e.kind is EventKind.WORKER
            ]
            request_jobs = [
                gateway.submit_request(e.request)
                for e in events
                if e.kind is not EventKind.WORKER
            ]
            outcomes = await asyncio.gather(*request_jobs)
            await asyncio.gather(*worker_jobs)
            await gateway.stop()
            return gateway, outcomes

        gateway, outcomes = asyncio.run(main())
        shed = [o for o in outcomes if o.status == STATUS_SHED]
        assert gateway.admission.shed == len(shed) > 0
        assert gateway.admission.offered == len(outcomes)
        assert 0.0 < gateway.admission.shed_rate < 1.0
        # Workers are never shed: all of them reached the engine.
        stats = gateway.stats()
        assert "service_shed_total" in stats["metrics"]["counters"]


class TestSnapshotRestore:
    def test_mid_stream_restore_matches_uninterrupted_run(self, tmp_path):
        scenario = build_scenario(seed=11)
        config = service_config()
        golden = golden_row(scenario, "ramcom", config)
        events = list(scenario.events)
        cut = len(events) // 2
        path = tmp_path / "mid.snap"

        async def main() -> str:
            gateway = MatchingGateway(
                scenario=scenario, algorithm="ramcom", config=config
            )
            await gateway.start()
            for event in events[:cut]:
                await submit_event(gateway, event, clock=gateway.clock)
            await gateway.snapshot(path)
            await gateway.stop()

            restored = MatchingGateway.from_snapshot(path)
            await restored.start()
            for event in events[cut:]:
                await submit_event(restored, event, clock=restored.clock)
            await restored.drain()
            return json.dumps(restored.metrics_dict(), sort_keys=True)

        assert asyncio.run(main()) == golden

    def test_snapshot_preserves_outcome_log(self, tmp_path):
        scenario = build_scenario(requests=10, workers=5)
        events = list(scenario.events)
        path = tmp_path / "log.snap"

        async def main():
            gateway = MatchingGateway(scenario=scenario, config=service_config())
            await gateway.start()
            for event in events[: len(events) // 2]:
                await submit_event(gateway, event, clock=gateway.clock)
            await gateway.snapshot(path)
            decided = {
                rid: gateway.outcome_of(rid)
                for e in events[: len(events) // 2]
                if e.kind is not EventKind.WORKER
                for rid in [e.request.request_id]
            }
            await gateway.stop()
            restored = MatchingGateway.from_snapshot(path)
            return decided, restored

        decided, restored = asyncio.run(main())
        assert decided
        for request_id, outcome in decided.items():
            assert restored.outcome_of(request_id) == outcome

    def test_snapshot_rejects_telemetry_sessions(self, tmp_path):
        from repro.obs import Telemetry

        scenario = build_scenario(requests=5, workers=3)
        config = SimulatorConfig(
            measure_response_time=False, telemetry=Telemetry()
        )

        async def main():
            gateway = MatchingGateway(scenario=scenario, config=config)
            await gateway.start()
            try:
                with pytest.raises(ServiceError):
                    await gateway.snapshot(tmp_path / "no.snap")
            finally:
                await gateway.stop()

        asyncio.run(main())

    def test_read_snapshot_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.snap"
        path.write_bytes(b"not a snapshot")
        with pytest.raises(ServiceError):
            read_snapshot(path)


class TestServerProtocol:
    def test_protocol_verbs_and_errors(self):
        scenario = build_scenario(requests=8, workers=4)

        async def main():
            server = MatchingServer(
                MatchingGateway(scenario=scenario, config=service_config())
            )
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)

                async def raw(payload) -> dict:
                    writer.write(json.dumps(payload).encode() + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                ping = await raw({"verb": "ping"})
                unknown = await raw({"verb": "frobnicate"})
                bad_request = await raw({"verb": "request", "request": {}})
                not_json = None
                writer.write(b"this is not json\n")
                await writer.drain()
                not_json = json.loads(await reader.readline())
                missing = await raw({"verb": "outcome", "request_id": "nope"})
                writer.close()
                return ping, unknown, bad_request, not_json, missing
            finally:
                await server.stop()

        ping, unknown, bad_request, not_json, missing = asyncio.run(main())
        assert ping["ok"] and ping["virtual"] is True
        assert not unknown["ok"] and "unknown verb" in unknown["error"]
        assert not bad_request["ok"] and "missing field" in bad_request["error"]
        assert not not_json["ok"] and "bad JSON" in not_json["error"]
        assert missing["ok"] and missing["outcome"] is None

    def test_client_raises_on_error_response(self):
        scenario = build_scenario(requests=5, workers=3)

        async def main():
            server = MatchingServer(
                MatchingGateway(scenario=scenario, config=service_config())
            )
            host, port = await server.start()
            try:
                async with GatewayClient(host, port) as client:
                    with pytest.raises(ServiceError):
                        await client.call("frobnicate")
                    stats = await client.stats()
                    return stats
            finally:
                await server.stop()

        stats = asyncio.run(main())
        assert stats["algorithm"] == "RamCOM"
