"""Tests for the N-platform workload extension."""

from __future__ import annotations

import pytest

from repro.baselines import TOTA, solve_offline
from repro.core import RamCOM, Simulator, SimulatorConfig, validate_matching
from repro.errors import ConfigurationError
from repro.workloads import MultiPlatformConfig, MultiPlatformWorkload


def build(platforms: int = 3, seed: int = 1, **kwargs):
    defaults = dict(
        platform_count=platforms,
        request_count=300,
        worker_count=90,
        city_km=6.0,
    )
    defaults.update(kwargs)
    return MultiPlatformWorkload(MultiPlatformConfig(**defaults)).build(seed=seed)


class TestConfig:
    def test_requires_two_platforms(self):
        with pytest.raises(ConfigurationError):
            MultiPlatformConfig(platform_count=1)

    def test_skew_range(self):
        with pytest.raises(ConfigurationError):
            MultiPlatformConfig(skew=1.5)

    def test_platform_ids(self):
        assert MultiPlatformConfig(platform_count=4).platform_ids == [
            "P0",
            "P1",
            "P2",
            "P3",
        ]


class TestGeneration:
    def test_counts_split_evenly(self):
        scenario = build(platforms=3)
        for platform_id in scenario.platform_ids:
            workers = [
                w for w in scenario.events.workers if w.platform_id == platform_id
            ]
            requests = [
                r for r in scenario.events.requests if r.platform_id == platform_id
            ]
            assert len(workers) == 30
            assert len(requests) == 100

    def test_deterministic(self):
        a = build(seed=5)
        b = build(seed=5)
        assert [r.value for r in a.events.requests] == [
            r.value for r in b.events.requests
        ]

    def test_behaviours_registered(self):
        scenario = build()
        assert all(w.worker_id in scenario.oracle for w in scenario.events.workers)

    def test_five_platforms(self):
        scenario = build(platforms=5)
        assert len(scenario.platform_ids) == 5


class TestSimulation:
    @pytest.mark.parametrize("platforms", [2, 3, 4])
    def test_constraints_hold(self, platforms):
        scenario = build(platforms=platforms)
        result = Simulator(
            SimulatorConfig(seed=0, measure_response_time=False)
        ).run(scenario, RamCOM)
        validate_matching(result.all_records())

    def test_cooperation_crosses_multiple_platforms(self):
        scenario = build(platforms=3, request_count=600, worker_count=150)
        result = Simulator(
            SimulatorConfig(
                seed=0,
                worker_reentry=True,
                service_duration=1800.0,
                measure_response_time=False,
            )
        ).run(scenario, RamCOM)
        # Borrowing happens, and more than one platform lends.
        lending_platforms = {
            record.worker.platform_id
            for record in result.all_records()
            if record.worker.platform_id != record.request.platform_id
        }
        assert len(lending_platforms) >= 2

    def test_cooperation_beats_tota(self):
        scenario = build(platforms=3, request_count=600, worker_count=150)
        simulator = Simulator(
            SimulatorConfig(
                seed=0,
                worker_reentry=True,
                service_duration=1800.0,
                measure_response_time=False,
            )
        )
        tota = simulator.run(scenario, TOTA)
        ramcom = simulator.run(scenario, RamCOM)

        def revenue(result):
            return sum(
                p.ledger.revenue + p.ledger.total_lender_income
                for p in result.platforms.values()
            )

        assert revenue(ramcom) > revenue(tota)

    def test_offline_dominates_on_three_platforms(self):
        scenario = build(platforms=3)
        optimum = solve_offline(scenario).total_revenue
        result = Simulator(
            SimulatorConfig(seed=0, measure_response_time=False)
        ).run(scenario, RamCOM)
        assert optimum >= result.total_revenue - 1e-9
