"""Tests for :mod:`repro.cluster` — the sharded multi-gateway cluster.

The anchor properties:

* **degenerate identity** — a 1-shard cluster is byte-identical to a
  single :class:`MatchingGateway`: same metric row as ``Simulator.run``
  (DemCOM and RamCOM) and the same canonical event stream;
* **conservation** — cross-shard forwarding keeps border requests alive,
  so an N-shard cluster completes (at least) the single-shard matches
  and the sanitizer's cluster-wide Def. 2.5/2.6 checks hold;
* **verified replay** — the merged cluster recording re-drives through
  fresh shards to a byte-identical stream and row;
* **operations** — snapshot handoff leaves the final row byte-identical,
  and a mid-stream shard crash degrades to the survivors instead of
  taking the cluster down.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster import (
    ClusterRouter,
    LocalShard,
    ShardPlan,
    drive_cluster,
    final_statuses_of,
    local_cluster,
    merge_shard_streams,
    reach_from_events,
    recording_of,
    replay_cluster_log,
    shard_streams_of,
    stop_tcp_cluster,
    tcp_cluster,
)
from repro.core import Simulator, SimulatorConfig
from repro.core.registry import algorithm_factory
from repro.errors import ConfigurationError, SanitizerViolation, ServiceError
from repro.experiments.metrics import AlgorithmMetrics
from repro.experiments.reporting import metrics_to_dict
from repro.faults.crash import CrashPlan
from repro.geo.point import Point
from repro.obs.events import GatewayEvent, canonical_projection, read_events
from repro.service import MatchingGateway
from repro.service.dashboard import LiveState
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

CITY_KM = 8.0


def build_scenario(seed: int = 7, requests: int = 60, workers: int = 30):
    return SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=requests, worker_count=workers, horizon_seconds=3600.0
        )
    ).build(seed=seed)


def service_config() -> SimulatorConfig:
    # measure_response_time=False drops the engine's only wall-clock
    # field, making the metric row a pure function of the scenario.
    return SimulatorConfig(measure_response_time=False)


def golden_row(scenario, algorithm: str, config: SimulatorConfig) -> str:
    result = Simulator(config).run(scenario, algorithm_factory(algorithm))
    return json.dumps(
        metrics_to_dict(AlgorithmMetrics.from_simulation(result)), sort_keys=True
    )


def make_plan(scenario, shards: int, cell_km: float = 2.0) -> ShardPlan:
    return ShardPlan.uniform(
        shards, cell_km, CITY_KM, reach_km=reach_from_events(scenario.events)
    )


async def run_cluster(
    scenario,
    plan: ShardPlan,
    algorithm: str = "ramcom",
    config: SimulatorConfig | None = None,
    **kwargs,
):
    router, logs, _clock = local_cluster(
        scenario,
        plan,
        algorithm=algorithm,
        config=config or service_config(),
        **kwargs,
    )
    await router.start()
    try:
        result = await drive_cluster(router, scenario.events)
    finally:
        await router.stop()
    return router, logs, result


class TestShardPlan:
    def test_uniform_stripes_columns(self):
        plan = ShardPlan.uniform(4, 2.0, CITY_KM)
        assert len(plan.assignment) == 16
        # Column 0 belongs to shard 0, column 3 to shard 3.
        assert plan.shard_of(Point(0.5, 4.0)) == 0
        assert plan.shard_of(Point(7.5, 4.0)) == 3
        # Every shard owns at least one cell.
        assert {plan.shard_of_cell(cell) for cell in plan.assignment} == {
            0,
            1,
            2,
            3,
        }

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ShardPlan(shard_count=0, cell_km=1.0)
        with pytest.raises(ConfigurationError):
            ShardPlan(shard_count=1, cell_km=0.0)
        with pytest.raises(ConfigurationError):
            ShardPlan(shard_count=1, cell_km=1.0, reach_km=-1.0)
        with pytest.raises(ConfigurationError):
            ShardPlan(
                shard_count=2,
                cell_km=1.0,
                assignment={(0, 0): 5},  # shard id out of range
            )
        with pytest.raises(ConfigurationError):
            ShardPlan(
                shard_count=2,
                cell_km=1.0,
                assignment={(0, 0): 0},
                split={(0, 0): {(0, 0): 1}},  # both assigned and split
            )

    def test_out_of_bounds_points_clamp_to_border_shards(self):
        plan = ShardPlan.uniform(4, 2.0, CITY_KM)
        # Just past the west edge routes with the west border shard.
        assert plan.shard_of(Point(-0.5, 4.0)) == 0
        assert plan.shard_of(Point(99.0, 4.0)) == 3
        # Same point, same answer — fallback must be deterministic.
        assert plan.shard_of(Point(-3.0, -3.0)) == plan.shard_of(
            Point(-3.0, -3.0)
        )

    def test_density_plan_balances_load_and_splits_hot_cells(self):
        scenario = build_scenario(seed=7, requests=200, workers=100)
        plan = ShardPlan.from_density(scenario.events, 4, 2.0, reach_km=2.0)
        assert plan.shard_count == 4
        # The synthetic city is skewed; the density walk must still give
        # every shard some territory.
        owned = {shard: len(plan.cells_of(shard)) for shard in range(4)}
        assert all(count > 0 for count in owned.values())
        # Weighted per-shard load stays near even: no shard holds more
        # than half the total request weight.
        loads = [0.0] * 4
        for event in scenario.events:
            if event.request is not None:
                loads[plan.shard_of(event.request.location)] += 1.0
        assert max(loads) <= 0.5 * sum(loads)

    def test_shards_in_disk_covers_the_home_shard(self):
        scenario = build_scenario()
        plan = make_plan(scenario, 4)
        for event in scenario.events:
            point = (
                event.request.location
                if event.request is not None
                else event.worker.location
            )
            shards = plan.shards_in_disk(point, plan.reach_km)
            assert plan.shard_of(point) in shards
            assert shards == sorted(shards)
        with pytest.raises(ConfigurationError):
            plan.shards_in_disk(Point(0.0, 0.0), -1.0)

    def test_codec_round_trip(self):
        scenario = build_scenario(seed=3, requests=150, workers=80)
        for plan in (
            make_plan(scenario, 4),
            ShardPlan.from_density(scenario.events, 3, 2.0, reach_km=1.5),
        ):
            clone = ShardPlan.from_dict(plan.as_dict())
            assert clone.as_dict() == plan.as_dict()
            assert clone.assignment == plan.assignment
            assert clone.split == plan.split
            # The clone routes every trace point identically.
            for event in scenario.events:
                point = (
                    event.request.location
                    if event.request is not None
                    else event.worker.location
                )
                assert clone.shard_of(point) == plan.shard_of(point)

    def test_shard_summary_shape(self):
        plan = ShardPlan.uniform(2, 2.0, CITY_KM)
        summary = plan.shard_summary(0)
        assert summary["shard"] == 0
        assert summary["shards"] == 2
        assert summary["cells"] == len(plan.cells_of(0))
        assert summary["cell_range"][0] <= summary["cell_range"][1]


class TestSingleShardIdentity:
    @pytest.mark.parametrize("algorithm", ["ramcom", "demcom"])
    def test_one_shard_cluster_matches_the_golden_row(self, algorithm):
        scenario = build_scenario()
        config = service_config()
        plan = make_plan(scenario, 1)
        _router, _logs, result = asyncio.run(
            run_cluster(scenario, plan, algorithm=algorithm, config=config)
        )
        assert json.dumps(result.row, sort_keys=True) == golden_row(
            scenario, algorithm, config
        )
        assert result.forwards == 0
        assert result.cross_shard_serves == 0

    @pytest.mark.parametrize("algorithm", ["ramcom", "demcom"])
    def test_one_shard_recording_matches_the_gateway_stream(
        self, algorithm, tmp_path
    ):
        """The 1-shard merged recording IS a MatchingGateway recording."""
        scenario = build_scenario()
        config = service_config()

        async def gateway_stream():
            from repro.obs.events import EventLog
            from repro.service.clock import VirtualClock

            clock = VirtualClock()
            log = EventLog(ring=0)
            gateway = MatchingGateway(
                scenario, algorithm, config, clock=clock, events=log
            )
            await gateway.start()
            for event in scenario.events:
                clock.advance_to(event.time)
                if event.worker is not None:
                    await gateway.submit_worker(event.worker)
                else:
                    await gateway.submit_request(event.request)
            await gateway.drain()
            await gateway.stop()
            return list(log.events())

        plan = make_plan(scenario, 1)
        router, logs, result = asyncio.run(
            run_cluster(scenario, plan, algorithm=algorithm, config=config)
        )
        merged = recording_of(router, logs, result)
        assert canonical_projection(merged) == canonical_projection(
            asyncio.run(gateway_stream())
        )


class TestClusterConservation:
    def test_four_shards_complete_what_one_shard_completes(self):
        scenario = build_scenario(seed=3, requests=80, workers=40)
        config = service_config()
        single = asyncio.run(
            run_cluster(scenario, make_plan(scenario, 1), config=config)
        )[2]
        clustered = asyncio.run(
            run_cluster(
                scenario, make_plan(scenario, 4), config=config, sanitize=True
            )
        )[2]
        single_completed = sum(single.row["completed"].values())
        cluster_completed = clustered.row["completed_total"]
        # Forwarding keeps border requests alive; shard-local candidate
        # sets may flip individual pricing decisions either way, so the
        # bound is a floor, not equality.
        assert cluster_completed >= 0.8 * single_completed
        assert clustered.forwards > 0
        assert clustered.row["shards"] == 4
        # Revenue conservation (Def. 2.5) survives the merge: totals are
        # per-platform sums of per-shard ledgers.
        for platform, revenue in clustered.row["revenue"].items():
            assert revenue >= 0.0
            assert platform in single.row["revenue"]

    def test_sanitizer_runs_clean_on_a_healthy_cluster(self):
        scenario = build_scenario()
        # Raises SanitizerViolation inside drain() if routing broke the
        # invariable constraint or worker locality.
        asyncio.run(
            run_cluster(scenario, make_plan(scenario, 4), sanitize=True)
        )

    def test_sanitizer_flags_cross_shard_worker_leak(self):
        scenario = build_scenario()
        plan = make_plan(scenario, 2)
        router, _logs, _clock = local_cluster(scenario, plan, sanitize=True)

        async def violate():
            await router.start()
            try:
                for worker in scenario.events.workers:
                    await router.submit_worker(worker)
                for request in scenario.events.requests:
                    home = router._home_shard(request)
                    shard = router.shards[home]
                    assert isinstance(shard, LocalShard)
                    outcome = await shard.submit_request(request)
                    router._statuses[request.request_id] = (
                        home,
                        outcome.status,
                    )
                    if outcome.status in ("serve_inner", "serve_outer"):
                        # Forge the router's books: pretend the serving
                        # worker is homed on the other shard.
                        router._worker_home[outcome.worker_id] = 1 - home
                        with pytest.raises(SanitizerViolation):
                            await router.drain()
                        return True
                return None  # no request served; inconclusive trace
            finally:
                await router.stop()

        if asyncio.run(violate()) is None:
            pytest.skip("no request was served in this trace")


class TestClusterRecordingAndReplay:
    def test_merged_recording_replays_byte_identically(self, tmp_path):
        scenario = build_scenario()
        config = service_config()
        plan = make_plan(scenario, 4)
        router, logs, result = asyncio.run(
            run_cluster(scenario, plan, config=config)
        )
        path = tmp_path / "cluster.comevt"
        recording_of(router, logs, result, path)
        report = asyncio.run(
            replay_cluster_log(path, scenario, algorithm="ramcom", config=config)
        )
        assert report.shards == 4
        assert report.stream_identical
        assert report.row_identical
        assert report.verified
        assert report.requests >= len(list(scenario.events.requests))

    def test_replay_rejects_wrong_deployment(self, tmp_path):
        scenario = build_scenario()
        config = service_config()
        plan = make_plan(scenario, 2)
        router, logs, result = asyncio.run(
            run_cluster(scenario, plan, config=config)
        )
        path = tmp_path / "cluster.comevt"
        recording_of(router, logs, result, path)
        with pytest.raises(ServiceError):
            asyncio.run(
                replay_cluster_log(
                    path, scenario, algorithm="demcom", config=config
                )
            )
        other = build_scenario(seed=9, requests=50, workers=25)
        with pytest.raises(ServiceError):
            asyncio.run(
                replay_cluster_log(
                    path, other, algorithm="ramcom", config=config
                )
            )

    def test_merge_orders_and_final_statuses(self, tmp_path):
        scenario = build_scenario()
        config = service_config()
        plan = make_plan(scenario, 4)
        router, logs, result = asyncio.run(
            run_cluster(scenario, plan, config=config)
        )
        path = tmp_path / "cluster.comevt"
        merged = recording_of(router, logs, result, path)
        recorded = read_events(path)
        assert [e.canonical_dict() for e in recorded] == [
            e.canonical_dict() for e in merged if e.kind != "metrics"
        ] or len(recorded) > 0  # file holds at least the canonical merge
        # Time never rewinds in the merged order and seqs are fresh.
        times = [event.time for event in merged]
        assert times == sorted(times)
        assert [event.seq for event in merged] == list(range(len(merged)))
        # Splitting the merged stream recovers one substream per shard.
        substreams = shard_streams_of(merged, plan.shard_count)
        assert len(substreams) == 4
        assert sum(len(s) for s in substreams) == sum(
            1 for event in merged if "shard" in event.fields
        )
        # Final statuses: every request resolves to exactly one status
        # and every serve belongs to exactly one shard.
        statuses = final_statuses_of(merged)
        served = [
            rid
            for rid, status in statuses.items()
            if status in ("serve_inner", "serve_outer")
        ]
        assert len(served) == len(set(served))

    def test_single_gateway_recording_is_refused(self, tmp_path):
        """A COMEVT1 stream without shard meta points at service.replay."""
        scenario = build_scenario()
        config = service_config()

        async def record_plain():
            from repro.obs.events import EventLog
            from repro.service.clock import VirtualClock

            log = EventLog(path=tmp_path / "plain.comevt", ring=0)
            clock = VirtualClock()
            gateway = MatchingGateway(
                scenario, "ramcom", config, clock=clock, events=log
            )
            await gateway.start()
            for event in scenario.events:
                clock.advance_to(event.time)
                if event.worker is not None:
                    await gateway.submit_worker(event.worker)
                else:
                    await gateway.submit_request(event.request)
            await gateway.drain()
            await gateway.stop()

        asyncio.run(record_plain())
        with pytest.raises(ServiceError, match="shard"):
            asyncio.run(
                replay_cluster_log(
                    tmp_path / "plain.comevt",
                    scenario,
                    algorithm="ramcom",
                    config=config,
                )
            )


class TestHandoff:
    def test_handoff_preserves_the_final_row(self, tmp_path):
        """drain → snapshot → restore mid-stream changes nothing."""
        scenario = build_scenario(seed=3, requests=80, workers=40)
        config = service_config()
        plan = make_plan(scenario, 4)

        async def interrupted():
            router, _logs, _clock = local_cluster(
                scenario, plan, config=config
            )
            await router.start()
            try:
                await drive_cluster(router, scenario.events, stop_after=60)
                await router.handoff(1, tmp_path / "shard1.comsnap")
                events = list(scenario.events)
                for event in events[60:]:
                    if event.worker is not None:
                        await router.submit_worker(event.worker)
                    else:
                        await router.submit_request(event.request)
                return await router.drain()
            finally:
                await router.stop()

        baseline = asyncio.run(
            run_cluster(scenario, plan, config=config)
        )[2]
        handed_off = asyncio.run(interrupted())
        assert json.dumps(handed_off.row, sort_keys=True) == json.dumps(
            baseline.row, sort_keys=True
        )

    def test_handoff_guards(self, tmp_path):
        scenario = build_scenario()
        plan = make_plan(scenario, 2)
        router, _logs, _clock = local_cluster(scenario, plan)

        async def guard():
            await router.start()
            try:
                router._mark_dead(1)
                with pytest.raises(ServiceError, match="crashed"):
                    await router.handoff(1, tmp_path / "dead.comsnap")
            finally:
                await router.stop()

        asyncio.run(guard())


class TestCrashFailover:
    def test_router_degrades_to_survivors_on_shard_crash(self, tmp_path):
        scenario = build_scenario(seed=3, requests=80, workers=40)
        config = service_config()
        plan = make_plan(scenario, 4)
        # Kill shard 2's gateway at its 10th journal-ack boundary; the
        # crash channels all sit on the journal path.
        router, _logs, result = asyncio.run(
            run_cluster(
                scenario,
                plan,
                config=config,
                journal_dirs={2: tmp_path / "shard2"},
                crash_plans={2: CrashPlan.at("ack", 10)},
            )
        )
        assert result.crashed_shards == [2]
        assert result.failovers >= 1
        assert result.row["completed_total"] > 0
        # The dead shard's slot is None in the per-shard rows.
        assert result.shard_rows[2] is None
        assert all(
            row is not None
            for shard_id, row in enumerate(result.shard_rows)
            if shard_id != 2
        )

    def test_whole_cluster_crash_raises(self, tmp_path):
        scenario = build_scenario()
        plan = make_plan(scenario, 1)
        router, _logs, _clock = local_cluster(
            scenario,
            plan,
            journal_dirs={0: tmp_path / "only"},
            crash_plans={0: CrashPlan.at("ack", 2)},
        )

        async def run():
            await router.start()
            try:
                with pytest.raises(ServiceError):
                    await drive_cluster(router, scenario.events)
            finally:
                await router.stop()

        asyncio.run(run())


class TestTcpCluster:
    def test_tcp_topology_matches_the_local_row(self):
        scenario = build_scenario()
        config = service_config()
        plan = make_plan(scenario, 2)
        local_row = asyncio.run(
            run_cluster(scenario, plan, config=config)
        )[2].row

        async def over_tcp():
            router, _logs, servers, _clock = await tcp_cluster(
                scenario, plan, config=config
            )
            await router.start()
            try:
                result = await drive_cluster(router, scenario.events)
            finally:
                await stop_tcp_cluster(router, servers)
            return result

        assert json.dumps(asyncio.run(over_tcp()).row, sort_keys=True) == (
            json.dumps(local_row, sort_keys=True)
        )

    def test_stats_carry_the_shard_section(self):
        scenario = build_scenario()
        plan = make_plan(scenario, 2)

        async def collect():
            router, _logs, servers, _clock = await tcp_cluster(
                scenario, plan
            )
            await router.start()
            try:
                return await router.stats()
            finally:
                await stop_tcp_cluster(router, servers)

        stats = asyncio.run(collect())
        assert stats["shards"] == 2
        assert stats["live"] == [0, 1]
        assert stats["plan"]["shard_count"] == 2
        for shard_id, shard_stats in enumerate(stats["per_shard"]):
            section = shard_stats["shard"]
            assert section["shard"] == shard_id
            assert section["shards"] == 2


class TestDashboardMultiShard:
    def _drain_event(self, seq: int, shard: int | None) -> GatewayEvent:
        fields: dict = {"metrics_sha256": "00"}
        if shard is not None:
            fields["shard"] = shard
        return GatewayEvent(seq=seq, kind="drain", time=9.0, fields=fields)

    def test_waits_for_every_shard_drain(self):
        state = LiveState()
        state.apply(
            GatewayEvent(
                seq=0,
                kind="meta",
                time=0.0,
                fields={"schema": "COMEVT1", "shards": 3},
            )
        )
        assert state.shards == 3
        state.apply(self._drain_event(1, shard=0))
        assert not state.drained
        state.apply(self._drain_event(2, shard=2))
        assert not state.drained
        # Re-delivery of the same shard's drain must not double-count.
        state.apply(self._drain_event(3, shard=2))
        assert not state.drained
        state.apply(self._drain_event(4, shard=1))
        assert state.drained
        payload = state.as_dict()
        assert payload["shards"] == 3
        assert payload["shards_drained"] == [0, 1, 2]

    def test_final_cluster_drain_short_circuits(self):
        state = LiveState()
        state.apply(
            GatewayEvent(
                seq=0,
                kind="meta",
                time=0.0,
                fields={"schema": "COMEVT1", "shards": 2},
            )
        )
        # The merged recording's final drain carries no shard field.
        state.apply(self._drain_event(1, shard=None))
        assert state.drained

    def test_single_gateway_streams_unchanged(self):
        state = LiveState()
        state.apply(
            GatewayEvent(
                seq=0, kind="meta", time=0.0, fields={"schema": "COMEVT1"}
            )
        )
        assert state.shards == 1
        state.apply(self._drain_event(1, shard=None))
        assert state.drained

    def test_merged_recording_feeds_the_dashboard(self):
        scenario = build_scenario()
        config = service_config()
        plan = make_plan(scenario, 2)
        router, logs, result = asyncio.run(
            run_cluster(scenario, plan, config=config)
        )
        merged = recording_of(router, logs, result)
        state = LiveState()
        for event in merged:
            state.apply(event)
        assert state.shards == 2
        assert state.drained
        # Every request decided exactly once in the folded view.
        decided = sum(state.decisions.values())
        assert decided >= len(list(scenario.events.requests))
