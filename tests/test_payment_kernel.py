"""The vectorized payment/acceptance kernel (docs/PERFORMANCE.md).

Four contracts, each pinned here:

* **Backend resolution** — ``"auto"``/``"numpy"``/``"python"`` plus the
  ``REPRO_PAYMENT_BACKEND`` override resolve predictably, and the repo
  degrades to the pure-Python backend when numpy is absent.
* **Exact equivalences** — the kernel's Eq.-4 probability table, the
  pricer's pruned quote and the below-crossover scalar delegation are
  *bit-identical* to the scalar implementations (hypothesis-driven).
* **Statistical equivalence** — vectorized estimates (pinned per-request
  streams) agree with scalar estimates within the documented tolerance
  (a few bisection tolerances ``xi * v_r``; see
  docs/PERFORMANCE.md#the-array-backend).
* **Byte identity of the python path** — golden digests pin the default
  backend's estimates, quotes, RNG stream and full simulation reports,
  so the array backend can never perturb them.

Batching is covered at both layers: ``estimate_many``/``prime_batch``
against sequential calls, and the gateway's micro-batched dispatch
against one-at-a-time submission.
"""

from __future__ import annotations

import asyncio
import hashlib
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import DemCOM, RamCOM, SimulatorConfig, payment_kernel
from repro.core.acceptance import AcceptanceEstimator
from repro.core.payment import MinimumOuterPaymentEstimator
from repro.core.pricing import MaximumExpectedRevenuePricer
from repro.errors import ConfigurationError
from repro.service import MatchingGateway
from repro.utils.rng import derive_rng

from test_perf_fastpath import _golden_report, _populated_estimator
from test_service import build_scenario, golden_row, submit_event

numpy_missing = not payment_kernel.numpy_available()
needs_numpy = pytest.mark.skipif(numpy_missing, reason="numpy not installed")


def _wide_estimator(mode: str, seed: int, extra: int = 30):
    """``_populated_estimator`` widened past the vector crossover."""
    acceptance, workers = _populated_estimator(mode)
    rng = derive_rng(seed, "kernel/extra-histories")
    scale = 1.0 if mode == "relative" else 50.0
    for index in range(extra):
        acceptance.set_history(
            f"x{index}",
            [rng.random() * scale for _ in range(1 + rng.randrange(30))],
        )
        workers.append(f"x{index}")
    return acceptance, workers


class TestBackendResolution:
    def test_explicit_python(self):
        assert payment_kernel.resolve_backend("python") == "python"

    def test_auto_matches_availability(self):
        expected = "numpy" if payment_kernel.numpy_available() else "python"
        assert payment_kernel.resolve_backend("auto") == expected

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            payment_kernel.resolve_backend("cupy")

    def test_env_overrides_argument(self, monkeypatch):
        monkeypatch.setenv(payment_kernel.ENV_BACKEND, "python")
        assert payment_kernel.resolve_backend("auto") == "python"
        estimator = MinimumOuterPaymentEstimator(
            AcceptanceEstimator(), backend="auto"
        )
        assert estimator.backend == "python"

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(payment_kernel.ENV_BACKEND, "fortran")
        with pytest.raises(ConfigurationError):
            payment_kernel.resolve_backend("python")


class TestNoNumpyDegradation:
    """The repo stays fully functional when numpy is absent."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(payment_kernel, "_np", None)

    def test_auto_degrades_to_python(self, no_numpy):
        assert not payment_kernel.numpy_available()
        assert payment_kernel.resolve_backend("auto") == "python"

    def test_explicit_numpy_is_an_error_not_a_fallback(self, no_numpy):
        with pytest.raises(ConfigurationError):
            payment_kernel.resolve_backend("numpy")

    def test_kernel_entry_points_raise_cleanly(self, no_numpy):
        with pytest.raises(ConfigurationError):
            payment_kernel.estimate_batch([], [], [], 8, 0.1, 1e-6)

    def test_auto_estimator_still_estimates(self, no_numpy):
        acceptance, workers = _populated_estimator("relative")
        estimator = MinimumOuterPaymentEstimator(acceptance, backend="auto")
        assert estimator.backend == "python"
        estimate = estimator.estimate(
            20.0, workers, derive_rng(3, "kernel/no-numpy")
        )
        assert 0.0 < estimate.payment <= 20.0 + estimator.epsilon
        assert estimator.prime_batch([(20.0, tuple(workers), "r1")]) == 0


@needs_numpy
class TestKernelPrimitives:
    def test_uniform_block_matches_kernel_generator(self):
        np = pytest.importorskip("numpy")
        for seed in (0, 1, 2**63, (1 << 64) - 1):
            block = payment_kernel.uniform_block(seed, (5, 7))
            reference = payment_kernel.kernel_generator(seed).random((5, 7))
            assert np.array_equal(block, reference)

    def test_uniform_block_out_parameter(self):
        np = pytest.importorskip("numpy")
        out = np.empty((3, 4))
        returned = payment_kernel.uniform_block(42, (3, 4), out=out)
        assert returned is out
        assert np.array_equal(out, payment_kernel.uniform_block(42, (3, 4)))

    def test_request_seed_is_stable_and_key_sensitive(self):
        seed = payment_kernel.request_seed(7, "r1")
        assert seed == payment_kernel.request_seed(7, "r1")
        assert seed != payment_kernel.request_seed(7, "r2")
        assert seed != payment_kernel.request_seed(8, "r1")

    @given(st.floats(min_value=0.01, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_bisection_depth_brackets_tolerance(self, value):
        tolerance = max(1e-6, 0.1 * value)
        depth = payment_kernel.bisection_depth(value, tolerance)
        assert value / 2.0**depth <= tolerance
        if depth:
            assert value / 2.0 ** (depth - 1) > tolerance


@needs_numpy
class TestProbabilityTableExact:
    """``acceptance_probabilities`` == scalar Eq. 4, element for element."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_matches_scalar_probability(self, case_seed):
        rng = derive_rng(case_seed, "kernel/prob-cases")
        mode = "relative" if case_seed % 2 else "absolute"
        scale = 1.0 if mode == "relative" else 50.0
        acceptance = AcceptanceEstimator(
            default_probability=rng.choice([0.0, 0.3, 0.5, 1.0]), mode=mode
        )
        workers = []
        for index in range(rng.randrange(1, 24)):
            worker_id = f"w{index}"
            if rng.random() < 0.2:
                workers.append(worker_id)  # cold: no history
                continue
            acceptance.set_history(
                worker_id,
                [rng.random() * scale for _ in range(1 + rng.randrange(20))],
            )
            workers.append(worker_id)
        value = 1.0 + 99.0 * rng.random()
        payments = [0.0, value] + [
            value * 1.2 * rng.random() for _ in range(10)
        ]
        matrix = acceptance.matrix(workers)
        table = payment_kernel.acceptance_probabilities(
            matrix, payments, value
        )
        for column, payment in enumerate(payments):
            for row, worker_id in enumerate(workers):
                assert table[row, column] == acceptance.probability(
                    payment, worker_id, value
                )


@needs_numpy
class TestQuoteExact:
    """The pruned vectorized quote is bit-identical to the scalar pricer."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_quotes_bit_identical(self, case_seed):
        mode = "relative" if case_seed % 2 else "absolute"
        acceptance, workers = _wide_estimator(mode, case_seed, extra=20)
        scalar = MaximumExpectedRevenuePricer(acceptance, backend="python")
        vector = MaximumExpectedRevenuePricer(acceptance, backend="numpy")
        pick = derive_rng(case_seed, "kernel/quote-cases")
        for _ in range(4):
            value = 5.0 + 95.0 * pick.random()
            ids = pick.sample(workers, 4 + pick.randrange(len(workers) - 4))
            expected = scalar.quote(value, ids)
            actual = vector.quote(value, ids)
            assert (
                actual.payment,
                actual.expected_revenue,
                actual.acceptance_probability,
            ) == (
                expected.payment,
                expected.expected_revenue,
                expected.acceptance_probability,
            )

    def test_all_cold_candidates(self):
        acceptance = AcceptanceEstimator()
        ids = [f"cold{i}" for i in range(8)]
        scalar = MaximumExpectedRevenuePricer(acceptance, backend="python")
        vector = MaximumExpectedRevenuePricer(acceptance, backend="numpy")
        expected = scalar.quote(30.0, ids)
        actual = vector.quote(30.0, ids)
        assert (actual.payment, actual.expected_revenue) == (
            expected.payment,
            expected.expected_revenue,
        )


@needs_numpy
class TestScalarCrossover:
    """Below ``vector_min_candidates`` the numpy backend *is* the scalar
    path — same result and the same rng stream, so small candidate sets
    cannot diverge between backends."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_small_sets_share_the_scalar_stream(self, case_seed):
        mode = "relative" if case_seed % 2 else "absolute"
        acceptance, workers = _populated_estimator(mode)
        scalar = MinimumOuterPaymentEstimator(acceptance, backend="python")
        vector = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
        assert vector.vector_min_candidates > len(workers[:8])
        rng_a = derive_rng(case_seed, "kernel/crossover")
        rng_b = derive_rng(case_seed, "kernel/crossover")
        pick = derive_rng(case_seed, "kernel/crossover-pick")
        for _ in range(3):
            value = 5.0 + 95.0 * pick.random()
            ids = pick.sample(workers, 1 + pick.randrange(8))
            a = scalar.estimate(value, ids, rng_a, key="r")
            b = vector.estimate(value, ids, rng_b, key="r")
            assert a.payment == b.payment
            assert a.rejected_instances == b.rejected_instances
        assert rng_a.getstate() == rng_b.getstate()

    def test_keyed_vector_estimates_leave_rng_untouched(self):
        acceptance, workers = _wide_estimator("relative", 5)
        vector = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
        rng = derive_rng(1, "kernel/untouched")
        before = rng.getstate()
        vector.estimate(40.0, workers, rng, key="r1")
        assert rng.getstate() == before

    def test_keyed_estimates_are_order_independent(self):
        acceptance, workers = _wide_estimator("relative", 6)
        items = [
            (20.0 + 7.0 * index, tuple(workers), f"r{index}")
            for index in range(4)
        ]

        def run(order):
            est = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
            rng = derive_rng(2, "kernel/order")
            return {
                key: est.estimate(value, ids, rng, key=key).payment
                for value, ids, key in order
            }

        assert run(items) == run(list(reversed(items)))


@needs_numpy
class TestStatisticalEquivalence:
    """Vectorized estimates track scalar estimates within the documented
    tolerance: both are (xi, eta) Monte-Carlo estimates of the same
    minimum expected payment, so they agree to a few bisection
    tolerances ``max(epsilon, xi * v_r)`` — the test allows 5.

    ``derandomize=True``: the bound is statistical, so the example set
    is pinned to keep the test deterministic run to run.
    """

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=20,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_estimates_within_documented_tolerance(self, case_seed):
        mode = "relative" if case_seed % 2 else "absolute"
        acceptance, workers = _wide_estimator(mode, case_seed)
        scalar = MinimumOuterPaymentEstimator(acceptance, backend="python")
        vector = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
        pick = derive_rng(case_seed, "kernel/stat-cases")
        value = 5.0 + 95.0 * pick.random()
        ids = pick.sample(workers, 16 + pick.randrange(len(workers) - 16))
        scalar_estimate = scalar.estimate(
            value, ids, derive_rng(case_seed, "kernel/stat-draws")
        )
        vector_estimate = vector.estimate(
            value,
            ids,
            derive_rng(case_seed, "kernel/stat-draws"),
            key=("r", case_seed),
        )
        tolerance = max(scalar.epsilon, scalar.xi * value)
        assert abs(
            scalar_estimate.payment - vector_estimate.payment
        ) <= 5 * tolerance
        assert 0.0 <= vector_estimate.payment <= value + scalar.epsilon


@needs_numpy
class TestBatchingIdentity:
    """Batched evaluation never changes values, only amortises work."""

    def _items(self, workers, *, keyed=True, mixed=False):
        pick = derive_rng(4, "kernel/batch-items")
        items = []
        for index in range(6):
            if mixed and index % 2:
                ids = tuple(pick.sample(workers, 3))  # below crossover
            else:
                ids = tuple(workers)
            key = f"r{index}" if keyed else None
            items.append((10.0 + 13.0 * pick.random(), ids, key))
        return items

    @pytest.mark.parametrize("mixed", [False, True])
    def test_estimate_many_equals_sequential(self, mixed):
        acceptance, workers = _wide_estimator("relative", 7)
        items = self._items(workers, keyed=not mixed, mixed=mixed)
        batched_estimator = MinimumOuterPaymentEstimator(
            acceptance, backend="numpy"
        )
        sequential_estimator = MinimumOuterPaymentEstimator(
            acceptance, backend="numpy"
        )
        batched = batched_estimator.estimate_many(
            items, derive_rng(9, "kernel/batch-rng")
        )
        rng = derive_rng(9, "kernel/batch-rng")
        sequential = [
            sequential_estimator.estimate(value, ids, rng, key=key)
            for value, ids, key in items
        ]
        assert [(e.payment, e.rejected_instances) for e in batched] == [
            (e.payment, e.rejected_instances) for e in sequential
        ]

    def test_empty_candidate_items_short_circuit_in_batch(self):
        acceptance, workers = _wide_estimator("relative", 8)
        estimator = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
        items = [(25.0, (), "r0"), (30.0, tuple(workers), "r1")]
        results = estimator.estimate_many(
            items, derive_rng(10, "kernel/batch-empty")
        )
        assert results[0].payment == 25.0 + estimator.epsilon
        assert results[0].rejected_instances == estimator.samples

    def test_primed_batch_is_bit_identical_and_hit(self):
        acceptance, workers = _wide_estimator("relative", 11)
        primed = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
        direct = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
        items = [(33.0, tuple(workers), "r1"), (44.0, tuple(workers), "r2")]
        assert primed.prime_batch(items) == 2
        rng = derive_rng(12, "kernel/prime")
        for value, ids, key in items:
            a = primed.estimate(value, ids, rng, key=key)
            b = direct.estimate(value, ids, rng, key=key)
            assert (a.payment, a.rejected_instances) == (
                b.payment,
                b.rejected_instances,
            )
        assert primed.prime_hits == 2

    def test_unrelated_mutation_keeps_primed_results(self):
        acceptance, workers = _wide_estimator("relative", 13)
        acceptance.set_history("bystander", [0.4, 0.6])
        estimator = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
        assert estimator.prime_batch([(33.0, tuple(workers), "r1")]) == 1
        acceptance.record_completion("bystander", 13.0, 33.0)
        estimator.estimate(
            33.0, workers, derive_rng(14, "kernel/prime-alias"), key="r1"
        )
        assert estimator.prime_hits == 1

    def test_relevant_mutation_invalidates_primed_results(self):
        acceptance, workers = _wide_estimator("relative", 15)
        estimator = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
        direct = MinimumOuterPaymentEstimator(acceptance, backend="numpy")
        assert estimator.prime_batch([(33.0, tuple(workers), "r1")]) == 1
        acceptance.record_completion(workers[0], 13.0, 33.0)
        stale = estimator.estimate(
            33.0, workers, derive_rng(16, "kernel/prime-stale"), key="r1"
        )
        fresh = direct.estimate(
            33.0, workers, derive_rng(16, "kernel/prime-stale"), key="r1"
        )
        assert estimator.prime_hits == 0
        assert stale.payment == fresh.payment

    def test_python_backend_never_primes(self):
        acceptance, workers = _populated_estimator("relative")
        estimator = MinimumOuterPaymentEstimator(acceptance, backend="python")
        assert estimator.prime_batch([(33.0, tuple(workers), "r1")]) == 0


class TestGatewayBatchingIdentity:
    """Micro-batched dispatch is observationally identical to
    one-at-a-time submission (docs/SERVICE.md#micro-batched-dispatch)."""

    @pytest.mark.parametrize("algorithm", ["demcom", "ramcom"])
    def test_batched_metrics_match_unbatched_and_golden(self, algorithm):
        scenario = build_scenario(seed=21)
        config = SimulatorConfig(
            measure_response_time=False, payment_backend="auto"
        )
        golden = golden_row(scenario, algorithm, config)

        async def replay(batch_max: int, batch_linger_ms: float) -> str:
            gateway = MatchingGateway(
                scenario=scenario,
                algorithm=algorithm,
                config=config,
                batch_max=batch_max,
                batch_linger_ms=batch_linger_ms,
            )
            await gateway.start()
            for event in scenario.events:
                await submit_event(gateway, event, clock=gateway.clock)
            await gateway.drain()
            return json.dumps(gateway.metrics_dict(), sort_keys=True)

        unbatched = asyncio.run(replay(1, 0.0))
        batched = asyncio.run(replay(8, 0.5))
        assert unbatched == batched == golden


class TestPythonPathByteIdentity:
    """Golden digests of the default (pure-Python) backend.

    These values were captured before the array backend existed; the
    kernel, the crossover dispatch and the batching layers must never
    move them.  A digest change here is a reproducibility break, not a
    test to update casually (docs/PERFORMANCE.md#the-array-backend).
    """

    ESTIMATE_GOLDENS = {
        "relative": ("5560ffd19d3c802f", "bfd6855f9ff19800"),
        "absolute": ("69661f5c64fffbdf", "d253a2fbad9ff356"),
    }
    FIRST_RELATIVE_ESTIMATE = (3.858236012923015, 0)
    QUOTE_GOLDENS = {
        "relative": "0e7fc469abeeb144",
        "absolute": "acd6a6c2deb3c10e",
    }
    FIRST_RELATIVE_QUOTE = (
        2.756739315767495,
        14.3070314984404,
        0.6206896551724138,
    )
    REPORT_GOLDENS = {
        "DemCOM": "23dac5dc6cb8682b4abd2542dfe3dbdd7bd6a410afba74d907f15478f8821560",
        "RamCOM": "58f0b91cedf7d0c4e6df7a631d583566ab7a1ac912b12b6a5f1efbfca827ad1d",
    }

    @pytest.mark.parametrize("mode", ["relative", "absolute"])
    def test_estimates_and_rng_stream_pinned(self, mode):
        acceptance, workers = _populated_estimator(mode)
        estimator = MinimumOuterPaymentEstimator(acceptance, fast_path=True)
        assert estimator.backend == "python"
        rng = derive_rng(5, "fastpath/draws")
        pick = derive_rng(5, "fastpath/calls")
        payments = []
        for _ in range(10):
            value = 5.0 + 95.0 * pick.random()
            ids = pick.sample(workers, 1 + pick.randrange(len(workers)))
            estimate = estimator.estimate(value, ids, rng)
            payments.append((estimate.payment, estimate.rejected_instances))
        if mode == "relative":
            assert payments[0] == self.FIRST_RELATIVE_ESTIMATE
        payments_digest = hashlib.sha256(
            json.dumps(payments).encode()
        ).hexdigest()[:16]
        state_digest = hashlib.sha256(
            repr(rng.getstate()).encode()
        ).hexdigest()[:16]
        assert (payments_digest, state_digest) == self.ESTIMATE_GOLDENS[mode]

    @pytest.mark.parametrize("mode", ["relative", "absolute"])
    def test_quotes_pinned(self, mode):
        acceptance, workers = _populated_estimator(mode)
        pricer = MaximumExpectedRevenuePricer(acceptance, fast_path=True)
        assert pricer.backend == "python"
        pick = derive_rng(11, "fastpath/quotes")
        quotes = []
        for _ in range(10):
            value = 5.0 + 95.0 * pick.random()
            ids = pick.sample(workers, 1 + pick.randrange(len(workers)))
            quote = pricer.quote(value, ids)
            quotes.append(
                (
                    quote.payment,
                    quote.expected_revenue,
                    quote.acceptance_probability,
                )
            )
        if mode == "relative":
            assert quotes[0] == self.FIRST_RELATIVE_QUOTE
        digest = hashlib.sha256(json.dumps(quotes).encode()).hexdigest()[:16]
        assert digest == self.QUOTE_GOLDENS[mode]

    @pytest.mark.parametrize("algorithm", [DemCOM, RamCOM])
    def test_full_simulation_reports_pinned(self, algorithm):
        report = _golden_report(algorithm, True)
        digest = hashlib.sha256(report.encode()).hexdigest()
        assert digest == self.REPORT_GOLDENS[algorithm.name]
