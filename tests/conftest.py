"""Shared fixtures and instance builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.behavior.distributions import EmpiricalDistribution, UniformDistribution
from repro.behavior.worker_model import BehaviorOracle, WorkerBehavior
from repro.core.entities import Request, Worker
from repro.core.events import EventStream
from repro.core.simulator import Scenario
from repro.geo.point import Point


def make_worker(
    worker_id: str = "w0",
    platform: str = "A",
    t: float = 0.0,
    x: float = 0.0,
    y: float = 0.0,
    radius: float = 1.0,
    shareable: bool = True,
) -> Worker:
    """A worker with compact positional defaults."""
    return Worker(worker_id, platform, t, Point(x, y), radius, shareable)


def make_request(
    request_id: str = "r0",
    platform: str = "A",
    t: float = 1.0,
    x: float = 0.0,
    y: float = 0.0,
    value: float = 10.0,
) -> Request:
    """A request with compact positional defaults."""
    return Request(request_id, platform, t, Point(x, y), value)


def make_oracle(
    workers: list[Worker],
    seed: int = 0,
    rate_low: float = 0.5,
    rate_high: float = 0.9,
    history_length: int = 30,
) -> BehaviorOracle:
    """An oracle giving every worker a uniform reservation-rate behaviour."""
    oracle = BehaviorOracle(seed=seed)
    rng = random.Random(seed)
    for worker in workers:
        history = [rng.uniform(rate_low, rate_high) for _ in range(history_length)]
        oracle.register(
            WorkerBehavior(worker.worker_id, EmpiricalDistribution(history), history)
        )
    return oracle


def make_scenario(
    workers: list[Worker],
    requests: list[Request],
    platform_ids: list[str] | None = None,
    seed: int = 0,
    **oracle_kwargs,
) -> Scenario:
    """Bundle workers/requests into a runnable scenario."""
    if platform_ids is None:
        platform_ids = sorted(
            {w.platform_id for w in workers} | {r.platform_id for r in requests}
        )
    return Scenario(
        events=EventStream.from_entities(workers, requests),
        oracle=make_oracle(workers, seed=seed, **oracle_kwargs),
        platform_ids=platform_ids,
    )


def make_fixed_rate_oracle(
    workers: list[Worker], rate: float = 0.5, seed: int = 0
) -> BehaviorOracle:
    """Every worker accepts exactly at payment rate >= ``rate``."""
    oracle = BehaviorOracle(seed=seed)
    for worker in workers:
        oracle.register(
            WorkerBehavior(
                worker.worker_id, UniformDistribution(rate, rate), [rate] * 10
            )
        )
    return oracle


@pytest.fixture
def two_platform_scenario() -> Scenario:
    """A small deterministic two-platform instance used across tests.

    Platform A: workers a0 (covers r0, r1), a1 (covers r2).
    Platform B: worker b0 (covers r1).
    Requests (all platform A): r0 (v=8), r1 (v=12), r2 (v=6).
    """
    workers = [
        make_worker("a0", "A", 0.0, 0.0, 0.0, radius=1.5),
        make_worker("a1", "A", 1.0, 5.0, 0.0, radius=1.0),
        make_worker("b0", "B", 0.5, 1.0, 0.0, radius=1.0),
    ]
    requests = [
        make_request("r0", "A", 2.0, 0.5, 0.0, value=8.0),
        make_request("r1", "A", 3.0, 1.2, 0.0, value=12.0),
        make_request("r2", "A", 4.0, 5.2, 0.0, value=6.0),
    ]
    return make_scenario(workers, requests, platform_ids=["A", "B"])
