"""Tests for points, distances and bounding boxes."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.geo import (
    BoundingBox,
    Point,
    euclidean,
    euclidean_squared,
    haversine_km,
    manhattan,
)

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_345(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == 25.0

    def test_within_boundary_inclusive(self):
        assert Point(0, 0).within(Point(0, 1), 1.0)
        assert not Point(0, 0).within(Point(0, 1.0001), 1.0)

    def test_translate(self):
        assert Point(1, 2).translate(3, -1) == Point(4, 1)

    def test_iter_and_tuple(self):
        assert tuple(Point(1, 2)) == (1.0, 2.0)
        assert Point(1, 2).as_tuple() == (1, 2)

    def test_hashable_and_frozen(self):
        p = Point(1, 2)
        assert p in {Point(1, 2)}
        with pytest.raises(AttributeError):
            p.x = 5  # type: ignore[misc]

    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-7


class TestDistances:
    def test_euclidean_consistency(self):
        a, b = Point(1, 1), Point(4, 5)
        assert euclidean(a, b) ** 2 == pytest.approx(euclidean_squared(a, b))

    def test_manhattan(self):
        assert manhattan(Point(0, 0), Point(3, 4)) == 7.0

    @given(points, points)
    def test_manhattan_dominates_euclidean(self, a, b):
        assert manhattan(a, b) >= euclidean(a, b) - 1e-9

    def test_haversine_zero(self):
        p = Point(104.06, 30.67)  # Chengdu
        assert haversine_km(p, p) == 0.0

    def test_haversine_known_pair(self):
        chengdu = Point(104.06, 30.67)
        xian = Point(108.94, 34.34)
        distance = haversine_km(chengdu, xian)
        assert 590 < distance < 640  # ~606 km

    def test_haversine_symmetry(self):
        a, b = Point(0, 0), Point(10, 10)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


class TestBoundingBox:
    def test_degenerate_raises(self):
        with pytest.raises(ConfigurationError):
            BoundingBox(1, 0, 0, 1)

    def test_square(self):
        box = BoundingBox.square(10.0)
        assert box.width == 10.0
        assert box.height == 10.0
        assert box.area == 100.0
        assert box.center == Point(5, 5)

    def test_square_nonpositive_raises(self):
        with pytest.raises(ConfigurationError):
            BoundingBox.square(0.0)

    def test_around(self):
        box = BoundingBox.around([Point(1, 2), Point(-1, 5)])
        assert box.min_x == -1 and box.max_y == 5

    def test_around_empty_raises(self):
        with pytest.raises(ConfigurationError):
            BoundingBox.around([])

    def test_contains_closed(self):
        box = BoundingBox.square(1.0)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(1, 1))
        assert not box.contains(Point(1.001, 0.5))

    def test_clamp(self):
        box = BoundingBox.square(1.0)
        assert box.clamp(Point(2, -1)) == Point(1, 0)
        assert box.clamp(Point(0.5, 0.5)) == Point(0.5, 0.5)

    def test_expand(self):
        box = BoundingBox.square(1.0).expand(0.5)
        assert box.min_x == -0.5 and box.max_x == 1.5

    def test_intersects_disk(self):
        box = BoundingBox.square(1.0)
        assert box.intersects_disk(Point(1.5, 0.5), 0.6)
        assert not box.intersects_disk(Point(3.0, 0.5), 0.6)

    @given(points)
    def test_clamped_point_inside(self, p):
        box = BoundingBox.square(7.0)
        assert box.contains(box.clamp(p))

    def test_clamp_is_nearest_point(self):
        box = BoundingBox.square(1.0)
        outside = Point(2.0, 0.5)
        clamped = box.clamp(outside)
        assert clamped == Point(1.0, 0.5)
        assert math.isclose(outside.distance_to(clamped), 1.0)
