"""Tests for result persistence and the new CLI subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import ExperimentConfig, run_city_table, run_figure5_panel
from repro.experiments.metrics import AlgorithmMetrics
from repro.experiments.reporting import metrics_to_dict, save_panel, save_table
from repro.workloads import SyntheticWorkloadConfig

TINY = ExperimentConfig(seeds=(0,))


class TestMetricsToDict:
    def test_roundtrippable_json(self):
        row = AlgorithmMetrics(
            algorithm="X",
            scenario="s",
            revenue={"A": 1.5},
            completed={"A": 3},
            acceptance_ratio=None,
        )
        payload = metrics_to_dict(row)
        text = json.dumps(payload)
        assert json.loads(text)["algorithm"] == "X"
        assert json.loads(text)["acceptance_ratio"] is None


class TestSaveTable:
    def test_writes_json(self, tmp_path):
        result = run_city_table("VII", scale=0.003, config=TINY)
        path = save_table(result, tmp_path)
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["table_id"] == "VII"
        assert len(payload["rows"]) == 4
        algorithms = {row["algorithm"] for row in payload["rows"]}
        assert algorithms == {"OFF", "TOTA", "DemCOM", "RamCOM"}

    def test_creates_directory(self, tmp_path):
        result = run_city_table("VII", scale=0.003, config=TINY)
        nested = tmp_path / "a" / "b"
        path = save_table(result, nested)
        assert path.parent == nested


class TestSavePanel:
    def test_writes_csv(self, tmp_path):
        base = SyntheticWorkloadConfig(request_count=40, worker_count=16, city_km=4.0)
        panel = run_figure5_panel(
            "radius",
            "revenue",
            values=(1.0, 2.0),
            base=base,
            config=TINY,
            algorithms=["tota"],
        )
        path = save_panel(panel, tmp_path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "radius,tota"
        assert len(lines) == 3
        assert path.name == "fig5i_revenue_vs_radius.csv"


class TestCliSubcommands:
    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity", "occupation", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Sensitivity — service_duration" in out

    def test_ablation_command(self, capsys):
        assert main(["ablation", "payment-accuracy", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Ablation" in out

    def test_table_output_flag(self, capsys, tmp_path):
        assert (
            main(
                [
                    "table",
                    "VII",
                    "--scale",
                    "0.003",
                    "--seeds",
                    "1",
                    "--output",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / "table_VII_xian-nov.json").exists()

    def test_figure_output_flag(self, capsys, tmp_path):
        assert (
            main(
                [
                    "figure",
                    "radius",
                    "acceptance",
                    "--values",
                    "1.0",
                    "--seeds",
                    "1",
                    "--output",
                    str(tmp_path),
                ]
            )
            == 0
        )
        saved = list(tmp_path.glob("*.csv"))
        assert len(saved) == 1
