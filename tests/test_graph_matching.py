"""Tests for bipartite structures and matching algorithms.

The exact solvers are cross-checked against ``scipy.optimize.
linear_sum_assignment`` (dense Hungarian), ``networkx`` (Hopcroft-Karp,
max-weight matching) and each other.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

# Cross-check baselines only; the solvers under test are pure Python and
# the no-numpy CI leg runs without either package.
np = pytest.importorskip("numpy")
linear_sum_assignment = pytest.importorskip(
    "scipy.optimize"
).linear_sum_assignment

from repro.errors import GraphError
from repro.graph import (
    BipartiteGraph,
    Dinic,
    HopcroftKarp,
    hungarian_dense,
    max_weight_matching,
)


def random_graph(
    rng: random.Random, left: int, right: int, density: float
) -> BipartiteGraph:
    graph = BipartiteGraph()
    for l in range(left):
        graph.add_left(f"L{l}")
    for r in range(right):
        graph.add_right(f"R{r}")
    for l in range(left):
        for r in range(right):
            if rng.random() < density:
                graph.add_edge(f"L{l}", f"R{r}", rng.uniform(0.1, 10.0))
    return graph


def networkx_max_weight(graph: BipartiteGraph) -> float:
    g = nx.Graph()
    for left, right, weight in graph.edges():
        g.add_edge(("L", left), ("R", right), weight=weight)
    matching = nx.max_weight_matching(g)
    return sum(g[u][v]["weight"] for u, v in matching)


class TestBipartiteGraph:
    def test_add_edge_creates_vertices(self):
        graph = BipartiteGraph()
        graph.add_edge("a", "x", 2.0)
        assert graph.left_count == 1
        assert graph.right_count == 1
        assert graph.weight("a", "x") == 2.0

    def test_edge_replacement(self):
        graph = BipartiteGraph()
        graph.add_edge("a", "x", 1.0)
        graph.add_edge("a", "x", 3.0)
        assert graph.edge_count == 1
        assert graph.weight("a", "x") == 3.0

    def test_missing_weight_is_none(self):
        graph = BipartiteGraph()
        graph.add_edge("a", "x", 1.0)
        assert graph.weight("a", "y") is None
        assert graph.weight("b", "x") is None

    def test_non_finite_weight_raises(self):
        graph = BipartiteGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "x", float("nan"))
        with pytest.raises(GraphError):
            graph.add_edge("a", "x", float("inf"))

    def test_neighbours(self):
        graph = BipartiteGraph()
        graph.add_edge("a", "x", 1.0)
        graph.add_edge("a", "y", 2.0)
        assert graph.neighbours("a") == {"x": 1.0, "y": 2.0}
        with pytest.raises(GraphError):
            graph.neighbours("nope")


class TestHungarianDense:
    def test_identity(self):
        cost = [[0.0, 1.0], [1.0, 0.0]]
        assignment, total = hungarian_dense(cost)
        assert assignment == [0, 1]
        assert total == 0.0

    def test_rectangular(self):
        cost = [[5.0, 1.0, 9.0]]
        assignment, total = hungarian_dense(cost)
        assert assignment == [1]
        assert total == 1.0

    def test_rows_exceed_columns_raises(self):
        with pytest.raises(GraphError):
            hungarian_dense([[1.0], [2.0]])

    def test_ragged_raises(self):
        with pytest.raises(GraphError):
            hungarian_dense([[1.0, 2.0], [3.0]])

    def test_empty(self):
        assert hungarian_dense([]) == ([], 0.0)

    def test_negative_costs(self):
        cost = [[-5.0, 0.0], [0.0, -5.0]]
        assignment, total = hungarian_dense(cost)
        assert total == -10.0
        assert assignment == [0, 1]

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_scipy(self, rows, extra_cols, seed):
        columns = rows + extra_cols
        rng = random.Random(seed)
        cost = [
            [round(rng.uniform(-10, 10), 4) for _ in range(columns)]
            for _ in range(rows)
        ]
        __, ours = hungarian_dense(cost)
        matrix = np.array(cost)
        row_idx, col_idx = linear_sum_assignment(matrix)
        assert ours == pytest.approx(matrix[row_idx, col_idx].sum(), abs=1e-6)

    def test_assignment_is_permutation(self):
        rng = random.Random(1)
        cost = [[rng.uniform(0, 1) for _ in range(6)] for _ in range(6)]
        assignment, __ = hungarian_dense(cost)
        assert sorted(assignment) == list(range(6))


class TestMaxWeightMatching:
    def test_empty_graph(self):
        assert max_weight_matching(BipartiteGraph()).cardinality == 0

    def test_single_edge(self):
        graph = BipartiteGraph()
        graph.add_edge("a", "x", 5.0)
        result = max_weight_matching(graph)
        assert result.pairs == {"a": "x"}
        assert result.total_weight == 5.0

    def test_prefers_heavier_edge(self):
        graph = BipartiteGraph()
        graph.add_edge("a", "x", 1.0)
        graph.add_edge("b", "x", 9.0)
        result = max_weight_matching(graph)
        assert result.pairs == {"b": "x"}

    def test_augmenting_beats_greedy(self):
        # Greedy would take a-x (10) and leave b unmatched; optimum is
        # a-y (7) + b-x (8) = 15 > 10.
        graph = BipartiteGraph()
        graph.add_edge("a", "x", 10.0)
        graph.add_edge("a", "y", 7.0)
        graph.add_edge("b", "x", 8.0)
        result = max_weight_matching(graph)
        assert result.total_weight == 15.0

    def test_skips_non_positive_edges(self):
        graph = BipartiteGraph()
        graph.add_edge("a", "x", -2.0)
        graph.add_edge("b", "y", 0.0)
        result = max_weight_matching(graph)
        assert result.cardinality == 0

    def test_leaves_vertices_unmatched_when_beneficial(self):
        # Matching "a" to x would block the much heavier b-x.
        graph = BipartiteGraph()
        graph.add_edge("a", "x", 1.0)
        graph.add_edge("b", "x", 100.0)
        graph.add_edge("a", "y", 0.5)
        result = max_weight_matching(graph)
        assert result.total_weight == 100.5

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.floats(min_value=0.1, max_value=1.0),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_networkx(self, left, right, density, seed):
        graph = random_graph(random.Random(seed), left, right, density)
        ours = max_weight_matching(graph).total_weight
        reference = networkx_max_weight(graph)
        assert ours == pytest.approx(reference, abs=1e-6)

    def test_matching_is_injective(self):
        graph = random_graph(random.Random(5), 20, 15, 0.3)
        result = max_weight_matching(graph)
        rights = list(result.pairs.values())
        assert len(rights) == len(set(rights))

    def test_right_to_left_inverse(self):
        graph = BipartiteGraph()
        graph.add_edge("a", "x", 1.0)
        result = max_weight_matching(graph)
        assert result.right_to_left() == {"x": "a"}


class TestHopcroftKarp:
    def test_simple_contention(self):
        graph = BipartiteGraph()
        graph.add_edge("r1", "w1", 1.0)
        graph.add_edge("r2", "w1", 1.0)
        assert HopcroftKarp(graph).solve().cardinality == 1

    def test_perfect_matching(self):
        graph = BipartiteGraph()
        for i in range(4):
            graph.add_edge(f"r{i}", f"w{i}", 1.0)
            graph.add_edge(f"r{i}", f"w{(i + 1) % 4}", 1.0)
        assert HopcroftKarp(graph).solve().cardinality == 4

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10),
        st.floats(min_value=0.1, max_value=1.0),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_networkx_cardinality(self, left, right, density, seed):
        graph = random_graph(random.Random(seed), left, right, density)
        g = nx.Graph()
        left_nodes = set()
        for l, r, __ in graph.edges():
            g.add_edge(("L", l), ("R", r))
            left_nodes.add(("L", l))
        expected = (
            len(nx.bipartite.maximum_matching(g, top_nodes=left_nodes)) // 2
            if g.number_of_edges()
            else 0
        )
        assert HopcroftKarp(graph).solve().cardinality == expected


class TestDinic:
    def test_simple_path(self):
        net = Dinic()
        net.add_edge("s", "a", 1.0)
        net.add_edge("a", "t", 1.0)
        assert net.max_flow("s", "t") == 1.0

    def test_bottleneck(self):
        net = Dinic()
        net.add_edge("s", "a", 10.0)
        net.add_edge("a", "t", 3.0)
        assert net.max_flow("s", "t") == 3.0

    def test_parallel_paths(self):
        net = Dinic()
        for mid in ("a", "b", "c"):
            net.add_edge("s", mid, 1.0)
            net.add_edge(mid, "t", 1.0)
        assert net.max_flow("s", "t") == 3.0

    def test_source_equals_sink_raises(self):
        with pytest.raises(GraphError):
            Dinic().max_flow("s", "s")

    def test_negative_capacity_raises(self):
        with pytest.raises(GraphError):
            Dinic().add_edge("a", "b", -1.0)

    def test_disconnected(self):
        net = Dinic()
        net.add_edge("s", "a", 1.0)
        net.add_edge("b", "t", 1.0)
        assert net.max_flow("s", "t") == 0.0

    def test_flow_on(self):
        net = Dinic()
        net.add_edge("s", "a", 2.0)
        net.add_edge("a", "t", 2.0)
        net.max_flow("s", "t")
        assert net.flow_on("s", "a") == 2.0

    def test_matches_hopcroft_karp_on_unit_bipartite(self):
        rng = random.Random(11)
        graph = random_graph(rng, 12, 12, 0.25)
        net = Dinic()
        for l, r, __ in graph.edges():
            net.add_edge(("L", l), ("R", r), 1.0)
        for l in graph.left_keys():
            net.add_edge("s", ("L", l), 1.0)
        for r in graph.right_keys():
            net.add_edge(("R", r), "t", 1.0)
        assert net.max_flow("s", "t") == HopcroftKarp(graph).solve().cardinality

    def test_matches_networkx_maxflow(self):
        rng = random.Random(2)
        nodes = [f"n{i}" for i in range(8)]
        net = Dinic()
        g = nx.DiGraph()
        for __ in range(20):
            u, v = rng.sample(nodes, 2)
            capacity = rng.uniform(0.5, 4.0)
            net.add_edge(u, v, capacity)
            if g.has_edge(u, v):
                g[u][v]["capacity"] += capacity
            else:
                g.add_edge(u, v, capacity=capacity)
        g.add_node("n0")
        g.add_node("n7")
        expected = nx.maximum_flow_value(g, "n0", "n7") if g.has_node("n0") else 0.0
        assert net.max_flow("n0", "n7") == pytest.approx(expected)


class TestAuctionMatching:
    def test_invalid_epsilon(self):
        from repro.graph import auction_matching

        with pytest.raises(GraphError):
            auction_matching(BipartiteGraph(), epsilon=0.0)

    def test_empty(self):
        from repro.graph import auction_matching

        assert auction_matching(BipartiteGraph()).cardinality == 0

    def test_simple_optimum(self):
        from repro.graph import auction_matching

        graph = BipartiteGraph()
        graph.add_edge("a", "x", 10.0)
        graph.add_edge("a", "y", 7.0)
        graph.add_edge("b", "x", 8.0)
        result = auction_matching(graph)
        assert result.total_weight == pytest.approx(15.0, abs=1e-4)

    def test_skips_non_positive_weights(self):
        from repro.graph import auction_matching

        graph = BipartiteGraph()
        graph.add_edge("a", "x", -1.0)
        assert auction_matching(graph).cardinality == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.floats(min_value=0.1, max_value=1.0),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_hungarian(self, left, right, density, seed):
        from repro.graph import auction_matching

        graph = random_graph(random.Random(seed), left, right, density)
        ours = auction_matching(graph, epsilon=1e-4).total_weight
        expected = max_weight_matching(graph).total_weight
        # epsilon-complementary slackness: within left * epsilon of optimal.
        assert ours == pytest.approx(expected, abs=max(1, left) * 1e-4 + 1e-9)

    def test_injective(self):
        from repro.graph import auction_matching

        graph = random_graph(random.Random(12), 15, 10, 0.4)
        result = auction_matching(graph)
        rights = list(result.pairs.values())
        assert len(rights) == len(set(rights))

    def test_near_tie_weights_terminate(self):
        """Epsilon scaling keeps near-tie instances fast (the naive auction
        crawls by epsilon here)."""
        from repro.graph import auction_matching

        graph = BipartiteGraph()
        for i in range(10):
            for j in range(10):
                graph.add_edge(i, j, 5.0 + (i * 10 + j) * 1e-9)
        result = auction_matching(graph, epsilon=1e-3)
        assert result.cardinality == 10
        assert result.total_weight == pytest.approx(50.0, abs=0.05)
