"""Tests for scenario JSON serialization."""

from __future__ import annotations

import pytest

from repro.baselines import TOTA
from repro.core import DemCOM, Simulator, SimulatorConfig
from repro.errors import WorkloadError
from repro.workloads import (
    SyntheticWorkload,
    SyntheticWorkloadConfig,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


def small_scenario(seed: int = 2):
    return SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=60,
            worker_count=20,
            city_km=4.0,
            shift_seconds=10 * 3600,
        )
    ).build(seed=seed)


class TestRoundTrip:
    def test_entities_preserved(self, tmp_path):
        original = small_scenario()
        path = save_scenario(original, tmp_path / "scenario.json")
        restored = load_scenario(path)
        assert restored.name == original.name
        assert restored.platform_ids == original.platform_ids
        assert restored.value_upper_bound == original.value_upper_bound
        assert [w.worker_id for w in restored.events.workers] == [
            w.worker_id for w in original.events.workers
        ]
        assert [r.value for r in restored.events.requests] == [
            r.value for r in original.events.requests
        ]
        first = restored.events.workers[0]
        assert first.departure_time == original.events.workers[0].departure_time

    def test_behaviour_preserved(self):
        original = small_scenario()
        restored = scenario_from_dict(scenario_to_dict(original))
        worker_id = original.events.workers[0].worker_id
        assert restored.oracle.history_of(worker_id) == original.oracle.history_of(
            worker_id
        )
        # Identical oracle seed + histories -> identical reservation draws.
        assert restored.oracle.reservation(worker_id, "r-test") == pytest.approx(
            original.oracle.reservation(worker_id, "r-test")
        )

    @pytest.mark.parametrize("factory", [TOTA, DemCOM])
    def test_simulation_identical_after_round_trip(self, factory, tmp_path):
        original = small_scenario()
        restored = load_scenario(save_scenario(original, tmp_path / "s.json"))
        config = SimulatorConfig(
            seed=3,
            worker_reentry=True,
            service_duration=1800.0,
            measure_response_time=False,
        )
        a = Simulator(config).run(original, factory)
        b = Simulator(config).run(restored, factory)
        assert a.total_revenue == b.total_revenue
        assert a.total_completed == b.total_completed
        assert [r.worker.worker_id for r in a.all_records()] == [
            r.worker.worker_id for r in b.all_records()
        ]


class TestValidation:
    def test_wrong_format_version(self):
        payload = scenario_to_dict(small_scenario())
        payload["format"] = 99
        with pytest.raises(WorkloadError):
            scenario_from_dict(payload)

    def test_non_empirical_behaviour_rejected(self):
        from repro.behavior import BehaviorOracle, UniformDistribution, WorkerBehavior
        from repro.core.events import EventStream
        from repro.core.simulator import Scenario

        from conftest import make_request, make_worker

        worker = make_worker("w", "A")
        oracle = BehaviorOracle(seed=0)
        oracle.register(WorkerBehavior("w", UniformDistribution(0.3, 0.7), [0.5]))
        scenario = Scenario(
            events=EventStream.from_entities([worker], [make_request(t=1.0)]),
            oracle=oracle,
            platform_ids=["A"],
        )
        with pytest.raises(WorkloadError):
            scenario_to_dict(scenario)

    def test_unregistered_worker_rejected(self):
        from conftest import make_oracle, make_request, make_worker
        from repro.core.events import EventStream
        from repro.core.simulator import Scenario

        registered = make_worker("known", "A")
        ghost = make_worker("ghost", "A", t=1.0)
        scenario = Scenario(
            events=EventStream.from_entities(
                [registered, ghost], [make_request(t=2.0)]
            ),
            oracle=make_oracle([registered]),
            platform_ids=["A"],
        )
        with pytest.raises(WorkloadError):
            scenario_to_dict(scenario)
