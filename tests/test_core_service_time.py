"""Tests for the service-time models."""

from __future__ import annotations

import pytest

from repro.baselines import TOTA
from repro.core import (
    ConstantServiceTime,
    Simulator,
    SimulatorConfig,
    TravelAwareServiceTime,
)
from repro.errors import ConfigurationError

from conftest import make_request, make_scenario, make_worker


class TestConstantServiceTime:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantServiceTime(0.0)

    def test_constant(self):
        model = ConstantServiceTime(1200.0)
        assert model.duration(make_worker(), make_request(), seed=0) == 1200.0


class TestTravelAwareServiceTime:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TravelAwareServiceTime(speed_kmh=0.0)
        with pytest.raises(ConfigurationError):
            TravelAwareServiceTime(minimum_seconds=0.0)

    def test_minimum_floor(self):
        model = TravelAwareServiceTime(
            seconds_per_value=0.0, jitter=0.0, minimum_seconds=300.0
        )
        worker = make_worker(x=0.0)
        request = make_request(x=0.0, value=1.0)
        assert model.duration(worker, request, seed=0) == 300.0

    def test_pickup_travel_scales_with_distance(self):
        model = TravelAwareServiceTime(
            speed_kmh=30.0, seconds_per_value=0.0, jitter=0.0, minimum_seconds=1.0
        )
        worker = make_worker(x=0.0, radius=10.0)
        near = make_request(x=0.5)
        far = make_request(x=2.0)
        assert model.duration(worker, far, 0) == pytest.approx(
            4 * model.duration(worker, near, 0)
        )

    def test_trip_scales_with_value(self):
        model = TravelAwareServiceTime(
            seconds_per_value=60.0, jitter=0.0, minimum_seconds=1.0
        )
        worker = make_worker(x=0.0)
        cheap = make_request(x=0.0, value=10.0)
        rich = make_request("r2", x=0.0, value=30.0)
        assert model.duration(worker, rich, 0) == pytest.approx(
            3 * model.duration(worker, cheap, 0)
        )

    def test_jitter_deterministic_per_pair(self):
        model = TravelAwareServiceTime(jitter=0.2)
        worker = make_worker()
        request = make_request()
        assert model.duration(worker, request, 7) == model.duration(
            worker, request, 7
        )
        assert model.duration(worker, request, 7) != model.duration(
            worker, request, 8
        )


class TestSimulatorIntegration:
    def test_model_controls_reentry_timing(self):
        workers = [make_worker("w", "A", 0.0)]
        requests = [
            make_request("r1", "A", 10.0, value=10.0),
            # With 60 s/value the worker is busy until ~610; a request at
            # 300 must be rejected, one at 700 served.
            make_request("r2", "A", 300.0),
            make_request("r3", "A", 700.0),
        ]
        scenario = make_scenario(workers, requests)
        model = TravelAwareServiceTime(
            seconds_per_value=60.0, jitter=0.0, minimum_seconds=1.0
        )
        result = Simulator(
            SimulatorConfig(
                worker_reentry=True,
                service_model=model,
                measure_response_time=False,
            )
        ).run(scenario, TOTA)
        served = {r.request.request_id for r in result.all_records()}
        assert served == {"r1", "r3"}

    def test_constant_model_matches_plain_duration(self):
        workers = [make_worker("w", "A", 0.0)]
        requests = [make_request(f"r{i}", "A", 100.0 * (i + 1)) for i in range(4)]
        scenario = make_scenario(workers, requests)
        plain = Simulator(
            SimulatorConfig(
                worker_reentry=True,
                service_duration=150.0,
                measure_response_time=False,
            )
        ).run(scenario, TOTA)
        modelled = Simulator(
            SimulatorConfig(
                worker_reentry=True,
                service_model=ConstantServiceTime(150.0),
                measure_response_time=False,
            )
        ).run(scenario, TOTA)
        assert plain.total_completed == modelled.total_completed
        assert plain.total_revenue == modelled.total_revenue
