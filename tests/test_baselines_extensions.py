"""Tests for the extension baselines: GeoCrowd max-flow assignment and
batch-based matching (defer/flush protocol)."""

from __future__ import annotations

import pytest

from repro.baselines import BatchMatching, TOTA, solve_geocrowd
from repro.baselines.offline import solve_offline
from repro.core import Simulator, SimulatorConfig, validate_matching
from repro.core.base import Decision, DecisionKind, OnlineAlgorithm
from repro.errors import ConfigurationError, SimulationError
from repro.graph.hopcroft_karp import HopcroftKarp
from repro.graph.bipartite import BipartiteGraph

from conftest import make_request, make_scenario, make_worker


class TestGeoCrowd:
    def test_invalid_max_tasks(self):
        scenario = make_scenario([make_worker()], [make_request()])
        with pytest.raises(ConfigurationError):
            solve_geocrowd(scenario, max_tasks_per_worker=0)

    def test_empty(self):
        scenario = make_scenario([], [], platform_ids=["A"])
        solution = solve_geocrowd(scenario)
        assert solution.assigned_tasks == 0
        assert solution.assignments == {}

    def test_unit_capacity_matches_hopcroft_karp(self):
        workers = [
            make_worker(f"w{i}", "A", 0.0, x=i * 0.5, radius=1.0) for i in range(6)
        ]
        requests = [
            make_request(f"r{i}", "A", 1.0, x=i * 0.7, value=5.0) for i in range(8)
        ]
        scenario = make_scenario(workers, requests)
        solution = solve_geocrowd(scenario, max_tasks_per_worker=1)

        graph = BipartiteGraph()
        for request in requests:
            graph.add_left(request.request_id)
            for worker in workers:
                if worker.arrived_before(request) and worker.can_reach(request):
                    graph.add_edge(request.request_id, worker.worker_id, 1.0)
        expected = HopcroftKarp(graph).solve().cardinality
        assert solution.assigned_tasks == expected

    def test_capacity_multiplies_throughput(self):
        workers = [make_worker("w", "A", 0.0, radius=2.0)]
        requests = [
            make_request(f"r{i}", "A", 1.0 + i, x=0.3 * i) for i in range(4)
        ]
        scenario = make_scenario(workers, requests)
        assert solve_geocrowd(scenario, max_tasks_per_worker=1).assigned_tasks == 1
        assert solve_geocrowd(scenario, max_tasks_per_worker=3).assigned_tasks == 3

    def test_assignments_respect_capacity(self):
        workers = [make_worker(f"w{i}", "A", 0.0, x=i * 0.2, radius=3.0) for i in range(2)]
        requests = [make_request(f"r{i}", "A", 1.0, x=0.1 * i) for i in range(10)]
        scenario = make_scenario(workers, requests)
        solution = solve_geocrowd(scenario, max_tasks_per_worker=3)
        assert solution.assigned_tasks == 6
        assert all(
            load <= 3 for load in solution.completed_per_worker.values()
        )

    def test_cooperation_toggle(self):
        workers = [make_worker("b", "B", 0.0, x=0.1)]
        requests = [make_request("r", "A", 1.0)]
        scenario = make_scenario(workers, requests, platform_ids=["A", "B"])
        assert solve_geocrowd(scenario, include_cooperation=True).assigned_tasks == 1
        assert solve_geocrowd(scenario, include_cooperation=False).assigned_tasks == 0

    def test_shift_respected(self):
        from repro.core.entities import Worker
        from repro.geo.point import Point

        worker = Worker("w", "A", 0.0, Point(0, 0), 1.0, departure_time=5.0)
        requests = [make_request("r", "A", 10.0)]
        scenario = make_scenario([worker], requests)
        assert solve_geocrowd(scenario).assigned_tasks == 0

    def test_cardinality_at_least_revenue_optimum_cardinality(self):
        """GeoCrowd maximizes count; OFF maximizes value.  GeoCrowd's count
        is an upper bound on any matching's count under equal capacity."""
        import random

        rng = random.Random(3)
        workers = [
            make_worker(
                f"w{i}", "A", rng.uniform(0, 3), rng.uniform(0, 3),
                rng.uniform(0, 3), radius=1.0,
            )
            for i in range(8)
        ]
        requests = [
            make_request(
                f"r{i}", "A", rng.uniform(3, 9), rng.uniform(0, 3),
                rng.uniform(0, 3), value=rng.uniform(1, 30),
            )
            for i in range(15)
        ]
        scenario = make_scenario(workers, requests)
        geocrowd = solve_geocrowd(scenario, max_tasks_per_worker=1)
        off = solve_offline(scenario)
        assert geocrowd.assigned_tasks >= off.total_completed
        assert off.total_revenue >= geocrowd.total_value - 1e9 * 0  # sanity type check


class TestBatchMatching:
    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            BatchMatching(delta_seconds=-1.0)

    def test_registered(self):
        from repro.core.registry import make_algorithm

        assert make_algorithm("batch").name == "Batch"

    def test_batch_beats_greedy_on_crossing_pairs(self):
        """The classic batching win: two requests, two workers, where
        greedy's first match blocks the valuable second request."""
        workers = [
            make_worker("w1", "A", 0.0, 0.0, 0.0, radius=1.0),
            make_worker("w2", "A", 0.0, 2.0, 0.0, radius=1.0),
        ]
        # r1 (cheap) reachable by both; r2 (rich) only by w1.
        requests = [
            make_request("r1", "A", 1.0, 1.0, 0.0, value=2.0),
            make_request("r2", "A", 2.0, 0.5, 0.0, value=20.0),
        ]
        # Make both reachable: w1 covers r1 (1.0) and r2 (0.5); w2 covers r1.
        scenario = make_scenario(workers, requests)
        config = SimulatorConfig(seed=0, measure_response_time=False)

        greedy = Simulator(config).run(scenario, TOTA)  # nearest-first
        batch = Simulator(config).run(
            scenario, lambda: BatchMatching(delta_seconds=10.0, cooperate=False)
        )
        # TOTA assigns w1 (nearest to r1) then cannot serve r2 with w2.
        assert greedy.total_revenue == 2.0
        # The batch sees both and assigns r1->w2, r2->w1.
        assert batch.total_revenue == 22.0
        validate_matching(batch.all_records())

    def test_all_requests_resolved(self):
        scenario = make_scenario(
            [make_worker("w", "A", 0.0)],
            [make_request(f"r{i}", "A", float(i + 1)) for i in range(5)],
        )
        result = Simulator(
            SimulatorConfig(seed=0, measure_response_time=False)
        ).run(scenario, lambda: BatchMatching(delta_seconds=100.0))
        assert result.total_completed + result.total_rejected == 5

    def test_constraints_hold(self):
        from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=120, worker_count=40, city_km=5.0)
        ).build(seed=1)
        result = Simulator(
            SimulatorConfig(seed=0, measure_response_time=False)
        ).run(scenario, lambda: BatchMatching(delta_seconds=300.0))
        validate_matching(result.all_records())

    def test_zero_delta_still_works(self):
        scenario = make_scenario(
            [make_worker("w", "A", 0.0)], [make_request("r", "A", 1.0)]
        )
        result = Simulator(
            SimulatorConfig(seed=0, measure_response_time=False)
        ).run(scenario, lambda: BatchMatching(delta_seconds=0.0))
        assert result.total_completed == 1


class TestDeferProtocol:
    def test_flush_may_not_redefer(self):
        class Redefer(OnlineAlgorithm):
            name = "redefer"

            def decide(self, request, context):
                self._request = request
                return Decision.defer()

            def flush(self, time, context):
                if hasattr(self, "_request"):
                    request, self._stash = self._request, None
                    del self._request
                    return [(request, Decision.defer())]
                return []

        scenario = make_scenario(
            [make_worker("w", "A", 0.0)],
            [make_request("r1", "A", 1.0), make_request("r2", "A", 2.0)],
        )
        with pytest.raises(SimulationError):
            Simulator(SimulatorConfig(measure_response_time=False)).run(
                scenario, Redefer
            )

    def test_flush_of_unknown_request_rejected(self):
        class Fabricator(OnlineAlgorithm):
            name = "fabricator"

            def decide(self, request, context):
                return Decision.reject()

            def flush(self, time, context):
                ghost = make_request("ghost", "A", 0.5)
                return [(ghost, Decision.reject())]

        scenario = make_scenario(
            [make_worker("w", "A", 0.0)], [make_request("r", "A", 1.0)]
        )
        with pytest.raises(SimulationError):
            Simulator(SimulatorConfig(measure_response_time=False)).run(
                scenario, Fabricator
            )

    def test_unflushed_deferrals_auto_rejected(self):
        class ForeverDefer(OnlineAlgorithm):
            name = "forever"

            def decide(self, request, context):
                return Decision.defer()

        scenario = make_scenario(
            [make_worker("w", "A", 0.0)],
            [make_request(f"r{i}", "A", float(i + 1)) for i in range(3)],
        )
        result = Simulator(SimulatorConfig(measure_response_time=False)).run(
            scenario, ForeverDefer
        )
        assert result.total_rejected == 3
        assert result.total_completed == 0

    def test_decision_kind_defer_constructor(self):
        assert Decision.defer().kind is DecisionKind.DEFER
