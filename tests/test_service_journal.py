"""Crash-safety tests: the ``COMWAL1`` journal, recovery, and the soak.

The anchor property extends PR 5's golden equivalence through process
death: a trace replayed through a *journaled* gateway that is killed at
**any** kill-point boundary (lost append, torn tail, checkpoint death,
swallowed ack) and recovered from checkpoint + journal suffix produces a
metrics row byte-identical to an uninterrupted ``Simulator.run`` — for
DemCOM and RamCOM, in-process and over TCP.
"""

from __future__ import annotations

import asyncio
import json
import shutil
from pathlib import Path

import pytest

from repro.core import Simulator, SimulatorConfig
from repro.core.events import EventKind
from repro.core.registry import algorithm_factory
from repro.errors import ConfigurationError, InducedCrash, JournalError, ServiceError
from repro.experiments.metrics import AlgorithmMetrics
from repro.experiments.reporting import metrics_to_dict
from repro.faults import CRASH_CHANNELS, CrashInjector, CrashPlan, RetryPolicy
from repro.service import (
    GatewayClient,
    Journal,
    JournalConfig,
    MatchingGateway,
    MatchingServer,
    SoakConfig,
    drive_trace,
    recover_gateway,
    run_soak,
    scan_journal,
    write_snapshot,
)
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

from conftest import make_request, make_scenario, make_worker


def build_scenario(seed: int = 13, requests: int = 8, workers: int = 4):
    return SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=requests, worker_count=workers, horizon_seconds=3600.0
        )
    ).build(seed=seed)


def service_config() -> SimulatorConfig:
    return SimulatorConfig(measure_response_time=False)


def golden_row(scenario, algorithm: str, config: SimulatorConfig) -> str:
    result = Simulator(config).run(scenario, algorithm_factory(algorithm))
    return json.dumps(
        metrics_to_dict(AlgorithmMetrics.from_simulation(result)), sort_keys=True
    )


#: Small knobs so short traces cross several fsync and checkpoint
#: boundaries (the property test needs every channel to have kill points).
JOURNAL_KWARGS = {"fsync": "interval", "fsync_interval": 4, "checkpoint_every": 6}


def journal_config(directory) -> JournalConfig:
    return JournalConfig(directory=directory, **JOURNAL_KWARGS)


def _induced(gateway: MatchingGateway, error: Exception) -> bool:
    """True when ``error`` is the armed kill point making itself felt.

    A kill point that fires *after* an acknowledgement went out (e.g.
    inside the post-batch checkpoint) kills the loop asynchronously; the
    next call then sees ``ServiceError("gateway crashed")`` instead of
    the ``InducedCrash`` itself — just like a real client noticing a dead
    process one call late.
    """
    return isinstance(error, InducedCrash) or isinstance(
        gateway.crash_error, InducedCrash
    )


async def drive_with_recovery(
    scenario, algorithm, config, directory, plan: CrashPlan
) -> tuple[MatchingGateway, int]:
    """Replay the full trace with one armed kill point, recovering on crash.

    Models the documented operator loop: the process dies mid-call, a
    supervisor recovers from disk, and the client retries the in-flight
    arrival (request-ID dedup absorbs it if it was journaled).  Returns
    the drained gateway and the number of induced crashes (0 when the
    kill point's index lies beyond the channel's last boundary).
    """
    directory = Path(directory)
    events = list(scenario.events)
    crashes = 0
    try:
        gateway = MatchingGateway(
            scenario=scenario,
            algorithm=algorithm,
            config=config,
            journal=journal_config(directory),
            crash_plan=plan,
        )
    except InducedCrash:
        # Died during journal bootstrap.  If the anchoring checkpoint
        # never landed, nothing was ever acknowledged and the documented
        # operator action (wipe, start fresh) is lossless.
        crashes += 1
        try:
            gateway, __ = recover_gateway(directory, **JOURNAL_KWARGS)
        except ServiceError:
            shutil.rmtree(directory)
            directory.mkdir()
            gateway = MatchingGateway(
                scenario=scenario,
                algorithm=algorithm,
                config=config,
                journal=journal_config(directory),
            )
    await gateway.start()
    index = 0
    while index < len(events):
        event = events[index]
        gateway.clock.advance_to(event.time)
        try:
            if event.kind is EventKind.WORKER:
                await gateway.submit_worker(event.worker)
            else:
                await gateway.submit_request(event.request)
        except (InducedCrash, ServiceError) as error:
            if not _induced(gateway, error):
                raise
            crashes += 1
            gateway, __ = recover_gateway(directory, **JOURNAL_KWARGS)
            await gateway.start()
            continue  # retry the in-flight arrival
        index += 1
    try:
        await gateway.drain()
    except (InducedCrash, ServiceError) as error:
        # Finalize appends resolution records, so a late kill point can
        # fire mid-drain; recovery rolls back to the replayed arrivals
        # and a second drain finalizes deterministically.
        if not _induced(gateway, error):
            raise
        crashes += 1
        gateway, __ = recover_gateway(directory, **JOURNAL_KWARGS)
        await gateway.start()
        await gateway.drain()
    return gateway, crashes


class TestJournalFile:
    def test_append_commit_scan_round_trip(self, tmp_path):
        path = tmp_path / "events.walog"
        journal = Journal.create(path)
        assert journal.append("meta", format=1, algorithm="RamCOM") == 0
        assert journal.append_worker_ref("w0") == 1
        assert (
            journal.append_request_ref("r0", "serve_inner", "w0", 12.5) == 2
        )
        journal.commit()
        journal.close()
        records = scan_journal(path)
        assert [record.seq for record in records] == [0, 1, 2]
        assert [record.kind for record in records] == [
            "meta",
            "worker",
            "request",
        ]
        assert records[1].fields == {"ref": "w0"}
        assert records[2].fields["outcome"] == {
            "status": "serve_inner",
            "worker_id": "w0",
            "payment": 12.5,
        }

    def test_ref_fast_paths_encode_byte_identically(self, tmp_path):
        """The hand-formatted hot-path encoders must produce the exact
        bytes the generic ``json.dumps`` path would."""
        generic = Journal.create(tmp_path / "generic.walog")
        generic.append("worker", ref="w012")
        generic.append(
            "request",
            ref="r1",
            outcome={
                "status": "serve_outer",
                "worker_id": "w3",
                "payment": 13.734208101,
            },
        )
        generic.append(
            "request",
            ref="r2",
            outcome={"status": "reject", "worker_id": None, "payment": 0.0},
        )
        generic.commit()
        generic.close()
        fast = Journal.create(tmp_path / "fast.walog")
        fast.append_worker_ref("w012")
        fast.append_request_ref("r1", "serve_outer", "w3", 13.734208101)
        fast.append_request_ref("r2", "reject", None, 0.0)
        fast.commit()
        fast.close()
        assert (tmp_path / "fast.walog").read_bytes() == (
            tmp_path / "generic.walog"
        ).read_bytes()

    def test_ref_fast_paths_fall_back_on_unfriendly_values(self, tmp_path):
        path = tmp_path / "events.walog"
        journal = Journal.create(path)
        journal.append_worker_ref('we"ird\\id')
        journal.append_request_ref("r0", "reject", None, float("inf"))
        journal.commit()
        journal.close()
        records = scan_journal(path)
        assert records[0].fields == {"ref": 'we"ird\\id'}
        assert records[1].fields["outcome"]["payment"] == float("inf")

    def test_append_is_not_durable_until_commit(self, tmp_path):
        path = tmp_path / "events.walog"
        journal = Journal.create(path)
        journal.append("worker", ref="w0")
        assert scan_journal(path) == []  # buffered, not yet written
        journal.commit()
        assert len(scan_journal(path)) == 1
        journal.close()

    def test_open_truncates_torn_tail_and_appends_after_it(self, tmp_path):
        path = tmp_path / "events.walog"
        journal = Journal.create(path)
        journal.append("worker", ref="w0")
        journal.commit()
        journal.close()
        intact = path.read_bytes()
        path.write_bytes(intact + b"\x00\x00\x00\x40AB")  # partial frame
        reopened, records = Journal.open(path)
        assert reopened.torn_bytes_dropped == 6
        assert [record.seq for record in records] == [0]
        reopened.append("worker", ref="w1")
        reopened.commit()
        reopened.close()
        assert [record.seq for record in scan_journal(path)] == [0, 1]

    def test_mid_file_corruption_is_not_a_torn_tail(self, tmp_path):
        path = tmp_path / "events.walog"
        journal = Journal.create(path)
        journal.append("worker", ref="w0")
        journal.append("worker", ref="w1")
        journal.commit()
        journal.close()
        blob = bytearray(path.read_bytes())
        blob[20] ^= 0xFF  # flip a byte inside record 0's payload
        path.write_bytes(bytes(blob))
        with pytest.raises(JournalError, match="mid-file corruption"):
            scan_journal(path)

    def test_foreign_file_and_clobber_are_rejected(self, tmp_path):
        path = tmp_path / "events.walog"
        path.write_bytes(b"not a journal at all\n")
        with pytest.raises(JournalError, match="not a COMWAL1 journal"):
            scan_journal(path)
        with pytest.raises(JournalError, match="already exists"):
            Journal.create(path)

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = Journal.create(tmp_path / "events.walog")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append("worker", ref="w0")
        with pytest.raises(JournalError, match="closed"):
            journal.append_worker_ref("w0")

    def test_close_flushes_buffered_records(self, tmp_path):
        # The journal may run ahead of acknowledgements, never behind:
        # closing with a dirty buffer writes it out.
        path = tmp_path / "events.walog"
        journal = Journal.create(path)
        journal.append("worker", ref="w0")
        journal.close()
        assert len(scan_journal(path)) == 1

    def test_fsync_always_round_trip(self, tmp_path):
        path = tmp_path / "events.walog"
        journal = Journal.create(path, fsync="always")
        journal.append("worker", ref="w0")
        journal.commit()
        journal.close()
        assert len(scan_journal(path)) == 1

    def test_config_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JournalConfig(directory=tmp_path, fsync="sometimes")
        with pytest.raises(ConfigurationError):
            JournalConfig(directory=tmp_path, fsync_interval=0)
        with pytest.raises(ConfigurationError):
            JournalConfig(directory=tmp_path, checkpoint_every=-1)


class TestCrashPlan:
    def test_unknown_channel_and_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashPlan.at("power_cord", 0)
        with pytest.raises(ConfigurationError):
            CrashPlan.at("ack", -1)

    def test_injector_fires_exactly_at_its_index(self):
        injector = CrashInjector(CrashPlan.at("ack", 2))
        assert injector.active
        injector.fire("ack")
        injector.fire("journal_append")  # independent channel counters
        assert not injector.fires_next("ack")
        injector.fire("ack")
        assert injector.fires_next("ack")
        with pytest.raises(InducedCrash):
            injector.fire("ack")
        injector.fire("ack")  # past the kill point: inert again

    def test_zero_plan_is_inert(self):
        injector = CrashInjector(None)
        assert not injector.active
        for _ in range(100):
            injector.fire("ack")


class TestCrashRecoveryEveryBoundary:
    """Satellite #3: kill the gateway at *every* boundary of every channel
    on a short trace; recovery must be byte-identical every single time."""

    #: Safety cap on boundary enumeration (a short trace has far fewer).
    _CAP = 80

    @pytest.mark.parametrize("algorithm", ["demcom", "ramcom"])
    @pytest.mark.parametrize("channel", CRASH_CHANNELS)
    def test_byte_identical_recovery_at_every_boundary(
        self, tmp_path, algorithm, channel
    ):
        scenario = build_scenario()
        config = service_config()
        golden = golden_row(scenario, algorithm, config)
        events = list(scenario.events)
        boundaries = 0
        for index in range(self._CAP):
            directory = tmp_path / f"{channel}-{index}"
            directory.mkdir()
            gateway, crashes = asyncio.run(
                drive_with_recovery(
                    scenario,
                    algorithm,
                    config,
                    directory,
                    CrashPlan.at(channel, index),
                )
            )
            row = json.dumps(gateway.metrics_dict(), sort_keys=True)
            assert row == golden, (
                f"recovery after a {channel} crash at boundary {index} "
                f"diverged from the uninterrupted run"
            )
            if crashes == 0:
                break  # past the channel's last boundary: exhausted
            boundaries += 1
            shutil.rmtree(directory)  # bound tmp usage across ~50 runs
        else:
            pytest.fail(f"{channel} still firing after {self._CAP} boundaries")
        # Every arrival crosses an append/torn/ack boundary; checkpoints
        # are sparser but the cadence guarantees periodic ones.
        floor = 2 if channel == "checkpoint" else len(events)
        assert boundaries >= floor


class TestRecoveryEdges:
    def test_bootstrap_crash_leaves_no_checkpoint(self, tmp_path):
        config = journal_config(tmp_path)
        journal = Journal.create(config.journal_path)
        journal.append("meta", format=1)
        journal.commit()
        journal.close()
        with pytest.raises(ServiceError, match="no checkpoint"):
            recover_gateway(tmp_path, **JOURNAL_KWARGS)

    def test_corrupt_checkpoint_is_rejected(self, tmp_path):
        scenario = build_scenario()

        async def main():
            gateway = MatchingGateway(
                scenario=scenario,
                config=service_config(),
                journal=journal_config(tmp_path),
            )
            await gateway.start()
            await gateway.stop()

        asyncio.run(main())
        config = journal_config(tmp_path)
        config.checkpoint_path.write_bytes(b"garbage, not a COMSNAP1")
        with pytest.raises(ServiceError):
            recover_gateway(tmp_path, **JOURNAL_KWARGS)

    def test_checkpoint_from_a_different_history_is_rejected(self, tmp_path):
        config = journal_config(tmp_path)
        journal = Journal.create(config.journal_path)
        journal.append("meta", format=1)
        journal.commit()
        journal.close()
        scenario = build_scenario()
        session = Simulator(service_config()).session(
            scenario, algorithm_factory("ramcom")
        )
        write_snapshot(
            session,
            {},
            config.checkpoint_path,
            meta={"journal_seq": 99, "journal_format": 1},
        )
        with pytest.raises(JournalError, match="different histories"):
            recover_gateway(tmp_path, **JOURNAL_KWARGS)

    def test_replay_divergence_is_rejected(self, tmp_path):
        scenario = build_scenario()
        events = list(scenario.events)
        cut = len(events) // 2

        async def main():
            gateway = MatchingGateway(
                scenario=scenario,
                config=service_config(),
                journal=journal_config(tmp_path),
            )
            await gateway.start()
            for event in events[:cut]:
                gateway.clock.advance_to(event.time)
                if event.kind is EventKind.WORKER:
                    await gateway.submit_worker(event.worker)
                else:
                    await gateway.submit_request(event.request)
            await gateway.stop()

        asyncio.run(main())
        # Forge a decision the engine would never make for a not-yet-seen
        # request: replay must refuse to serve from such a journal.
        undecided = next(
            event.request
            for event in events[cut:]
            if event.kind is not EventKind.WORKER
        )
        config = journal_config(tmp_path)
        journal, __ = Journal.open(config.journal_path)
        journal.append_request_ref(
            undecided.request_id, "serve_inner", "ghost-worker", 9999.0
        )
        journal.commit()
        journal.close()
        with pytest.raises(JournalError, match="replay diverged"):
            recover_gateway(tmp_path, **JOURNAL_KWARGS)

    def test_unknown_record_kind_is_rejected(self, tmp_path):
        scenario = build_scenario()

        async def main():
            gateway = MatchingGateway(
                scenario=scenario,
                config=service_config(),
                journal=journal_config(tmp_path),
            )
            await gateway.start()
            await gateway.stop()

        asyncio.run(main())
        config = journal_config(tmp_path)
        journal, __ = Journal.open(config.journal_path)
        journal.append("frobnicate", x=1)
        journal.commit()
        journal.close()
        with pytest.raises(JournalError, match="unknown kind"):
            recover_gateway(tmp_path, **JOURNAL_KWARGS)

    def test_crashed_gateway_refuses_further_submissions(self, tmp_path):
        scenario = build_scenario()
        events = list(scenario.events)

        async def main():
            gateway = MatchingGateway(
                scenario=scenario,
                config=service_config(),
                journal=journal_config(tmp_path),
                crash_plan=CrashPlan.at("ack", 2),
            )
            await gateway.start()
            crashed = False
            for event in events:
                gateway.clock.advance_to(event.time)
                try:
                    if event.kind is EventKind.WORKER:
                        await gateway.submit_worker(event.worker)
                    else:
                        await gateway.submit_request(event.request)
                except InducedCrash:
                    crashed = True
                    break
            assert crashed
            assert gateway.crash_error is not None
            assert gateway.stats()["crashed"] is True
            with pytest.raises(ServiceError, match="gateway crashed"):
                await gateway.submit_worker(make_worker("w-late", "A"))

        asyncio.run(main())


class TestJournaledDedup:
    def test_duplicate_submissions_answer_from_the_outcome_log(self, tmp_path):
        workers = [make_worker("w0", "A", t=0.0)]
        requests = [make_request("r0", "A", t=1.0)]
        scenario = make_scenario(workers, requests)

        async def main():
            gateway = MatchingGateway(
                scenario=scenario,
                config=service_config(),
                journal=journal_config(tmp_path),
            )
            await gateway.start()
            await gateway.submit_worker(workers[0])
            await gateway.submit_worker(workers[0])  # retry: no-op
            first = await gateway.submit_request(requests[0])
            second = await gateway.submit_request(requests[0])  # retry
            stats = gateway.stats()
            await gateway.stop()
            return first, second, stats

        first, second, stats = asyncio.run(main())
        assert second.matches(first)
        dedup = stats["metrics"]["counters"]["service_dedup_total"]
        assert sum(series["value"] for series in dedup) == 2
        assert stats["journal"] is not None
        assert stats["journal"]["records"] >= 4  # meta + checkpoint + ops


class TestTcpCrashRecovery:
    """Satellite #1: a reconnecting client rides through a server crash,
    a supervisor recovers on the same port, and the drained row still
    matches the uninterrupted run byte for byte."""

    @pytest.mark.parametrize("algorithm", ["demcom", "ramcom"])
    def test_client_survives_crash_and_recovery(self, tmp_path, algorithm):
        scenario = build_scenario(seed=17, requests=10, workers=5)
        config = service_config()
        golden = golden_row(scenario, algorithm, config)

        async def main():
            gateway = MatchingGateway(
                scenario=scenario,
                algorithm=algorithm,
                config=config,
                journal=journal_config(tmp_path / "wal"),
                crash_plan=CrashPlan.at("ack", 6),
            )
            server = MatchingServer(gateway)
            host, port = await server.start()
            recovered: list[MatchingServer] = []

            async def supervisor():
                while gateway.crash_error is None:
                    await asyncio.sleep(0.005)
                replacement, report = recover_gateway(
                    tmp_path / "wal", **JOURNAL_KWARGS
                )
                assert report.records_replayed > 0
                respawn = MatchingServer(replacement, host=host, port=port)
                await respawn.start()
                recovered.append(respawn)

            watchdog = asyncio.create_task(supervisor())
            client = GatewayClient(
                host,
                port,
                reconnect=RetryPolicy(
                    max_attempts=8,
                    base_backoff_s=0.02,
                    multiplier=1.5,
                    max_backoff_s=0.2,
                    call_timeout_s=5.0,
                ),
            )
            try:
                async with client:
                    metrics = await drive_trace(client, scenario.events)
            finally:
                await watchdog
                for respawn in recovered:
                    await respawn.stop()
                await server.stop()
            return metrics, client.reconnects, len(recovered)

        metrics, reconnects, respawns = asyncio.run(main())
        assert json.dumps(metrics, sort_keys=True) == golden
        assert reconnects >= 1
        assert respawns == 1

    def test_reconnect_exhaustion_surfaces_as_service_error(self):
        # Reserve a port, then free it: every (re)connect attempt is
        # refused — the policy must give up with a clear error, not hang.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()

        async def main():
            client = GatewayClient(
                host,
                port,
                reconnect=RetryPolicy(
                    max_attempts=2, base_backoff_s=0.01, call_timeout_s=0.5
                ),
            )
            with pytest.raises(ServiceError, match="reconnect exhausted"):
                await client.ping()
            await client.close()

        asyncio.run(main())


class TestSoakSmoke:
    def test_three_cycle_soak_is_byte_identical(self, tmp_path):
        scenario = build_scenario(seed=21, requests=40, workers=20)
        report = asyncio.run(
            run_soak(
                scenario,
                tmp_path,
                algorithm="ramcom",
                config=service_config(),
                soak=SoakConfig(cycles=3, seed=7),
            )
        )
        assert report.induced_crashes == 3
        assert report.retries == 3
        assert len(report.recoveries) == 3
        assert report.metrics_identical
        assert report.sanitizer_enabled
        assert report.events_submitted == sum(1 for _ in scenario.events)
        assert report.max_recovery_seconds > 0.0
        # The COMEVT1 stream recorded across the induced crashes must
        # replay byte-identically (canonical projection strips the
        # crash/recovered markers and seq renumbering).
        assert report.events_identical is True
        assert report.event_count > 0
        payload = report.as_dict()
        assert payload["metrics_identical"] is True
        assert payload["events_identical"] is True
        assert len(payload["recoveries"]) == 3

    def test_soak_without_event_log_skips_event_identity(self, tmp_path):
        scenario = build_scenario(seed=22, requests=20, workers=10)
        report = asyncio.run(
            run_soak(
                scenario,
                tmp_path,
                algorithm="ramcom",
                config=service_config(),
                soak=SoakConfig(cycles=1, seed=3, events=False),
            )
        )
        assert report.metrics_identical
        assert report.events_identical is None
        assert report.event_count == 0

    def test_soak_config_validation(self):
        with pytest.raises(ConfigurationError):
            SoakConfig(cycles=-1)
        with pytest.raises(ConfigurationError):
            SoakConfig(speed=-0.5)
