"""Golden equivalence tests for the Algorithm-2 / MER snapshot fast path.

The fast path (docs/PERFORMANCE.md) must be *bit-identical* to the retained
reference implementations — same estimates, same quotes, and the same RNG
stream (one uniform per candidate with positive acceptance probability, in
candidate order, until one accepts).  These tests pin that down at three
levels: the estimator/pricer units, the RNG-boundary edge cases, and full
DemCOM / RamCOM simulations run with ``payment_fast_path`` on vs off.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import DemCOM, RamCOM, Simulator, SimulatorConfig
from repro.core.acceptance import AcceptanceEstimator, AcceptanceSnapshot
from repro.core.payment import MinimumOuterPaymentEstimator
from repro.core.pricing import MaximumExpectedRevenuePricer
from repro.utils.rng import derive_rng

from conftest import make_request, make_scenario, make_worker


def _populated_estimator(mode: str) -> tuple[AcceptanceEstimator, list[str]]:
    acceptance = AcceptanceEstimator(mode=mode)
    rng = derive_rng(99, "fastpath/histories")
    workers = []
    for index in range(12):
        length = 1 + rng.randrange(40)
        scale = 1.0 if mode == "relative" else 50.0
        acceptance.set_history(
            f"w{index}", [rng.random() * scale for _ in range(length)]
        )
        workers.append(f"w{index}")
    workers.extend(f"cold{i}" for i in range(3))
    return acceptance, workers


class TestSnapshot:
    def test_rows_alias_live_histories(self):
        acceptance, workers = _populated_estimator("relative")
        snapshot = acceptance.snapshot(workers)
        assert len(snapshot) == len(workers)
        history, size = snapshot.rows[0]
        assert history is acceptance._histories["w0"]
        assert size == len(history)

    def test_cold_rows_are_none(self):
        acceptance, workers = _populated_estimator("relative")
        snapshot = acceptance.snapshot(workers)
        assert snapshot.rows[-1] == (None, 0)

    @pytest.mark.parametrize("mode", ["relative", "absolute"])
    def test_probabilities_match_estimator(self, mode):
        acceptance, workers = _populated_estimator(mode)
        snapshot = acceptance.snapshot(workers)
        probe = derive_rng(7, "fastpath/probe")
        for _ in range(25):
            value = 10.0 + 90.0 * probe.random()
            payment = value * probe.random()
            expected = [
                acceptance.probability(payment, worker_id, value)
                for worker_id in workers
            ]
            assert snapshot.probabilities(payment, value) == expected

    def test_normalize_matches_private_helper(self):
        for mode in ("relative", "absolute"):
            acceptance, _ = _populated_estimator(mode)
            snapshot = AcceptanceSnapshot(mode, 0.5, [])
            assert snapshot.normalize(30.0, 40.0) == acceptance._normalize(
                30.0, 40.0
            )


class TestEstimatorEquivalence:
    @pytest.mark.parametrize("mode", ["relative", "absolute"])
    def test_estimates_and_rng_stream_bit_identical(self, mode):
        acceptance, workers = _populated_estimator(mode)
        fast = MinimumOuterPaymentEstimator(acceptance, fast_path=True)
        slow = MinimumOuterPaymentEstimator(acceptance, fast_path=False)
        rng_fast = derive_rng(5, "fastpath/draws")
        rng_slow = derive_rng(5, "fastpath/draws")
        pick = derive_rng(5, "fastpath/calls")
        for _ in range(40):
            value = 5.0 + 95.0 * pick.random()
            ids = pick.sample(workers, 1 + pick.randrange(len(workers)))
            assert fast.estimate(value, ids, rng_fast) == slow.estimate(
                value, ids, rng_slow
            )
            # Not just equal results: the exact same uniforms were drawn.
            assert rng_fast.getstate() == rng_slow.getstate()

    def test_probability_one_still_consumes_a_draw(self):
        # Every history entry sits below the offer -> probability is
        # exactly 1.0; the reference path still draws one uniform before
        # accepting, so the fast path must too.
        acceptance = AcceptanceEstimator(mode="absolute")
        acceptance.set_history("w", [1.0, 2.0, 3.0])
        fast = MinimumOuterPaymentEstimator(acceptance, fast_path=True)
        slow = MinimumOuterPaymentEstimator(acceptance, fast_path=False)
        rng_fast, rng_slow = random.Random(3), random.Random(3)
        assert fast.estimate(50.0, ["w"], rng_fast) == slow.estimate(
            50.0, ["w"], rng_slow
        )
        assert rng_fast.getstate() == rng_slow.getstate()
        # The stream moved: draws really were consumed.
        assert rng_fast.getstate() != random.Random(3).getstate()

    def test_zero_default_probability_draws_nothing_for_cold_workers(self):
        acceptance = AcceptanceEstimator(default_probability=0.0)
        fast = MinimumOuterPaymentEstimator(acceptance, fast_path=True)
        slow = MinimumOuterPaymentEstimator(acceptance, fast_path=False)
        rng_fast, rng_slow = random.Random(4), random.Random(4)
        assert fast.estimate(10.0, ["a", "b"], rng_fast) == slow.estimate(
            10.0, ["a", "b"], rng_slow
        )
        # Probability 0 everywhere: neither path may touch the stream.
        assert rng_fast.getstate() == random.Random(4).getstate()
        assert rng_slow.getstate() == random.Random(4).getstate()

    def test_no_candidates_short_circuits(self):
        acceptance = AcceptanceEstimator()
        fast = MinimumOuterPaymentEstimator(acceptance, fast_path=True)
        rng = random.Random(1)
        estimate = fast.estimate(10.0, [], rng)
        assert estimate.always_rejected
        assert rng.getstate() == random.Random(1).getstate()


class TestPricerEquivalence:
    @pytest.mark.parametrize("mode", ["relative", "absolute"])
    @pytest.mark.parametrize("breakpoints", [True, False])
    def test_quotes_bit_identical(self, mode, breakpoints):
        acceptance, workers = _populated_estimator(mode)
        fast = MaximumExpectedRevenuePricer(
            acceptance,
            include_history_breakpoints=breakpoints,
            fast_path=True,
        )
        slow = MaximumExpectedRevenuePricer(
            acceptance,
            include_history_breakpoints=breakpoints,
            fast_path=False,
        )
        pick = derive_rng(11, "fastpath/quotes")
        for _ in range(25):
            value = 5.0 + 95.0 * pick.random()
            ids = pick.sample(workers, 1 + pick.randrange(len(workers)))
            assert fast.quote(value, ids) == slow.quote(value, ids)


def _golden_scenario():
    workers = [
        make_worker(f"a{i}", "A", i * 0.2, x=i * 0.3, y=0.1 * i, radius=1.8)
        for i in range(10)
    ] + [
        make_worker(f"b{i}", "B", i * 0.3, x=i * 0.4, y=0.25, radius=1.5)
        for i in range(8)
    ]
    requests = [
        make_request(f"ra{i}", "A", 2.0 + i * 0.25, x=i * 0.3, value=4.0 + i)
        for i in range(12)
    ] + [
        make_request(f"rb{i}", "B", 2.4 + i * 0.35, x=i * 0.4, y=0.25, value=6.5)
        for i in range(8)
    ]
    return make_scenario(workers, requests, platform_ids=["A", "B"])


def _golden_report(algorithm, fast_path: bool) -> str:
    config = SimulatorConfig(
        seed=7,
        measure_response_time=False,
        worker_reentry=True,
        service_duration=600.0,
        payment_fast_path=fast_path,
    )
    result = Simulator(config).run(_golden_scenario(), algorithm)
    payload = {}
    for pid in sorted(result.platforms):
        ledger = result.platforms[pid].ledger
        payload[pid] = {
            "revenue": ledger.revenue,
            "lender_income": ledger.total_lender_income,
            "matches": [
                [
                    record.request.request_id,
                    record.worker.worker_id,
                    record.kind.value,
                    record.payment,
                ]
                for record in ledger.records
            ],
            "rejected": [request.request_id for request in ledger.rejected],
        }
    return json.dumps(payload, sort_keys=True)


class TestEndToEndGolden:
    """The byte-identity the determinism suite relies on: flipping
    ``payment_fast_path`` must not move a single float."""

    @pytest.mark.parametrize("algorithm", [DemCOM, RamCOM], ids=lambda a: a.name)
    def test_fast_path_report_is_byte_identical(self, algorithm):
        assert _golden_report(algorithm, True) == _golden_report(
            algorithm, False
        )
