"""Tests for the worker shift knob on the workload generators."""

from __future__ import annotations

from repro.baselines import TOTA
from repro.core import Simulator, SimulatorConfig
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig


class TestShiftGeneration:
    def test_default_has_no_departures(self):
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(request_count=30, worker_count=10)
        ).build(seed=0)
        assert all(w.departure_time is None for w in scenario.events.workers)

    def test_shift_sets_departure(self):
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(
                request_count=30, worker_count=10, shift_seconds=6 * 3600
            )
        ).build(seed=0)
        for worker in scenario.events.workers:
            assert worker.departure_time == worker.arrival_time + 6 * 3600

    def test_shorter_shifts_reduce_completions(self):
        def run(shift):
            scenario = SyntheticWorkload(
                SyntheticWorkloadConfig(
                    request_count=300,
                    worker_count=80,
                    city_km=6.0,
                    shift_seconds=shift,
                )
            ).build(seed=2)
            return Simulator(
                SimulatorConfig(
                    seed=0,
                    worker_reentry=True,
                    service_duration=1800.0,
                    measure_response_time=False,
                )
            ).run(scenario, TOTA)

        long_shift = run(12 * 3600)
        short_shift = run(2 * 3600)
        assert short_shift.total_completed < long_shift.total_completed
