"""Tests for waiting lists and the cooperation exchange."""

from __future__ import annotations

import pytest

from repro.core.exchange import CooperationExchange
from repro.core.waiting_list import WaitingList
from repro.errors import SimulationError

from conftest import make_request, make_worker


class TestWaitingList:
    def test_add_and_len(self):
        waiting = WaitingList()
        waiting.add(make_worker("w1"))
        assert len(waiting) == 1
        assert "w1" in waiting

    def test_duplicate_add_raises(self):
        waiting = WaitingList()
        waiting.add(make_worker("w1"))
        with pytest.raises(SimulationError):
            waiting.add(make_worker("w1"))

    def test_remove_returns_worker(self):
        waiting = WaitingList()
        worker = make_worker("w1")
        waiting.add(worker)
        assert waiting.remove("w1") is worker
        assert len(waiting) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(SimulationError):
            WaitingList().remove("ghost")

    def test_discard(self):
        waiting = WaitingList()
        assert waiting.discard("ghost") is None
        waiting.add(make_worker("w1"))
        assert waiting.discard("w1") is not None

    def test_iteration_in_arrival_order(self):
        waiting = WaitingList()
        for worker_id, t in (("a", 3.0), ("b", 1.0), ("c", 2.0)):
            waiting.add(make_worker(worker_id, t=t))
        # Insertion order is the simulator's arrival order.
        assert [w.worker_id for w in waiting] == ["a", "b", "c"]

    def test_eligible_filters_time(self):
        waiting = WaitingList()
        waiting.add(make_worker("early", t=0.0))
        waiting.add(make_worker("late", t=10.0, x=0.1))
        eligible = waiting.eligible_for(make_request(t=5.0))
        assert [w.worker_id for w in eligible] == ["early"]

    def test_eligible_filters_range(self):
        waiting = WaitingList()
        waiting.add(make_worker("near", x=0.5, radius=1.0))
        waiting.add(make_worker("far", x=5.0, radius=1.0))
        eligible = waiting.eligible_for(make_request(x=0.0))
        assert [w.worker_id for w in eligible] == ["near"]

    def test_eligible_respects_per_worker_radius(self):
        waiting = WaitingList()
        waiting.add(make_worker("small", x=2.0, radius=1.0))
        waiting.add(make_worker("big", x=2.0, radius=3.0))
        eligible = waiting.eligible_for(make_request(x=0.0))
        assert [w.worker_id for w in eligible] == ["big"]

    def test_eligible_sorted_by_distance(self):
        waiting = WaitingList()
        waiting.add(make_worker("far", x=0.9))
        waiting.add(make_worker("near", x=0.1))
        eligible = waiting.eligible_for(make_request(x=0.0))
        assert [w.worker_id for w in eligible] == ["near", "far"]

    def test_nearest_eligible(self):
        waiting = WaitingList()
        assert waiting.nearest_eligible(make_request()) is None
        waiting.add(make_worker("w", x=0.2))
        assert waiting.nearest_eligible(make_request(x=0.0)).worker_id == "w"

    def test_clear(self):
        waiting = WaitingList()
        waiting.add(make_worker("w"))
        waiting.clear()
        assert len(waiting) == 0
        assert waiting.eligible_for(make_request()) == []


class TestCooperationExchange:
    def _exchange(self) -> CooperationExchange:
        exchange = CooperationExchange(["A", "B"])
        exchange.worker_arrives(make_worker("a0", "A", 0.0, 0.0, 0.0))
        exchange.worker_arrives(make_worker("b0", "B", 0.0, 0.3, 0.0))
        exchange.worker_arrives(
            make_worker("b1", "B", 0.0, 0.6, 0.0, shareable=False)
        )
        return exchange

    def test_duplicate_platforms_raise(self):
        with pytest.raises(SimulationError):
            CooperationExchange(["A", "A"])

    def test_unknown_platform_worker_raises(self):
        exchange = CooperationExchange(["A"])
        with pytest.raises(SimulationError):
            exchange.worker_arrives(make_worker("x", "Z"))

    def test_inner_candidates_only_home_platform(self):
        exchange = self._exchange()
        inner = exchange.inner_candidates("A", make_request(platform="A", t=1.0))
        assert [w.worker_id for w in inner] == ["a0"]

    def test_outer_candidates_exclude_home_and_unshareable(self):
        exchange = self._exchange()
        outer = exchange.outer_candidates("A", make_request(platform="A", t=1.0))
        assert [w.worker_id for w in outer] == ["b0"]  # b1 not shareable

    def test_outer_candidates_sorted_by_distance(self):
        exchange = CooperationExchange(["A", "B", "C"])
        exchange.worker_arrives(make_worker("b0", "B", 0.0, 0.5, 0.0))
        exchange.worker_arrives(make_worker("c0", "C", 0.0, 0.2, 0.0))
        outer = exchange.outer_candidates("A", make_request(platform="A", t=1.0))
        assert [w.worker_id for w in outer] == ["c0", "b0"]

    def test_claim_removes_everywhere(self):
        exchange = self._exchange()
        exchange.claim("b0")
        assert not exchange.is_available("b0")
        assert exchange.outer_candidates("A", make_request(t=1.0)) == []
        with pytest.raises(SimulationError):
            exchange.claim("b0")

    def test_available_count(self):
        exchange = self._exchange()
        assert exchange.available_count() == 3
        assert exchange.available_count("B") == 2
        exchange.claim("a0")
        assert exchange.available_count("A") == 0

    def test_platform_ids(self):
        assert self._exchange().platform_ids == ["A", "B"]
