"""Tests for :mod:`repro.analysis.concurrency` — the runtime sanitizer.

Ownership guards must catch a genuine cross-task mutation (and only
that: setup work outside any loop, handoffs, and the owning task itself
all pass), the stall detector must flag a deliberately blocking callback
without ever raising, and the whole monitor must survive the gateway's
COMSNAP1 pickling path.  The gateway integration tests assert the
anchor property is preserved with the sanitizer live: byte-identical
metric rows, zero violations.
"""

from __future__ import annotations

import asyncio
import pickle
import time

import pytest

from repro.analysis import (
    CONCURRENCY_ENV_VAR,
    ConcurrencyMonitor,
    ConcurrencyViolation,
    OwnershipGuard,
    concurrency_from_env,
)
from repro.core import Simulator, SimulatorConfig
from repro.core.registry import algorithm_factory
from repro.obs.metrics import MetricsRegistry
from repro.service import MatchingGateway
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig


def build_scenario(seed: int = 11, requests: int = 40, workers: int = 20):
    return SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=requests, worker_count=workers, horizon_seconds=3600.0
        )
    ).build(seed=seed)


class TestOwnershipGuard:
    def test_outside_event_loop_is_setup_and_never_claims(self) -> None:
        guard = OwnershipGuard("session")
        guard.check()
        guard.check()
        assert guard.owner is None
        assert guard.violations == 0

    def test_cross_task_mutation_raises(self) -> None:
        async def main() -> ConcurrencyViolation:
            guard = OwnershipGuard("session")
            owner = asyncio.current_task()
            assert owner is not None
            owner.set_name("decision-loop")
            guard.check()  # first task-context mutation claims
            assert guard.owner == "decision-loop"

            async def intruder() -> ConcurrencyViolation:
                task = asyncio.current_task()
                assert task is not None
                task.set_name("caller")
                with pytest.raises(ConcurrencyViolation) as caught:
                    guard.check()
                return caught.value

            return await asyncio.create_task(intruder())

        error = asyncio.run(main())
        assert error.structure == "session"
        assert error.owner == "decision-loop"
        assert error.intruder == "caller"
        assert "owner=decision-loop" in str(error)

    def test_handoff_allows_foreign_mutation(self) -> None:
        async def main() -> str | None:
            guard = OwnershipGuard("outcomes")
            guard.bind()

            async def caller() -> None:
                with guard.handoff():
                    guard.check()  # deliberate, reviewed cross-task touch

            await asyncio.create_task(caller())
            return guard.owner

        assert asyncio.run(main()) is not None

    def test_dead_owner_is_reclaimed_by_successor(self) -> None:
        async def main() -> None:
            guard = OwnershipGuard("session")

            async def first_loop() -> None:
                guard.check()

            task = asyncio.create_task(first_loop())
            await task  # owner is now done()

            async def second_loop() -> None:
                guard.check()  # re-claims instead of raising

            await asyncio.create_task(second_loop())
            assert guard.violations == 0

        asyncio.run(main())


class TestStallDetector:
    def test_blocking_callback_is_recorded_not_raised(self) -> None:
        registry = MetricsRegistry()
        monitor = ConcurrencyMonitor(stall_threshold=0.01, registry=registry)
        with monitor.measure_stall("request"):
            time.sleep(0.03)  # deliberately hold the "loop"
        assert len(monitor.stalls) == 1
        label, seconds = monitor.stalls[0]
        assert label == "request" and seconds >= 0.01
        counter = registry.counter("service_loop_stalls_total")
        assert counter.value(callback="request") == 1

    def test_fast_callback_records_nothing(self) -> None:
        monitor = ConcurrencyMonitor(stall_threshold=5.0)
        with monitor.measure_stall("worker"):
            pass
        assert monitor.stalls == []

    def test_stall_recorded_even_when_callback_raises(self) -> None:
        monitor = ConcurrencyMonitor(stall_threshold=0.01)
        with pytest.raises(ValueError):
            with monitor.measure_stall("finalize"):
                time.sleep(0.02)
                raise ValueError("decision failed")
        assert len(monitor.stalls) == 1


class TestConcurrencyMonitor:
    def test_violations_pool_across_guards(self) -> None:
        async def main() -> ConcurrencyMonitor:
            monitor = ConcurrencyMonitor()
            monitor.guard("session").bind()
            monitor.guard("journal-buffer").bind()

            async def intruder() -> None:
                with pytest.raises(ConcurrencyViolation):
                    monitor.touch("session")
                with pytest.raises(ConcurrencyViolation):
                    monitor.touch("journal-buffer")

            await asyncio.create_task(intruder())
            return monitor

        monitor = asyncio.run(main())
        assert monitor.violations == 2
        stats = monitor.stats()
        assert stats["violations"] == 2
        assert sorted(stats["guards"]) == ["journal-buffer", "session"]

    def test_pickling_drops_task_state(self) -> None:
        async def main() -> ConcurrencyMonitor:
            monitor = ConcurrencyMonitor(stall_threshold=1.5)
            monitor.guard("session").bind()
            with monitor.measure_stall("x"):
                pass
            return monitor

        monitor = asyncio.run(main())
        clone = pickle.loads(pickle.dumps(monitor))
        assert clone.stall_threshold == 1.5
        assert clone.stats()["guards"] == {}
        assert clone.stalls == []
        clone.touch("session")  # usable immediately after restore

    def test_env_var_switch(self) -> None:
        assert concurrency_from_env({}) is False
        assert concurrency_from_env({CONCURRENCY_ENV_VAR: "1"}) is True
        assert concurrency_from_env({CONCURRENCY_ENV_VAR: "TRUE"}) is True
        assert concurrency_from_env({CONCURRENCY_ENV_VAR: "off"}) is False


class TestGatewayIntegration:
    def test_sanitized_replay_stays_byte_identical(self) -> None:
        scenario = build_scenario()
        config = SimulatorConfig(
            measure_response_time=False, sanitize_concurrency=True
        )
        golden = Simulator(
            SimulatorConfig(measure_response_time=False)
        ).run(scenario, algorithm_factory("ramcom"))

        async def main():
            gateway = MatchingGateway(scenario, "ramcom", config)
            await gateway.start()
            for event in scenario.events:
                if event.worker is not None:
                    await gateway.submit_worker(event.worker)
                else:
                    assert event.request is not None
                    await gateway.submit_request(event.request)
            await gateway.drain()
            return gateway

        gateway = asyncio.run(main())
        from repro.experiments.metrics import AlgorithmMetrics
        from repro.experiments.reporting import metrics_to_dict

        assert metrics_to_dict(
            AlgorithmMetrics.from_simulation(gateway.result)
        ) == metrics_to_dict(AlgorithmMetrics.from_simulation(golden))
        stats = gateway.stats()
        assert stats["concurrency"] is not None
        assert stats["concurrency"]["violations"] == 0

    def test_disabled_path_reports_none(self) -> None:
        scenario = build_scenario(requests=6, workers=4)

        async def main():
            gateway = MatchingGateway(
                scenario, "ramcom", SimulatorConfig(measure_response_time=False)
            )
            await gateway.start()
            await gateway.drain()
            return gateway.stats()

        assert asyncio.run(main())["concurrency"] is None

    def test_foreign_task_touching_session_raises(self) -> None:
        scenario = build_scenario(requests=10, workers=6)
        config = SimulatorConfig(
            measure_response_time=False, sanitize_concurrency=True
        )

        async def main() -> None:
            gateway = MatchingGateway(scenario, "ramcom", config)
            await gateway.start()
            worker = next(
                event.worker
                for event in scenario.events
                if event.worker is not None
            )
            # Legitimate path first, so the decision loop owns the session.
            await gateway.submit_worker(worker)
            # A caller task reaching into the session behind the loop's
            # back is exactly the race the monitor exists to catch.
            with pytest.raises(ConcurrencyViolation):
                gateway._session.advance_to(1e9)
            await gateway.stop()

        asyncio.run(main())
