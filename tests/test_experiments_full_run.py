"""Tests for the one-command reproduction driver."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.full_run import reproduce_all


@pytest.fixture(scope="module")
def full_run(tmp_path_factory):
    """One shared driver run (reproduce_all is the suite's slowest call)."""
    output = tmp_path_factory.mktemp("reproduction")
    return output, reproduce_all(output, scale=0.003, seeds=1, cr_trials=5)


class TestReproduceAll:
    def test_produces_report_and_artifacts(self, full_run):
        tmp_path, run = full_run
        assert run.report_path is not None and run.report_path.exists()
        report = run.report_path.read_text()
        assert "Table V " in report or "Table V —" in report
        assert "Fig. 5(a)" in report
        assert "Competitive ratios" in report
        # Three tables + twelve panels were produced and saved.
        assert set(run.tables) == {"V", "VI", "VII"}
        assert len(run.panels) == 12
        assert len(list(tmp_path.glob("fig5*.csv"))) == 12
        assert len(list(tmp_path.glob("table_*.json"))) == 3
        assert run.elapsed_seconds > 0

    def test_cr_rows_cover_algorithms(self, full_run):
        __, run = full_run
        names = [name for name, __, __ in run.cr_rows]
        assert names == ["tota", "demcom", "ramcom"]
        for __, mean, minimum in run.cr_rows:
            assert 0.0 <= minimum <= mean <= 1.0 + 1e-9


class TestReproduceCli:
    def test_subcommand(self, tmp_path, capsys):
        assert (
            main(
                [
                    "reproduce",
                    "--output",
                    str(tmp_path),
                    "--scale",
                    "0.003",
                    "--seeds",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "report:" in out
        assert (tmp_path / "REPORT.md").exists()
