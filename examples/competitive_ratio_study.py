"""Empirical competitive-ratio study (Theorems 1 and 2).

Three parts:

1. **DemCOM's adversarial CR is unbounded** (Theorem 1): the crafted
   greedy-trap family — a cheap request burns the only worker before the
   valuable request arrives — drives the ratio to epsilon.
2. **Exhaustive adversarial enumeration** on a tiny instance: every
   arrival order is replayed and the worst ratio reported per algorithm.
3. **Random-order CR** (Theorem 2): the expected ratio over random orders
   on a mid-size instance, compared against RamCOM's 1/(8e) bound.

Run:  python examples/competitive_ratio_study.py
"""

from __future__ import annotations

from repro.core.simulator import Scenario, Simulator, SimulatorConfig
from repro.core.registry import algorithm_factory
from repro.experiments.competitive import (
    RAMCOM_THEORETICAL_CR,
    adversarial_ratio,
    demcom_worst_case_family,
    random_order_ratio,
)
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig


def part1_worst_case_family() -> None:
    print("1) DemCOM greedy trap (Theorem 1): ratio -> 0 as epsilon -> 0")
    table = TextTable(["epsilon", "DemCOM revenue", "OPT", "ratio"])
    for epsilon in (0.5, 0.1, 0.01):
        scenario, expected = demcom_worst_case_family(epsilon)
        simulator = Simulator(SimulatorConfig(seed=0, measure_response_time=False))
        result = simulator.run(scenario, algorithm_factory("demcom"))
        table.add_row([epsilon, result.total_revenue, 1.0, result.total_revenue])
        assert abs(result.total_revenue - expected) < 1e-9
    print(table.render())
    print()


def part2_exhaustive_adversarial() -> None:
    print("2) Exhaustive adversarial enumeration (tiny instance, all orders)")
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=4, worker_count=4, city_km=2.0, radius_km=2.0
        )
    ).build(seed=3)
    table = TextTable(["Algorithm", "Orders", "Worst ratio", "Mean ratio"])
    for name in ("tota", "demcom", "ramcom"):
        report = adversarial_ratio(scenario, name)
        table.add_row(
            [name, report.orders_evaluated, report.minimum, report.expectation]
        )
    print(table.render())
    print()


def part3_random_order() -> None:
    print("3) Random-order CR vs RamCOM's 1/(8e) bound")
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=40, worker_count=16, city_km=4.0, radius_km=1.5
        )
    ).build(seed=3)
    table = TextTable(
        ["Algorithm", "Trials", "Mean ratio", "Min ratio", "1/(8e)"],
    )
    for name in ("tota", "demcom", "ramcom"):
        report = random_order_ratio(scenario, name, trials=60)
        table.add_row(
            [
                name,
                report.orders_evaluated,
                report.expectation,
                report.minimum,
                RAMCOM_THEORETICAL_CR,
            ]
        )
    print(table.render())
    print()
    print(
        "Theorem 2 asserts RamCOM's random-order CR can reach 1/(8e) ~ 0.046;"
        " the empirical expectation sits far above the bound, as expected for"
        " a worst-case guarantee."
    )


def main() -> None:
    part1_worst_case_family()
    part2_exhaustive_adversarial()
    part3_random_order()


if __name__ == "__main__":
    main()
