"""The paper's running example (Example 1, Fig. 3, Tables I-II).

Five workers and five requests across two platforms:

* blue platform (the "target"): workers w1, w2, w4 and all five requests;
* red platforms (cooperative): workers w3, w5.

Request values (Table I): r1=4, r2=9, r3=6, r4=3, r5=4.
Arrival order (Table II): w1 w2 r1 w3 r2 r3 w4 r4 w5 r5.

Service disks (radius 1 km), matching Fig. 3's geometry:

* w1 covers r1 and r3;  w2 covers r2;  w4 covers r4 (blue workers)
* w3 covers r3;  w5 covers r5 (red workers)

The paper shows:

* traditional online matching (TOTA, blue workers only) serves at best 3
  requests for revenue 6 + 9 + 3 = 18 (w1-r3, w2-r2, w4-r4);
* borrowing w3 and w5 at a 50% payment share serves all 5 requests for
  4 + 9 + 6*50% + 3 + 4*50% = 21 (Fig. 3(c)).

This script reconstructs the instance, verifies both numbers with the
offline solver, and replays DemCOM over the exact arrival order as in the
paper's Example 2 (which also reaches 21).

Run:  python examples/paper_example_1.py
"""

from __future__ import annotations

from repro.baselines import solve_offline
from repro.behavior.distributions import UniformDistribution
from repro.behavior.worker_model import BehaviorOracle, WorkerBehavior
from repro.core import (
    DemCOM,
    Request,
    Scenario,
    Simulator,
    SimulatorConfig,
    Worker,
    validate_matching,
)
from repro.core.events import EventStream
from repro.geo.point import Point

#: The 50% payment share assumed by the paper's Example 1.
PAYMENT_SHARE = 0.5

BLUE = "blue"
RED = "red"


def build_instance() -> Scenario:
    """Construct Example 1 with the coverage pattern of Fig. 3."""
    workers = [
        Worker("w1", BLUE, 1.0, Point(0.0, 0.0), 1.0),
        Worker("w2", BLUE, 2.0, Point(3.5, 0.0), 1.0),
        Worker("w3", RED, 4.0, Point(1.6, 0.0), 1.0),
        Worker("w4", BLUE, 7.0, Point(9.0, 0.0), 1.0),
        Worker("w5", RED, 9.0, Point(12.0, 0.0), 1.0),
    ]
    requests = [
        Request("r1", BLUE, 3.0, Point(-0.6, 0.0), 4.0),  # w1 only
        Request("r2", BLUE, 5.0, Point(3.5, 0.5), 9.0),  # w2 only
        Request("r3", BLUE, 6.0, Point(0.8, 0.0), 6.0),  # w1 (0.8) and w3 (0.8)
        Request("r4", BLUE, 8.0, Point(9.0, 0.5), 3.0),  # w4 only
        Request("r5", BLUE, 10.0, Point(12.0, 0.5), 4.0),  # w5 only
    ]
    oracle = BehaviorOracle(seed=0)
    for worker in workers:
        # Example 1 assumes borrowed workers accept exactly a 50% payment
        # share: a degenerate reservation-rate distribution at 0.5.
        oracle.register(
            WorkerBehavior(
                worker.worker_id,
                UniformDistribution(PAYMENT_SHARE, PAYMENT_SHARE),
                [PAYMENT_SHARE] * 10,
            )
        )
    return Scenario(
        events=EventStream.from_entities(workers, requests),
        oracle=oracle,
        platform_ids=[BLUE, RED],
        value_upper_bound=9.0,
        name="paper-example-1",
    )


def main() -> None:
    scenario = build_instance()

    # --- Fig. 3(b): traditional online matching's best possible result.
    tota_opt = solve_offline(scenario, include_cooperation=False)
    blue_tota = tota_opt.ledgers[BLUE].revenue
    print(f"TOTA offline optimum (blue platform only): {blue_tota:g}")
    assert blue_tota == 18.0, blue_tota

    # --- Fig. 3(c): cross online matching with borrowed w3, w5 at 50%.
    com_opt = solve_offline(scenario, include_cooperation=True)
    blue_com = com_opt.ledgers[BLUE].revenue
    lender = com_opt.ledgers[RED].total_lender_income
    print(f"COM offline optimum (blue platform): {blue_com:g}")
    print(f"  red platforms' lender income: {lender:g}")
    assert blue_com == 21.0, blue_com
    validate_matching(com_opt.records)

    # --- Example 2: DemCOM over the exact arrival order.  The paper's
    # narrative *supposes* outer payments of 2 and 3 and reaches 21;
    # Algorithm 2's minimum-payment estimate deliberately undershoots the
    # acceptance threshold (that is DemCOM's documented weakness, §III-D),
    # so the online run is guaranteed the inner revenue 4 + 9 + 3 = 16 and
    # opportunistically adds cooperative gains when offers clear.
    simulator = Simulator(SimulatorConfig(seed=0, measure_response_time=False))
    result = simulator.run(scenario, DemCOM)
    validate_matching(result.all_records())
    blue = result.platforms[BLUE].ledger
    assert blue.revenue >= 16.0, blue.revenue
    print(
        f"DemCOM online: blue revenue {blue.revenue:g} "
        f"({blue.completed_requests} completed, "
        f"{blue.cooperative_requests} cooperative)"
    )
    print(
        "Paper: 18 without cooperation, 21 with borrowed workers at a 50% "
        "payment share — a win-win across the platforms."
    )


if __name__ == "__main__":
    main()
