"""A three-platform market — COM beyond pairwise cooperation.

The COM model allows any number of cooperating platforms; the paper
evaluates two.  This example builds a three-platform city where the
imbalance forms a *cycle*: each platform's riders queue where the next
platform's drivers idle.  No pairwise agreement could fix this — platform
P0 cannot repay P1 directly because P0's idle drivers sit in P2's demand
region — but the COM exchange clears the whole cycle.

The script compares TOTA / DemCOM / RamCOM, then prints the lending flow
matrix (who served whose requests) to make the cycle visible.

Run:  python examples/multi_platform_market.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.core import Simulator, SimulatorConfig, make_algorithm, validate_matching
from repro.utils.tables import TextTable
from repro.workloads import MultiPlatformConfig, MultiPlatformWorkload

SERVICE_DURATION = 1800.0


def main() -> None:
    scenario = MultiPlatformWorkload(
        MultiPlatformConfig(
            platform_count=3,
            request_count=900,
            worker_count=240,
            city_km=9.0,
            skew=0.6,
        )
    ).build(seed=4)
    print(
        f"{len(scenario.platform_ids)} platforms, "
        f"{scenario.request_count} requests, {scenario.worker_count} workers"
    )

    simulator = Simulator(
        SimulatorConfig(seed=0, worker_reentry=True, service_duration=SERVICE_DURATION)
    )

    comparison = TextTable(
        ["Algorithm", "Revenue", "Completed", "|CoR|", "AcpRt"],
        title="Three-platform comparison",
    )
    ramcom_result = None
    for name in ("tota", "demcom", "ramcom"):
        result = simulator.run(scenario, lambda: make_algorithm(name))
        validate_matching(result.all_records())
        revenue = sum(
            p.ledger.revenue + p.ledger.total_lender_income
            for p in result.platforms.values()
        )
        comparison.add_row(
            [
                result.algorithm_name,
                round(revenue),
                result.total_completed,
                result.total_cooperative,
                result.overall_acceptance_ratio,
            ]
        )
        if name == "ramcom":
            ramcom_result = result
    print()
    print(comparison.render())

    # The lending cycle: rows lend to columns.
    assert ramcom_result is not None
    flows: dict[tuple[str, str], int] = defaultdict(int)
    for record in ramcom_result.all_records():
        lender = record.worker.platform_id
        borrower = record.request.platform_id
        if lender != borrower:
            flows[(lender, borrower)] += 1
    matrix = TextTable(
        ["lender \\ borrower"] + scenario.platform_ids,
        title="RamCOM lending flows (cooperative completions)",
    )
    for lender in scenario.platform_ids:
        matrix.add_row(
            [lender]
            + [
                flows.get((lender, borrower), 0) if lender != borrower else "-"
                for borrower in scenario.platform_ids
            ]
        )
    print()
    print(matrix.render())
    print()
    print(
        "The dominant flows chase the constructed cycle "
        "(P1 -> P0, P2 -> P1, P0 -> P2): cooperation clears an imbalance no "
        "bilateral worker swap could."
    )


if __name__ == "__main__":
    main()
