"""Road-network COM — the paper's §II metric extension, end to end.

    "Although COM uses the Euclidean distance ... it can be equivalently
    changed into the shortest path distance in road networks by just
    changing the service range from circulars to irregular shapes."

This script runs the same city twice — once with Euclidean service disks,
once over a street lattice with a fraction of blocked segments (rivers,
construction) — and shows how the road metric shrinks effective service
areas, lowers completion rates, and *increases* the relative value of
cross-platform borrowing (the nearest eligible worker is more often the
other platform's).

Run:  python examples/road_network_city.py
"""

from __future__ import annotations

from repro.core import Simulator, SimulatorConfig, make_algorithm
from repro.geo import BoundingBox, RoadNetwork
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

CITY_KM = 8.0
SERVICE_DURATION = 1800.0


def main() -> None:
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=700,
            worker_count=180,
            radius_km=1.2,
            city_km=CITY_KM,
        )
    ).build(seed=3)

    # A 250 m street lattice with 20% of segments blocked: service areas
    # become irregular star shapes instead of disks.
    network = RoadNetwork.grid(
        BoundingBox.square(CITY_KM),
        spacing_km=0.25,
        blocked_fraction=0.20,
        seed=9,
    )
    print(
        f"city {CITY_KM:g} km, street lattice with {network.node_count} "
        "intersections, 20% of segments blocked"
    )

    table = TextTable(
        ["Metric mode", "Algorithm", "Completed", "Revenue", "|CoR|",
         "Mean pickup (km)"],
        title="Euclidean disks vs road-network service areas",
    )
    results = {}
    for label, road_network in (("euclidean", None), ("road-network", network)):
        simulator = Simulator(
            SimulatorConfig(
                seed=0,
                worker_reentry=True,
                service_duration=SERVICE_DURATION,
                road_network=road_network,
            )
        )
        for name in ("tota", "ramcom"):
            result = simulator.run(scenario, lambda: make_algorithm(name))
            revenue = sum(
                p.ledger.revenue + p.ledger.total_lender_income
                for p in result.platforms.values()
            )
            pickup = sum(
                p.ledger.mean_pickup_distance() for p in result.platforms.values()
            ) / len(result.platforms)
            results[(label, name)] = (result.total_completed, revenue)
            table.add_row(
                [
                    label,
                    result.algorithm_name,
                    result.total_completed,
                    round(revenue),
                    result.total_cooperative,
                    round(pickup, 3),
                ]
            )
    print()
    print(table.render())

    euclid_gain = results[("euclidean", "ramcom")][1] / results[("euclidean", "tota")][1]
    road_gain = results[("road-network", "ramcom")][1] / results[("road-network", "tota")][1]
    print()
    print(
        f"RamCOM's revenue lift over TOTA: {euclid_gain - 1:+.1%} (euclidean) "
        f"vs {road_gain - 1:+.1%} (road network) — tighter effective service "
        "areas make borrowed workers matter more."
    )


if __name__ == "__main__":
    main()
