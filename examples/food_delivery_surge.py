"""Food-delivery lunch surge absorbed by cross-platform borrowing.

The paper's intro motivates COM with food-delivery platforms (Meituan,
Ele.me, Baidu): demand spikes brutally at lunch, and a single platform's
couriers cannot cover their own spike — but the competing platform's
couriers idle in complementary neighbourhoods.

This script builds a custom scenario with a *single sharp lunch peak*
(12:15, width 45 min) instead of the taxi two-peak day, then measures how
the completion rate during the surge window changes with cooperation, and
how the benefit scales with the spatial imbalance (the Fig.-2 ``skew``).

Run:  python examples/food_delivery_surge.py
"""

from __future__ import annotations

from repro.core import Simulator, SimulatorConfig, make_algorithm
from repro.core.matching import MatchRecord
from repro.core.simulator import Scenario
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig
from repro.workloads.arrival import DiurnalArrivals

#: The lunch-rush observation window (seconds of day).
SURGE_START = 11.5 * 3600
SURGE_END = 13.5 * 3600
#: A courier delivers one order in ~25 minutes.
DELIVERY_SECONDS = 1500.0


def build_surge_scenario(skew: float, seed: int = 5) -> Scenario:
    """A two-platform delivery day with one sharp lunch peak."""
    config = SyntheticWorkloadConfig(
        request_count=1200,
        worker_count=130,
        radius_km=1.0,
        city_km=9.0,
        skew=skew,
        platform_ids=("meituan-like", "eleme-like"),
    )
    workload = SyntheticWorkload(config)
    scenario = workload.build(seed=seed)
    # Restamp arrival times with the lunch-peak process (orders) and an
    # early-shift process (couriers), keeping locations and values.
    lunch = DiurnalArrivals(
        86_400.0, peak_hours=(12.25,), peak_width_hours=0.75, base_level=0.15
    )
    shift = DiurnalArrivals(
        86_400.0, peak_hours=(11.0,), peak_width_hours=1.5, base_level=0.3
    )
    from dataclasses import replace as dc_replace

    from repro.core.events import EventStream
    from repro.utils.rng import derive_rng

    rng = derive_rng(seed, "surge-times")
    requests = scenario.events.requests
    workers = scenario.events.workers
    request_times = lunch.sample_times(len(requests), rng)
    worker_times = shift.sample_times(len(workers), rng)
    requests = [
        dc_replace(request, arrival_time=t)
        for request, t in zip(requests, request_times)
    ]
    workers = [
        dc_replace(worker, arrival_time=t) for worker, t in zip(workers, worker_times)
    ]
    scenario.events = EventStream.from_entities(workers, requests)
    return scenario


def surge_completion_rate(records: list[MatchRecord], scenario: Scenario) -> float:
    """Fraction of surge-window orders that were served."""
    surge_requests = [
        r
        for r in scenario.events.requests
        if SURGE_START <= r.arrival_time <= SURGE_END
    ]
    served_ids = {record.request.request_id for record in records}
    if not surge_requests:
        return 0.0
    served = sum(1 for r in surge_requests if r.request_id in served_ids)
    return served / len(surge_requests)


def main() -> None:
    simulator = Simulator(
        SimulatorConfig(seed=0, worker_reentry=True, service_duration=DELIVERY_SECONDS)
    )
    table = TextTable(
        ["Skew", "Algorithm", "Surge completion", "Total revenue", "|CoR|"],
        title="Lunch-surge coverage vs spatial imbalance",
    )
    for skew in (0.0, 0.45, 0.9):
        scenario = build_surge_scenario(skew)
        for name in ("tota", "ramcom"):
            result = simulator.run(scenario, lambda: make_algorithm(name))
            revenue = sum(
                p.ledger.revenue + p.ledger.total_lender_income
                for p in result.platforms.values()
            )
            rate = surge_completion_rate(result.all_records(), scenario)
            table.add_row(
                [
                    f"{skew:g}",
                    result.algorithm_name,
                    f"{rate:.1%}",
                    round(revenue),
                    result.total_cooperative,
                ]
            )
    print(table.render())
    print()
    print(
        "Reading: without cooperation (TOTA) the surge completion rate "
        "collapses as the platforms' courier/demand geographies diverge "
        "(higher skew); RamCOM's borrowing keeps the lunch rush covered."
    )


if __name__ == "__main__":
    main()
