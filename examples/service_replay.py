"""Service replay: serve COM decisions over TCP and prove byte-identity.

Boots the asyncio matching service (docs/SERVICE.md) on an ephemeral
loopback port, streams a synthetic day of arrivals through it with the
JSONL client, checkpoints the matching state halfway, restores it into a
*second* server, finishes the stream there — and shows the drained metric
row is byte-identical to a plain ``Simulator.run`` on the same scenario.

This is the whole point of the serving layer: it is not a reimplementation
of the engine but the same ``SimulationSession`` behind a socket, so the
online service inherits every property the batch reproduction pins
(constraints, determinism, golden metrics).

Run:  python examples/service_replay.py
"""

from __future__ import annotations

import asyncio
import json

from repro import Simulator, SimulatorConfig, SyntheticWorkload, SyntheticWorkloadConfig
from repro.core.events import EventKind
from repro.core.registry import algorithm_factory
from repro.experiments.metrics import AlgorithmMetrics
from repro.experiments.reporting import metrics_to_dict
from repro.service import GatewayClient, MatchingGateway, MatchingServer

ALGORITHM = "ramcom"


async def replay_with_restart(scenario, config) -> dict:
    """Half the trace into one server, snapshot, finish in a fresh one."""
    events = list(scenario.events)
    cut = len(events) // 2

    async def submit(client: GatewayClient, event) -> None:
        if event.kind is EventKind.WORKER:
            await client.submit_worker(event.worker)
        else:
            await client.submit_request(event.request)

    first = MatchingServer(
        MatchingGateway(scenario=scenario, algorithm=ALGORITHM, config=config)
    )
    host, port = await first.start()
    print(f"serving {ALGORITHM} on {host}:{port}")
    async with GatewayClient(host, port) as client:
        for event in events[:cut]:
            await submit(client, event)
        snap = await client.snapshot("results/service_replay/mid.snap")
        stats = await client.stats()
    await first.stop()
    print(
        f"checkpointed after {cut} events -> {snap} "
        f"(decided so far: {stats['decided']})"
    )

    second = MatchingServer(MatchingGateway.from_snapshot(snap))
    host, port = await second.start()
    print(f"restored into a fresh server on {host}:{port}")
    async with GatewayClient(host, port) as client:
        for event in events[cut:]:
            await submit(client, event)
        metrics = await client.drain()
    await second.stop()
    return metrics


def main() -> None:
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=200, worker_count=60, horizon_seconds=7200.0
        )
    ).build(seed=3)
    # measure_response_time=False: the service reports its own latency
    # histogram; dropping the engine-side stopwatch makes the metric row
    # a deterministic function of the scenario (docs/SERVICE.md).
    config = SimulatorConfig(measure_response_time=False)
    print(f"scenario: {scenario.name}\n")

    served = asyncio.run(replay_with_restart(scenario, config))

    result = Simulator(config).run(scenario, algorithm_factory(ALGORITHM))
    golden = metrics_to_dict(AlgorithmMetrics.from_simulation(result))

    served_row = json.dumps(served, sort_keys=True)
    golden_row = json.dumps(golden, sort_keys=True)
    print()
    print(f"served revenue:  {served['revenue']}")
    print(f"batch  revenue:  {golden['revenue']}")
    print(
        "byte-identical across TCP + snapshot/restore: "
        f"{served_row == golden_row}"
    )
    assert served_row == golden_row


if __name__ == "__main__":
    main()
