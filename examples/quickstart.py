"""Quickstart: run every algorithm on one synthetic city and compare.

Builds a two-platform synthetic scenario (the Table-IV default shape,
scaled down for an instant run), replays it through TOTA, DemCOM, RamCOM
and the extension baselines, computes the offline optimum OFF, validates
the COM constraints on every produced matching, and prints the comparison.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Simulator,
    SimulatorConfig,
    SyntheticWorkload,
    SyntheticWorkloadConfig,
    make_algorithm,
    solve_offline_reentry,
    validate_matching,
)
from repro.utils.tables import TextTable

SERVICE_DURATION = 1800.0  # seconds a worker is occupied per request


def main() -> None:
    # A small two-platform city: 600 requests / 160 workers over one day.
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(request_count=600, worker_count=160, city_km=8.0)
    ).build(seed=1)
    print(f"scenario: {scenario.name}")
    print(
        f"  {scenario.request_count} requests, {scenario.worker_count} workers, "
        f"platforms {scenario.platform_ids}"
    )

    simulator = Simulator(
        SimulatorConfig(seed=0, worker_reentry=True, service_duration=SERVICE_DURATION)
    )

    table = TextTable(
        ["Algorithm", "Revenue", "Completed", "Rejected", "|CoR|", "AcpRt", "v'/v"],
        title="COM quickstart comparison",
    )
    for name in ("tota", "greedy-rt", "ranking", "demcom", "ramcom"):
        result = simulator.run(scenario, lambda: make_algorithm(name))
        validate_matching(result.all_records())  # the four Def-2.6 constraints
        revenue = sum(
            p.ledger.revenue + p.ledger.total_lender_income
            for p in result.platforms.values()
        )
        table.add_row(
            [
                result.algorithm_name,
                round(revenue),
                result.total_completed,
                result.total_rejected,
                result.total_cooperative,
                result.overall_acceptance_ratio,
                result.overall_payment_rate,
            ]
        )

    offline = solve_offline_reentry(scenario, service_duration=SERVICE_DURATION)
    validate_matching(offline.records)
    off_revenue = sum(
        ledger.revenue + ledger.total_lender_income
        for ledger in offline.ledgers.values()
    )
    table.add_row(
        [
            "OFF (upper bound)",
            round(off_revenue),
            offline.total_completed,
            offline.request_count - offline.total_completed,
            None,
            None,
            None,
        ]
    )
    print()
    print(table.render())
    print()
    print(
        "Expected shape: OFF > RamCOM > DemCOM > TOTA in revenue; RamCOM's "
        "acceptance ratio far above DemCOM's (the paper's headline result)."
    )


if __name__ == "__main__":
    main()
