"""Ride-hailing cooperation between two companies in one city.

Reconstructs the paper's headline scenario (§V, Tables V-VII): DiDi and
Yueche operate in Chengdu with complementary hot spots — each company's
riders queue where the *other* company's drivers idle (the paper's Fig. 2).
Cross Online Matching lets each company borrow the other's idle drivers.

The script:

1. builds a scaled Chengdu trace pair (Table III statistics);
2. runs TOTA, DemCOM and RamCOM over several seed-days plus the offline
   upper bound OFF;
3. prints the Table-V-style comparison, including the revenue
   decomposition that makes the cooperation a *win-win*: each platform's
   Definition-2.5 revenue from its own requests plus the lender income its
   drivers earn serving the partner's requests.

Run:  python examples/ride_hailing_cooperation.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, run_city_table
from repro.utils.tables import TextTable


def main() -> None:
    config = ExperimentConfig(seeds=(0, 1, 2), service_duration=1800.0)
    result = run_city_table("V", scale=0.015, config=config)
    print(result.render())
    print()

    # The win-win decomposition (paper Example 1's message): borrowing
    # raises the borrower's revenue AND pays the lender.
    first, second = result.platform_ids
    table = TextTable(
        [
            "Method",
            f"{first} own-requests",
            f"{first} lender income",
            f"{second} own-requests",
            f"{second} lender income",
        ],
        title="Win-win decomposition (Definition 2.5 revenue + lending)",
    )
    for row in result.rows:
        table.add_row(
            [
                row.algorithm,
                round(row.platform_revenue.get(first, 0.0)),
                round(row.lender_income.get(first, 0.0)),
                round(row.platform_revenue.get(second, 0.0)),
                round(row.lender_income.get(second, 0.0)),
            ]
        )
    print(table.render())
    print()

    tota = result.row("TOTA")
    ramcom = result.row("RamCOM")
    lift = (ramcom.total_revenue / tota.total_revenue - 1.0) * 100.0
    print(
        f"RamCOM lifts the two platforms' combined revenue by {lift:.1f}% "
        "over no-cooperation TOTA, without adding a single driver."
    )


if __name__ == "__main__":
    main()
