"""Run COM on real trace files (GAIA-shaped CSVs).

The paper's evaluation uses DiDi GAIA / Yueche taxi traces that cannot be
redistributed.  If you obtain them (or any trace with the same columns —
see :mod:`repro.workloads.trace_io`), this is the complete recipe; the
repository ships two small synthetic sample files under ``data/`` so the
pipeline is runnable out of the box.

Run:  python examples/real_trace_quickstart.py [didi.csv yueche.csv]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core import Simulator, SimulatorConfig, make_algorithm, validate_matching
from repro.baselines import solve_offline_reentry
from repro.utils.tables import TextTable
from repro.workloads import load_trace_csv, scenario_from_traces

DATA_DIR = Path(__file__).resolve().parent.parent / "data"
SERVICE_DURATION = 1800.0


def main(argv: list[str]) -> None:
    if len(argv) == 2:
        didi_path, yueche_path = Path(argv[0]), Path(argv[1])
    else:
        didi_path = DATA_DIR / "sample_trace_didi.csv"
        yueche_path = DATA_DIR / "sample_trace_yueche.csv"
        print(f"(no trace files given; using bundled samples under {DATA_DIR})")

    didi = load_trace_csv(didi_path, "didi")
    yueche = load_trace_csv(yueche_path, "yueche")
    scenario = scenario_from_traces([didi, yueche], seed=1, name="real-traces")
    print(
        f"loaded {scenario.request_count} requests / {scenario.worker_count} "
        f"workers across {scenario.platform_ids}"
    )

    simulator = Simulator(
        SimulatorConfig(seed=0, worker_reentry=True, service_duration=SERVICE_DURATION)
    )
    table = TextTable(
        ["Algorithm", "Revenue", "Completed", "|CoR|", "AcpRt"],
        title="COM on the loaded traces",
    )
    for name in ("tota", "demcom", "ramcom"):
        result = simulator.run(scenario, lambda: make_algorithm(name))
        validate_matching(result.all_records())
        revenue = sum(
            p.ledger.revenue + p.ledger.total_lender_income
            for p in result.platforms.values()
        )
        table.add_row(
            [
                result.algorithm_name,
                round(revenue),
                result.total_completed,
                result.total_cooperative,
                result.overall_acceptance_ratio,
            ]
        )
    offline = solve_offline_reentry(scenario, service_duration=SERVICE_DURATION)
    off_revenue = sum(
        ledger.revenue + ledger.total_lender_income
        for ledger in offline.ledgers.values()
    )
    table.add_row(
        ["OFF (bound)", round(off_revenue), offline.total_completed, None, None]
    )
    print()
    print(table.render())


if __name__ == "__main__":
    main(sys.argv[1:])
