"""RANKING — Karp, Vazirani & Vazirani's classic online matching [17].

Each worker receives a uniformly random priority when they join the waiting
list; an incoming request is served by the *highest-priority* (lowest rank
value) eligible inner worker.  RANKING maximizes matching cardinality with
competitive ratio ``1 - 1/e``; it ignores request values, so on
revenue-weighted workloads it trails the greedy baselines — a useful
contrast in the extension benches.
"""

from __future__ import annotations

from repro.core.base import Decision, OnlineAlgorithm, PlatformContext
from repro.core.entities import Request, Worker

__all__ = ["Ranking"]


class Ranking(OnlineAlgorithm):
    """Random-priority online matching over inner workers."""

    name = "RANKING"

    def __init__(self) -> None:
        self._ranks: dict[str, float] = {}

    def reset(self, context: PlatformContext) -> None:
        self._ranks.clear()

    def on_worker_arrival(self, worker: Worker, context: PlatformContext) -> None:
        self._ranks[worker.worker_id] = context.rng.random()

    def decide(self, request: Request, context: PlatformContext) -> Decision:
        inner = context.inner_candidates(request)
        if not inner:
            return Decision.reject()
        best = min(
            inner,
            key=lambda worker: (
                self._ranks.get(worker.worker_id, 1.0),
                worker.worker_id,
            ),
        )
        return Decision.serve_inner(best)
