"""Greedy-RT — randomized-threshold greedy (Tong et al. [9]).

The paper cites Greedy-RT's competitive ratio ``1 / (2e * ln(U_max + 1))``
under the adversarial model, and RamCOM's inner-path routing is a direct
descendant of its threshold trick.  We include it as an extension baseline:

1. draw ``k`` uniformly from ``{1..ceil(ln(U_max + 1))}`` once per run;
2. serve a request only if ``v_r >= e^(k-1)``, with the nearest eligible
   inner worker;
3. otherwise reject (even if workers are free — this is what buys the
   adversarial guarantee).

Single-platform: no cooperative attempts.
"""

from __future__ import annotations

import math

from repro.core.base import Decision, OnlineAlgorithm, PlatformContext
from repro.core.entities import Request

__all__ = ["GreedyRT"]


class GreedyRT(OnlineAlgorithm):
    """Randomized-threshold greedy over inner workers only."""

    name = "Greedy-RT"

    def __init__(self, fixed_k: int | None = None):
        self.fixed_k = fixed_k
        self._threshold = 0.0

    @property
    def threshold(self) -> float:
        """The current acceptance threshold ``e^(k-1)``."""
        return self._threshold

    def reset(self, context: PlatformContext) -> None:
        theta = max(1, int(math.ceil(math.log(context.value_upper_bound + 1.0))))
        k = self.fixed_k if self.fixed_k is not None else context.rng.randint(1, theta)
        self._threshold = math.exp(k - 1)

    def decide(self, request: Request, context: PlatformContext) -> Decision:
        if self._threshold == 0.0:
            self.reset(context)
        if request.value < self._threshold:
            return Decision.reject()
        inner = context.inner_candidates(request)
        if inner:
            return Decision.serve_inner(inner[0])
        return Decision.reject()
