"""Random assignment — a sanity-floor baseline.

Serves each request with a uniformly random eligible inner worker.  Any
sensible algorithm should beat it on pickup distance (it matches greedy on
revenue when values are worker-independent, which makes it a clean control
for the travel-distance extension metrics).
"""

from __future__ import annotations

from repro.core.base import Decision, OnlineAlgorithm, PlatformContext
from repro.core.entities import Request

__all__ = ["RandomAssign"]


class RandomAssign(OnlineAlgorithm):
    """Uniformly random eligible inner worker."""

    name = "Random"

    def decide(self, request: Request, context: PlatformContext) -> Decision:
        inner = context.inner_candidates(request)
        if not inner:
            return Decision.reject()
        return Decision.serve_inner(context.rng.choice(inner))
