"""GeoCrowd-style offline maximum task assignment (Kazemi & Shahabi [8]).

The paper's related work builds on GeoCrowd, which reduces *offline*
spatial task assignment to maximum flow: tasks and workers become nodes,
a worker-task edge exists when the spatio-temporal constraints allow the
pair, and each worker carries a capacity ``maxT`` (how many tasks they will
do).  The max flow equals the maximum number of assignable tasks.

We implement that reduction over our entities with Dinic's algorithm.  It
optimizes *cardinality*, not revenue — the contrast with the revenue-
optimal OFF is itself instructive (tested): GeoCrowd may complete more
requests for less money.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import Request, Worker
from repro.core.simulator import Scenario
from repro.errors import ConfigurationError
from repro.geo.grid_index import GridIndex
from repro.graph.maxflow import Dinic

__all__ = ["GeoCrowdSolution", "solve_geocrowd"]

_SOURCE = ("__geocrowd__", "source")
_SINK = ("__geocrowd__", "sink")


@dataclass
class GeoCrowdSolution:
    """The max-flow assignment."""

    assigned_tasks: int
    #: request_id -> worker_id for every routed unit of flow.
    assignments: dict[str, str]
    total_value: float
    edge_count: int

    @property
    def completed_per_worker(self) -> dict[str, int]:
        """How many tasks each worker received."""
        loads: dict[str, int] = {}
        for worker_id in self.assignments.values():
            loads[worker_id] = loads.get(worker_id, 0) + 1
        return loads


def _eligible_pairs(
    requests: list[Request], workers: list[Worker], include_cooperation: bool
) -> list[tuple[Request, Worker]]:
    if not requests or not workers:
        return []
    max_radius = max(worker.service_radius for worker in workers)
    index = GridIndex(cell_size=max(0.25, max_radius))
    by_id = {worker.worker_id: worker for worker in workers}
    for worker in workers:
        index.insert(worker.worker_id, worker.location)
    pairs = []
    for request in requests:
        for worker_id in index.query_radius(request.location, max_radius):
            worker = by_id[worker_id]
            if not worker.arrived_before(request):
                continue
            if not worker.can_reach(request):
                continue
            if not worker.on_shift_at(request.arrival_time):
                continue
            if worker.platform_id != request.platform_id and not (
                include_cooperation and worker.shareable
            ):
                continue
            pairs.append((request, worker))
    return pairs


def solve_geocrowd(
    scenario: Scenario,
    max_tasks_per_worker: int = 1,
    include_cooperation: bool = True,
) -> GeoCrowdSolution:
    """Maximum task assignment via the GeoCrowd max-flow reduction.

    ``max_tasks_per_worker`` is GeoCrowd's ``maxT``: the per-worker task
    budget (capacity of the worker -> sink edge).
    """
    if max_tasks_per_worker < 1:
        raise ConfigurationError("max_tasks_per_worker must be >= 1")
    requests = scenario.events.requests
    workers = scenario.events.workers

    network = Dinic()
    pairs = _eligible_pairs(requests, workers, include_cooperation)
    requests_with_edges = {request.request_id for request, __ in pairs}
    workers_with_edges = {worker.worker_id for __, worker in pairs}
    for request_id in requests_with_edges:
        network.add_edge(_SOURCE, ("r", request_id), 1.0)
    for worker_id in workers_with_edges:
        network.add_edge(("w", worker_id), _SINK, float(max_tasks_per_worker))
    for request, worker in pairs:
        network.add_edge(("r", request.request_id), ("w", worker.worker_id), 1.0)

    if not pairs:
        return GeoCrowdSolution(0, {}, 0.0, 0)

    flow = network.max_flow(_SOURCE, _SINK)

    value_by_request = {request.request_id: request.value for request in requests}
    assignments: dict[str, str] = {}
    total_value = 0.0
    for request, worker in pairs:
        if request.request_id in assignments:
            continue
        routed = network.flow_on(("r", request.request_id), ("w", worker.worker_id))
        if routed > 0.5:
            assignments[request.request_id] = worker.worker_id
            total_value += value_by_request[request.request_id]

    return GeoCrowdSolution(
        assigned_tasks=int(round(flow)),
        assignments=assignments,
        total_value=total_value,
        edge_count=len(pairs),
    )
