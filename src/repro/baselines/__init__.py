"""Baselines the paper evaluates against, plus extension baselines.

* :class:`TOTA` — traditional online task assignment [9]: greedy matching
  on a single platform, no cooperation (COM with ``W_out = {}``).
* :func:`solve_offline` — OFF: the offline optimum of COM as a maximum-
  weight bipartite matching with full knowledge of arrivals and realized
  reservation prices (paper §II-B, Fig. 4).
* :class:`GreedyRT` — the randomized-threshold greedy of Tong et al. [9]
  (extension baseline; the paper cites its competitive ratio).
* :class:`Ranking` — Karp et al.'s RANKING [17] adapted to the platform
  model (extension baseline).
* :class:`RandomAssign` — uniformly random eligible inner worker (sanity
  floor).

Importing this package registers every baseline in the algorithm registry.
"""

from repro.baselines.tota import TOTA
from repro.baselines.greedy_rt import GreedyRT
from repro.baselines.ranking import Ranking
from repro.baselines.random_assign import RandomAssign
from repro.baselines.auction import AuctionCOM
from repro.baselines.batch import BatchMatching
from repro.baselines.geocrowd import GeoCrowdSolution, solve_geocrowd
from repro.baselines.offline import (
    OfflineSolution,
    solve_offline,
    solve_offline_reentry,
)

from repro.core.registry import register_algorithm

register_algorithm("tota", TOTA)
register_algorithm("greedy-rt", GreedyRT)
register_algorithm("ranking", Ranking)
register_algorithm("random", RandomAssign)
register_algorithm("batch", BatchMatching)
register_algorithm("auction", AuctionCOM)

__all__ = [
    "TOTA",
    "GreedyRT",
    "Ranking",
    "RandomAssign",
    "AuctionCOM",
    "BatchMatching",
    "GeoCrowdSolution",
    "solve_geocrowd",
    "OfflineSolution",
    "solve_offline",
    "solve_offline_reentry",
]
