"""OFF — the offline optimum of COM (paper §II-B, Fig. 4).

The offline version knows everything in advance: the spatio-temporal data
and arrival order of all requests and workers *and* each outer worker's
realized reservation price for each request (the behaviour oracle's draws —
the same draws the online algorithms trigger with live offers, so OFF is a
true upper bound on the identical randomness).

Construction: a weighted bipartite graph with requests on the left, workers
on the right.  Worker ``w`` gets an edge to request ``r`` iff the
Definition-2.6 constraints allow the pair (``w`` arrived first, ``r`` inside
``w``'s service disk):

* inner pair (same platform): weight ``v_r``;
* outer pair (different platform, ``w`` shareable): the oracle's realized
  reservation ``rho(w, r)`` is the cheapest accepted payment, so the weight
  is ``v_r - rho`` — included only when positive.

The maximum-weight matching (successive-shortest-paths Hungarian on the
sparse graph) is ``MaxSum(OPT)`` of Definitions 2.7/2.8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.entities import Request, Worker
from repro.core.matching import AssignmentKind, MatchRecord, MatchingLedger
from repro.core.simulator import Scenario
from repro.geo.grid_index import GridIndex
from repro.graph.bipartite import BipartiteGraph
from repro.graph.hungarian import max_weight_matching
from repro.graph.mincostflow import CapacitatedAssignment
from repro.utils.timer import Stopwatch

__all__ = ["OfflineSolution", "solve_offline", "solve_offline_reentry"]

_MIN_PAYMENT = 1e-9


@dataclass
class OfflineSolution:
    """The offline optimum and its per-platform decomposition."""

    algorithm_name: str
    scenario_name: str
    total_weight: float
    ledgers: dict[str, MatchingLedger]
    solve_seconds: float
    request_count: int
    edge_count: int = 0
    records: list[MatchRecord] = field(default_factory=list)

    @property
    def total_revenue(self) -> float:
        """Sum of per-platform Definition-2.5 revenue (== total_weight)."""
        return sum(ledger.revenue for ledger in self.ledgers.values())

    @property
    def total_completed(self) -> int:
        """Matched requests across platforms."""
        return sum(ledger.completed_requests for ledger in self.ledgers.values())

    @property
    def mean_response_time_ms(self) -> float:
        """Solve time amortized per request (the paper reports OFF this way)."""
        if self.request_count == 0:
            return 0.0
        return self.solve_seconds / self.request_count * 1e3


def _eligible_pairs(
    requests: list[Request], workers: list[Worker]
) -> list[tuple[Request, Worker]]:
    """All (request, worker) pairs satisfying time + range constraints."""
    if not requests or not workers:
        return []
    max_radius = max(worker.service_radius for worker in workers)
    index = GridIndex(cell_size=max(0.25, max_radius))
    by_id = {}
    for worker in workers:
        index.insert(worker.worker_id, worker.location)
        by_id[worker.worker_id] = worker
    pairs: list[tuple[Request, Worker]] = []
    for request in requests:
        for worker_id in index.query_radius(request.location, max_radius):
            worker = by_id[worker_id]
            if worker.arrived_before(request) and worker.can_reach(request):
                pairs.append((request, worker))
    return pairs


def solve_offline_reentry(
    scenario: Scenario,
    service_duration: float,
    include_cooperation: bool = True,
    max_services: int = 128,
) -> OfflineSolution:
    """OFF for scenarios run with worker *reentry* (the table experiments).

    With reentry a worker serves a sequence of requests, returning to their
    home location ``service_duration`` after each assignment.  We relax the
    scheduling coupling to a pure capacity: worker ``w`` can serve at most
    ``1 + floor((horizon - arrival_w) / service_duration)`` requests (the
    most any feasible schedule could fit), each satisfying the time + range
    constraints.  The resulting capacitated maximum-weight assignment
    (:class:`~repro.graph.mincostflow.CapacitatedAssignment`) upper-bounds
    every online algorithm run under the same reentry dynamics and
    reservation draws (reentry clones share the base worker's draw per
    request), at a small looseness cost: the relaxation ignores *when*
    within the horizon each service slot opens.

    When the simulator runs a variable :class:`~repro.core.service_time.
    ServiceTimeModel`, pass that model's *minimum* occupation here — a
    lower bound on per-service time yields an upper bound on capacity,
    preserving the dominance property.
    """
    if service_duration <= 0:
        raise ValueError(f"service_duration must be positive, got {service_duration}")
    if max_services < 1:
        raise ValueError(f"max_services must be >= 1, got {max_services}")
    requests = scenario.events.requests
    workers = scenario.events.workers
    oracle = scenario.oracle
    horizon = max((request.arrival_time for request in requests), default=0.0)

    solve_watch = Stopwatch().start()
    solver = CapacitatedAssignment()
    request_by_id = {request.request_id: request for request in requests}
    worker_by_id = {worker.worker_id: worker for worker in workers}
    for worker in workers:
        remaining = max(0.0, horizon - worker.arrival_time)
        capacity = 1 + min(max_services - 1, int(remaining // service_duration))
        solver.set_capacity(worker.worker_id, capacity)

    payments: dict[tuple[str, str], float] = {}
    edge_count = 0
    for request, worker in _eligible_pairs(requests, workers):
        if worker.platform_id == request.platform_id:
            solver.add_edge(request.request_id, worker.worker_id, request.value)
            edge_count += 1
        elif include_cooperation and worker.shareable:
            reservation = oracle.reservation_price(
                worker.worker_id, request.request_id, request.value
            )
            gain = request.value - reservation
            if gain > 0.0:
                solver.add_edge(request.request_id, worker.worker_id, gain)
                payments[(request.request_id, worker.worker_id)] = max(
                    reservation, _MIN_PAYMENT
                )
                edge_count += 1

    pairs, total_weight = solver.solve()
    solve_seconds = solve_watch.stop()

    ledgers = {
        platform_id: MatchingLedger(platform_id)
        for platform_id in scenario.platform_ids
    }
    records: list[MatchRecord] = []
    engagements: dict[str, int] = {}
    for request_id, worker_id in pairs.items():
        request = request_by_id[request_id]
        worker = worker_by_id[worker_id]
        # A worker may serve several requests; give each engagement beyond
        # the first a reentry-clone identity, mirroring the simulator's
        # bookkeeping so the ledger's 1-by-1 check stays meaningful.
        generation = engagements.get(worker_id, 0)
        engagements[worker_id] = generation + 1
        engaged = worker
        if generation > 0:
            engaged = Worker(
                worker_id=f"{worker_id}@reentry{generation}",
                platform_id=worker.platform_id,
                arrival_time=worker.arrival_time,
                location=worker.location,
                service_radius=worker.service_radius,
                shareable=worker.shareable,
            )
        if worker.platform_id == request.platform_id:
            record = MatchRecord(
                request=request,
                worker=engaged,
                kind=AssignmentKind.INNER,
                decision_time=request.arrival_time,
                pickup_distance=worker.location.distance_to(request.location),
            )
        else:
            payment = payments[(request_id, worker_id)]
            record = MatchRecord(
                request=request,
                worker=engaged,
                kind=AssignmentKind.OUTER,
                payment=payment,
                decision_time=request.arrival_time,
                pickup_distance=worker.location.distance_to(request.location),
            )
            ledgers[worker.platform_id].record_lender_income(
                request.platform_id, payment
            )
        ledgers[request.platform_id].record(record)
        records.append(record)
    matched_requests = set(pairs)
    for request in requests:
        if request.request_id not in matched_requests:
            ledgers[request.platform_id].record_rejection(request)

    return OfflineSolution(
        algorithm_name="OFF",
        scenario_name=scenario.name,
        total_weight=total_weight,
        ledgers=ledgers,
        solve_seconds=solve_seconds,
        request_count=len(requests),
        edge_count=edge_count,
        records=records,
    )


def solve_offline(
    scenario: Scenario, include_cooperation: bool = True
) -> OfflineSolution:
    """Compute OFF for a scenario.

    ``include_cooperation=False`` restricts edges to inner pairs — the
    offline optimum of TOTA, used by the competitive-ratio experiments.
    """
    requests = scenario.events.requests
    workers = scenario.events.workers
    oracle = scenario.oracle

    solve_watch = Stopwatch().start()
    graph = BipartiteGraph()
    request_by_id = {request.request_id: request for request in requests}
    worker_by_id = {worker.worker_id: worker for worker in workers}
    for request in requests:
        graph.add_left(request.request_id)

    payments: dict[tuple[str, str], float] = {}
    for request, worker in _eligible_pairs(requests, workers):
        if worker.platform_id == request.platform_id:
            graph.add_edge(request.request_id, worker.worker_id, request.value)
        elif include_cooperation and worker.shareable:
            reservation = oracle.reservation_price(
                worker.worker_id, request.request_id, request.value
            )
            gain = request.value - reservation
            if gain > 0.0:
                graph.add_edge(request.request_id, worker.worker_id, gain)
                payments[(request.request_id, worker.worker_id)] = max(
                    reservation, _MIN_PAYMENT
                )

    matching = max_weight_matching(graph)
    solve_seconds = solve_watch.stop()

    ledgers = {
        platform_id: MatchingLedger(platform_id)
        for platform_id in scenario.platform_ids
    }
    records: list[MatchRecord] = []
    matched_requests = set()
    for request_id, worker_id in matching.pairs.items():
        request = request_by_id[request_id]
        worker = worker_by_id[worker_id]
        matched_requests.add(request_id)
        if worker.platform_id == request.platform_id:
            record = MatchRecord(
                request=request,
                worker=worker,
                kind=AssignmentKind.INNER,
                decision_time=request.arrival_time,
                pickup_distance=worker.location.distance_to(request.location),
            )
        else:
            payment = payments[(request_id, worker_id)]
            record = MatchRecord(
                request=request,
                worker=worker,
                kind=AssignmentKind.OUTER,
                payment=payment,
                decision_time=request.arrival_time,
                pickup_distance=worker.location.distance_to(request.location),
            )
            ledgers[worker.platform_id].record_lender_income(
                request.platform_id, payment
            )
        ledgers[request.platform_id].record(record)
        records.append(record)
    for request in requests:
        if request.request_id not in matched_requests:
            ledgers[request.platform_id].record_rejection(request)

    return OfflineSolution(
        algorithm_name="OFF" if include_cooperation else "OFF-TOTA",
        scenario_name=scenario.name,
        total_weight=matching.total_weight,
        ledgers=ledgers,
        solve_seconds=solve_seconds,
        request_count=len(requests),
        edge_count=graph.edge_count,
        records=records,
    )
