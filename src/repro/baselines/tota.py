"""TOTA — traditional online task assignment (the paper's main baseline).

The single-platform greedy of Tong et al. [9]: an incoming request is
assigned to the nearest eligible *inner* worker, or rejected if none exists.
This is exactly COM with ``W_out = {}`` (paper §II-A), so TOTA never makes
cooperative attempts and reports no acceptance ratio or payment rate.
"""

from __future__ import annotations

from repro.core.base import Decision, OnlineAlgorithm, PlatformContext
from repro.core.entities import Request

__all__ = ["TOTA"]


class TOTA(OnlineAlgorithm):
    """Greedy single-platform online matching."""

    name = "TOTA"

    def decide(self, request: Request, context: PlatformContext) -> Decision:
        inner = context.inner_candidates(request)
        if inner:
            return Decision.serve_inner(inner[0])  # nearest first
        return Decision.reject()
