"""Batch-based online matching — the [10]-family extension baseline.

Tong et al.'s "flexible online task assignment" line of work observes that
real platforms do not decide strictly per arrival: they accumulate requests
for a short window ``delta`` and solve a small optimal matching per batch,
trading a little user-visible latency for globally better pairings.

:class:`BatchMatching` brings that idea to the COM setting through the
simulator's defer/flush protocol:

1. an arriving request is *deferred* (parked in the current batch);
2. once the stream moves past the batch deadline (first parked arrival +
   ``delta``), the whole batch is matched against the currently waiting
   inner workers by maximum-weight matching (request values as weights);
3. batch leftovers go down RamCOM's cooperative path (MER-priced offers to
   outer workers) or are rejected.

This deviates from Definition 2.6's immediate-response model by design —
it quantifies what deciding immediately costs, an ablation the paper's
related work motivates but does not run.  With ``delta = 0`` every batch
is a singleton and the algorithm reduces to value-greedy TOTA plus the
cooperative fallback.
"""

from __future__ import annotations

from repro.core.base import Decision, OnlineAlgorithm, PlatformContext
from repro.core.entities import Request, Worker
from repro.errors import ConfigurationError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.hungarian import max_weight_matching

__all__ = ["BatchMatching"]


class BatchMatching(OnlineAlgorithm):
    """Micro-batched maximum-weight matching with a cooperative fallback.

    Parameters
    ----------
    delta_seconds:
        Batch window: a batch closes when the stream reaches (first parked
        request's arrival + delta).
    cooperate:
        Offer batch leftovers to outer workers at MER prices (RamCOM's
        cooperative path).  Off = a pure single-platform batch baseline.
    """

    name = "Batch"

    def __init__(self, delta_seconds: float = 120.0, cooperate: bool = True):
        if delta_seconds < 0:
            raise ConfigurationError("delta_seconds must be >= 0")
        self.delta_seconds = delta_seconds
        self.cooperate = cooperate
        self._backlog: list[Request] = []
        self._deadline: float | None = None

    def reset(self, context: PlatformContext) -> None:
        self._backlog.clear()
        self._deadline = None

    def decide(self, request: Request, context: PlatformContext) -> Decision:
        if self._deadline is None:
            self._deadline = request.arrival_time + self.delta_seconds
        self._backlog.append(request)
        return Decision.defer()

    def flush(
        self, time: float, context: PlatformContext
    ) -> list[tuple[Request, Decision]]:
        if not self._backlog or (self._deadline is not None and time < self._deadline):
            return []
        batch = self._backlog
        self._backlog = []
        self._deadline = None

        # Stage 1: optimal inner matching of the whole batch.
        graph = BipartiteGraph()
        candidates: dict[tuple[str, str], Worker] = {}
        for request in batch:
            graph.add_left(request.request_id)
            for worker in context.inner_candidates(request):
                graph.add_edge(request.request_id, worker.worker_id, request.value)
                candidates[(request.request_id, worker.worker_id)] = worker
        matching = max_weight_matching(graph)

        decisions: list[tuple[Request, Decision]] = []
        claimed_outer: set[str] = set()
        for request in batch:
            worker_id = matching.pairs.get(request.request_id)
            if worker_id is not None:
                worker = candidates[(request.request_id, worker_id)]
                decisions.append((request, Decision.serve_inner(worker)))
                continue
            decision = self._cooperative_or_reject(request, context, claimed_outer)
            if decision.worker is not None:
                claimed_outer.add(decision.worker.worker_id)
            decisions.append((request, decision))
        return decisions

    def _cooperative_or_reject(
        self,
        request: Request,
        context: PlatformContext,
        claimed_outer: set[str],
    ) -> Decision:
        if not self.cooperate:
            return Decision.reject()
        outer = [
            worker
            for worker in context.outer_candidates(request)
            if worker.worker_id not in claimed_outer
        ]
        if not outer:
            return Decision.reject()
        quote = context.pricer.quote(
            request.value, [worker.worker_id for worker in outer]
        )
        if quote.payment > request.value or quote.payment <= 0.0:
            return Decision.reject()
        offers = 0
        for worker in outer:
            offers += 1
            if context.oracle.offer(
                worker.worker_id, request.request_id, quote.payment, request.value
            ):
                return Decision.serve_outer(worker, quote.payment, offers)
        return Decision.reject(cooperative_attempt=True, offers_made=offers)
