"""Auction-based cooperation — the related-work §VI contrast.

DemCOM and RamCOM are *posted-price* mechanisms: the borrower platform
computes a payment and broadcasts take-it-or-leave-it offers.  The
auction-and-incentives literature the paper surveys (Asghari et al. [27],
Hammond [29]) inverts the information flow: workers *bid* what they want,
and the platform picks the cheapest bid it can afford.

:class:`AuctionCOM` implements a first-price reverse auction over the
outer candidates:

1. inner workers keep absolute priority (as in DemCOM);
2. otherwise every eligible outer worker submits a sealed bid — their
   realized reservation price marked up by a personal ``margin`` (bidders
   never bid their true cost in a first-price auction);
3. the platform accepts the lowest bid not exceeding ``v_r``.

Against the posted-price algorithms this trades estimation error for
information rent: the auction never misses a willing worker (DemCOM's
failure mode) and never overpays beyond bid + margin (RamCOM's), but pays
the markup on every trade.  The bench quantifies where each mechanism
wins.
"""

from __future__ import annotations

from repro.core.base import Decision, OnlineAlgorithm, PlatformContext
from repro.core.entities import Request
from repro.errors import ConfigurationError

__all__ = ["AuctionCOM"]


class AuctionCOM(OnlineAlgorithm):
    """First-price reverse auction over outer workers.

    Parameters
    ----------
    margin:
        Uniform bid markup over the worker's true reservation (fraction);
        models first-price shading.  0 = truthful bidding (the
        second-price/VCG limit on this pool).
    """

    name = "AuctionCOM"

    def __init__(self, margin: float = 0.10):
        if margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {margin}")
        self.margin = margin

    def decide(self, request: Request, context: PlatformContext) -> Decision:
        inner = context.inner_candidates(request)
        if inner:
            return Decision.serve_inner(inner[0])

        outer = context.outer_candidates(request)
        if not outer:
            return Decision.reject()

        # Sealed bids: reservation * (1 + margin).  The oracle's draws are
        # exactly what live offers would face, so the auction operates on
        # the same randomness as every other mechanism.
        best_worker = None
        best_bid = float("inf")
        for worker in outer:
            reservation = context.oracle.reservation_price(
                worker.worker_id, request.request_id, request.value
            )
            bid = reservation * (1.0 + self.margin)
            if bid < best_bid:
                best_bid = bid
                best_worker = worker
        if best_worker is None or best_bid > request.value:
            return Decision.reject(
                cooperative_attempt=True, offers_made=len(outer)
            )
        # Paying the winning bid always clears the winner's reservation.
        return Decision.serve_outer(best_worker, best_bid, len(outer))
