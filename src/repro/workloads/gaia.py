"""Simulated DiDi/Yueche city traces — the Table-III stand-ins.

The paper evaluates on proprietary ride-hailing traces (DiDi GAIA and a
Yueche dump) from Chengdu and Xi'an, Oct/Nov 2016.  Those traces are not
redistributable and unavailable offline, so — per the substitution rule in
DESIGN.md — this module generates city traces matched on every statistic
the COM algorithms actually consume:

* per-company daily request/worker counts (Table III rows, scalable),
* the request/worker ratio (Chengdu ~10, Xi'an ~21-24 — the paper's
  "worker-scarce Xi'an" contrast),
* a hotspot-skewed spatial layout with complementary imbalance between the
  two companies (Fig. 2),
* a two-peak diurnal arrival profile,
* a fare-like value distribution (mean ~=19-20 CNY, hard ceiling 100).

Scaling: ``scale`` multiplies entity counts and shrinks all spatial lengths
by ``sqrt(scale)`` **except the service radius**, so the expected number of
workers inside a request's service disk — the quantity that drives matching
behaviour — is invariant across scales.  Tables V-VII run at a reduced
scale by default (documented in EXPERIMENTS.md); pass ``scale=1.0`` to
regenerate full-size instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.behavior.worker_model import BehaviorOracle
from repro.core.events import EventStream
from repro.core.simulator import Scenario
from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.utils.rng import SeedSequence
from repro.workloads.arrival import DiurnalArrivals
from repro.workloads.builders import (
    BehaviorConfig,
    populate_platform,
    register_behaviors,
)
from repro.workloads.spatial import complementary_hotspots
from repro.workloads.value_models import RealFareModel

__all__ = ["CityTraceConfig", "CityTraceGenerator"]


@dataclass(frozen=True)
class CityTraceConfig:
    """Full-scale description of one two-company city-month trace pair."""

    name: str
    #: company id -> average daily request count (Table III's |R|).
    requests_per_platform: dict[str, int]
    #: company id -> average daily worker count (Table III's |W|).
    workers_per_platform: dict[str, int]
    radius_km: float = 1.0
    city_km: float = 20.0
    hotspot_count: int = 6
    skew: float = 0.45
    history_length: int = 50
    horizon_seconds: float = 86_400.0
    behavior: BehaviorConfig = field(default_factory=BehaviorConfig)
    service_duration_seconds: float = 1800.0

    def __post_init__(self) -> None:
        if set(self.requests_per_platform) != set(self.workers_per_platform):
            raise ConfigurationError("request/worker platform ids must match")
        if len(self.requests_per_platform) != 2:
            raise ConfigurationError("city traces model exactly two companies")
        if self.radius_km <= 0 or self.city_km <= 0:
            raise ConfigurationError("radius and city size must be positive")

    @property
    def platform_ids(self) -> list[str]:
        """The two company ids, in declaration order."""
        return list(self.requests_per_platform.keys())


class CityTraceGenerator:
    """Generates scenarios from a :class:`CityTraceConfig`."""

    def __init__(self, config: CityTraceConfig):
        self.config = config

    def build(self, seed: int = 0, scale: float = 1.0) -> Scenario:
        """Build one day's trace at ``scale`` (entity counts x scale,
        spatial lengths x sqrt(scale), radius unchanged)."""
        if not 0 < scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        config = self.config
        length_factor = math.sqrt(scale)
        side_km = max(config.radius_km * 2.0, config.city_km * length_factor)
        box = BoundingBox.square(side_km)
        sigma_km = max(0.15, 1.2 * length_factor)
        seeds = SeedSequence(seed).child(f"gaia/{config.name}")
        value_model = RealFareModel()
        arrivals = DiurnalArrivals(config.horizon_seconds)
        # Drivers go on duty ahead of the demand peaks they serve.
        worker_arrivals = DiurnalArrivals(
            config.horizon_seconds,
            peak_hours=(7.0, 17.0),
            base_level=0.8,
        )

        patterns = complementary_hotspots(
            box,
            config.hotspot_count,
            config.skew,
            seeds.rng("hotspots"),
            sigma_km=sigma_km,
        )
        first, second = config.platform_ids
        pattern_map = {first: patterns["A"], second: patterns["B"]}

        populations = []
        for platform_id in config.platform_ids:
            worker_pattern, request_pattern = pattern_map[platform_id]
            worker_count = max(1, round(config.workers_per_platform[platform_id] * scale))
            request_count = max(1, round(config.requests_per_platform[platform_id] * scale))
            populations.append(
                populate_platform(
                    platform_id=platform_id,
                    worker_count=worker_count,
                    request_count=request_count,
                    worker_pattern=worker_pattern,
                    request_pattern=request_pattern,
                    arrivals=arrivals,
                    value_model=value_model,
                    worker_arrivals=worker_arrivals,
                    radius_km=config.radius_km,
                    history_length=config.history_length,
                    seeds=seeds,
                    behavior=config.behavior,
                )
            )

        oracle = BehaviorOracle(seed=seeds.derived_seed("oracle"))
        register_behaviors(oracle, populations)
        workers = [worker for pop in populations for worker in pop.workers]
        requests = [request for pop in populations for request in pop.requests]
        return Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=oracle,
            platform_ids=config.platform_ids,
            value_upper_bound=value_model.upper_bound,
            name=f"{config.name}@{scale:g}",
        )
