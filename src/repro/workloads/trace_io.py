"""Real-trace loading — run COM on actual ride-hailing data.

The paper's datasets come from DiDi's GAIA open-data program (ride requests
with timestamps and pickup coordinates) and a Yueche dump.  Those files
cannot be redistributed here, but a user who obtains them (or any trace in
the same shape) can load them directly:

CSV columns (header required, extra columns ignored)::

    kind,id,timestamp,lon,lat[,value][,radius]

* ``kind`` — ``request`` or ``worker``;
* ``timestamp`` — seconds (epoch or day offset) or ``HH:MM:SS``;
* ``lon,lat`` — WGS-84 degrees, projected to the planar km model via a
  local equirectangular projection around the trace's centroid;
* ``value`` — request fare (requests only; defaults drawn from
  :class:`~repro.workloads.value_models.RealFareModel` when absent);
* ``radius`` — worker service radius km (workers only; default 1.0).

:func:`load_trace_csv` parses one platform's file;
:func:`scenario_from_traces` combines per-platform traces into a runnable
:class:`~repro.core.simulator.Scenario`, generating worker behaviour with
the calibrated going-rate model (the part no public trace contains).
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.behavior.distributions import EmpiricalDistribution
from repro.behavior.worker_model import BehaviorOracle, WorkerBehavior
from repro.core.entities import Request, Worker
from repro.core.events import EventStream
from repro.core.simulator import Scenario
from repro.errors import WorkloadError
from repro.geo.point import Point
from repro.utils.rng import SeedSequence
from repro.workloads.builders import BehaviorConfig
from repro.workloads.value_models import RealFareModel, ValueModel

__all__ = ["RawTrace", "load_trace_csv", "scenario_from_traces"]

EARTH_RADIUS_KM = 6371.0088


@dataclass
class RawTrace:
    """One platform's parsed trace, still in geographic coordinates."""

    platform_id: str
    #: (entity_id, time_seconds, lon, lat, value) — value None for defaults.
    requests: list[tuple[str, float, float, float, float | None]] = field(
        default_factory=list
    )
    #: (entity_id, time_seconds, lon, lat, radius_km).
    workers: list[tuple[str, float, float, float, float]] = field(
        default_factory=list
    )

    @property
    def all_coordinates(self) -> list[tuple[float, float]]:
        """Every (lon, lat) in the trace."""
        coords = [(lon, lat) for __, __, lon, lat, __ in self.requests]
        coords.extend((lon, lat) for __, __, lon, lat, __ in self.workers)
        return coords


def _parse_timestamp(raw: str, line: int) -> float:
    raw = raw.strip()
    if ":" in raw:
        parts = raw.split(":")
        if len(parts) != 3:
            raise WorkloadError(f"line {line}: bad HH:MM:SS timestamp {raw!r}")
        try:
            hours, minutes, seconds = (float(part) for part in parts)
        except ValueError as error:
            raise WorkloadError(f"line {line}: bad timestamp {raw!r}") from error
        return hours * 3600 + minutes * 60 + seconds
    try:
        return float(raw)
    except ValueError as error:
        raise WorkloadError(f"line {line}: bad timestamp {raw!r}") from error


def load_trace_csv(path: str | Path, platform_id: str) -> RawTrace:
    """Parse one platform's trace CSV (see module docstring for columns)."""
    path = Path(path)
    trace = RawTrace(platform_id=platform_id)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise WorkloadError(f"{path}: empty trace file")
        required = {"kind", "id", "timestamp", "lon", "lat"}
        missing = required - {name.strip() for name in reader.fieldnames}
        if missing:
            raise WorkloadError(f"{path}: missing columns {sorted(missing)}")
        for line, row in enumerate(reader, start=2):
            kind = (row.get("kind") or "").strip().lower()
            entity_id = (row.get("id") or "").strip()
            if not entity_id:
                raise WorkloadError(f"{path} line {line}: empty id")
            time_seconds = _parse_timestamp(row.get("timestamp") or "", line)
            try:
                lon = float(row["lon"])
                lat = float(row["lat"])
            except (TypeError, ValueError) as error:
                raise WorkloadError(
                    f"{path} line {line}: bad coordinates"
                ) from error
            if kind == "request":
                value_raw = (row.get("value") or "").strip()
                value = float(value_raw) if value_raw else None
                trace.requests.append((entity_id, time_seconds, lon, lat, value))
            elif kind == "worker":
                radius_raw = (row.get("radius") or "").strip()
                radius = float(radius_raw) if radius_raw else 1.0
                trace.workers.append((entity_id, time_seconds, lon, lat, radius))
            else:
                raise WorkloadError(
                    f"{path} line {line}: kind must be request/worker, "
                    f"got {kind!r}"
                )
    return trace


def _projector(traces: list[RawTrace]):
    """A local equirectangular lon/lat -> planar km projection.

    Accurate to well under 1% over a metro-scale extent, which is all the
    range constraint needs.
    """
    coordinates = [c for trace in traces for c in trace.all_coordinates]
    if not coordinates:
        raise WorkloadError("traces contain no entities")
    lon0 = sum(lon for lon, __ in coordinates) / len(coordinates)
    lat0 = sum(lat for __, lat in coordinates) / len(coordinates)
    cos_lat0 = math.cos(math.radians(lat0))

    def project(lon: float, lat: float) -> Point:
        x = math.radians(lon - lon0) * cos_lat0 * EARTH_RADIUS_KM
        y = math.radians(lat - lat0) * EARTH_RADIUS_KM
        return Point(x, y)

    return project


def scenario_from_traces(
    traces: list[RawTrace],
    seed: int = 0,
    value_model: ValueModel | None = None,
    behavior: BehaviorConfig | None = None,
    history_length: int = 50,
    name: str = "trace",
) -> Scenario:
    """Combine per-platform traces into a runnable scenario.

    Coordinates are projected to the planar km model; requests without a
    ``value`` column draw from ``value_model`` (default: the calibrated
    fare model); worker behaviour is generated with the going-rate model
    (no public trace records willingness-to-accept).
    """
    if not traces:
        raise WorkloadError("need at least one trace")
    platform_ids = [trace.platform_id for trace in traces]
    if len(set(platform_ids)) != len(platform_ids):
        raise WorkloadError("duplicate platform ids across traces")
    value_model = value_model or RealFareModel()
    behavior = behavior or BehaviorConfig()
    project = _projector(traces)
    seeds = SeedSequence(seed).child(f"trace/{name}")

    workers: list[Worker] = []
    requests: list[Request] = []
    oracle = BehaviorOracle(seed=seeds.derived_seed("oracle"))
    for trace in traces:
        value_rng = seeds.rng(f"{trace.platform_id}/values")
        history_rng = seeds.rng(f"{trace.platform_id}/history")
        for entity_id, time_seconds, lon, lat, radius in trace.workers:
            worker_id = f"{trace.platform_id}-{entity_id}"
            workers.append(
                Worker(
                    worker_id=worker_id,
                    platform_id=trace.platform_id,
                    arrival_time=time_seconds,
                    location=project(lon, lat),
                    service_radius=radius,
                )
            )
            history = behavior.sample_history(history_length, history_rng)
            oracle.register(
                WorkerBehavior(worker_id, EmpiricalDistribution(history), history)
            )
        for entity_id, time_seconds, lon, lat, value in trace.requests:
            requests.append(
                Request(
                    request_id=f"{trace.platform_id}-{entity_id}",
                    platform_id=trace.platform_id,
                    arrival_time=time_seconds,
                    location=project(lon, lat),
                    value=value if value is not None else value_model.sample(value_rng),
                )
            )

    return Scenario(
        events=EventStream.from_entities(workers, requests),
        oracle=oracle,
        platform_ids=platform_ids,
        value_upper_bound=max(
            value_model.upper_bound,
            max((request.value for request in requests), default=1.0),
        ),
        name=name,
    )
