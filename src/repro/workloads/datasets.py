"""The named dataset registry — Table III.

Six datasets, two companies x three city-months:

======  =========  ==============  =======  ======
name    company    city / month    |R|      |W|
======  =========  ==============  =======  ======
RDC10   DiDi       Chengdu Oct'16  91,321    9,145
RDC11   DiDi       Chengdu Nov'16  100,973  11,199
RDX11   DiDi       Xi'an  Nov'16   57,611    2,441
RYC10   Yueche     Chengdu Oct'16  90,589    7,038
RYC11   Yueche     Chengdu Nov'16  100,448   9,333
RYX11   Yueche     Xi'an  Nov'16   57,638    2,686
======  =========  ==============  =======  ======

All with ``rad = 1.0 km``.  Tables V-VII pair the two companies of the same
city-month: (RDC10, RYC10), (RDC11, RYC11), (RDX11, RYX11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simulator import Scenario
from repro.errors import WorkloadError
from repro.workloads.gaia import CityTraceConfig, CityTraceGenerator

__all__ = ["DatasetSpec", "DATASETS", "CITY_PAIRS", "build_city_pair", "dataset_statistics"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-III row."""

    name: str
    company: str
    city: str
    month: str
    requests: int
    workers: int
    radius_km: float = 1.0


DATASETS: dict[str, DatasetSpec] = {
    "RDC10": DatasetSpec("RDC10", "DiDi", "Chengdu", "2016-10", 91_321, 9_145),
    "RDC11": DatasetSpec("RDC11", "DiDi", "Chengdu", "2016-11", 100_973, 11_199),
    "RDX11": DatasetSpec("RDX11", "DiDi", "Xi'an", "2016-11", 57_611, 2_441),
    "RYC10": DatasetSpec("RYC10", "Yueche", "Chengdu", "2016-10", 90_589, 7_038),
    "RYC11": DatasetSpec("RYC11", "Yueche", "Chengdu", "2016-11", 100_448, 9_333),
    "RYX11": DatasetSpec("RYX11", "Yueche", "Xi'an", "2016-11", 57_638, 2_686),
}

#: Table pairs: experiment name -> (DiDi dataset, Yueche dataset, city box km).
CITY_PAIRS: dict[str, tuple[str, str, float]] = {
    "chengdu-oct": ("RDC10", "RYC10", 20.0),  # Table V
    "chengdu-nov": ("RDC11", "RYC11", 20.0),  # Table VI
    "xian-nov": ("RDX11", "RYX11", 16.0),  # Table VII (smaller, worker-scarce)
}


def build_city_pair(pair: str, scale: float = 0.02, seed: int = 0) -> Scenario:
    """Build the two-platform scenario behind Table V, VI or VII.

    ``pair`` is one of ``"chengdu-oct"``, ``"chengdu-nov"``, ``"xian-nov"``.
    ``scale`` multiplies the Table-III entity counts (see
    :mod:`repro.workloads.gaia` for the density-preserving geometry).
    """
    if pair not in CITY_PAIRS:
        raise WorkloadError(
            f"unknown city pair {pair!r}; choose from {sorted(CITY_PAIRS)}"
        )
    didi_name, yueche_name, city_km = CITY_PAIRS[pair]
    didi = DATASETS[didi_name]
    yueche = DATASETS[yueche_name]
    config = CityTraceConfig(
        name=pair,
        requests_per_platform={didi.name: didi.requests, yueche.name: yueche.requests},
        workers_per_platform={didi.name: didi.workers, yueche.name: yueche.workers},
        radius_km=didi.radius_km,
        city_km=city_km,
    )
    return CityTraceGenerator(config).build(seed=seed, scale=scale)


def dataset_statistics(scenario: Scenario) -> dict[str, dict[str, float]]:
    """Per-platform counts and value statistics of a built scenario.

    Used by the Table-III bench to show the generated traces match the
    published statistics (after scaling).
    """
    stats: dict[str, dict[str, float]] = {}
    for platform_id in scenario.platform_ids:
        requests = [
            r for r in scenario.events.requests if r.platform_id == platform_id
        ]
        workers = [w for w in scenario.events.workers if w.platform_id == platform_id]
        values = [r.value for r in requests]
        stats[platform_id] = {
            "requests": len(requests),
            "workers": len(workers),
            "radius_km": workers[0].service_radius if workers else 0.0,
            "mean_value": sum(values) / len(values) if values else 0.0,
            "ratio": len(requests) / len(workers) if workers else float("inf"),
        }
    return stats
