"""Workload generation: everything the evaluation section consumes.

* :mod:`value_models` — request-value distributions ("real" fare-like and
  "normal", Table IV's two settings);
* :mod:`spatial` — city geometry: uniform and hotspot patterns, including
  the *complementary* hotspot skew of the paper's Fig. 2 (platform A's
  workers concentrate where platform B's requests do);
* :mod:`arrival` — arrival-time processes (uniform and diurnal two-peak);
* :mod:`synthetic` — the Table-IV synthetic sweeps (|R|, |W|, rad, value
  distribution);
* :mod:`gaia` — simulated DiDi/Yueche city traces standing in for the
  paper's proprietary datasets (Table III), matched on the statistics that
  drive matching behaviour;
* :mod:`datasets` — the named dataset registry (RDC10 ... RYX11) and the
  paired scenarios used by Tables V-VII.
"""

from repro.workloads.value_models import (
    NormalValueModel,
    RealFareModel,
    ValueModel,
    make_value_model,
)
from repro.workloads.spatial import (
    HotspotPattern,
    SpatialPattern,
    UniformPattern,
    complementary_hotspots,
)
from repro.workloads.arrival import ArrivalProcess, DiurnalArrivals, UniformArrivals
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig
from repro.workloads.gaia import CityTraceConfig, CityTraceGenerator
from repro.workloads.multi_platform import MultiPlatformConfig, MultiPlatformWorkload
from repro.workloads.trace_io import RawTrace, load_trace_csv, scenario_from_traces
from repro.workloads.serialization import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.workloads.datasets import (
    CITY_PAIRS,
    DATASETS,
    build_city_pair,
    dataset_statistics,
)

__all__ = [
    "ValueModel",
    "RealFareModel",
    "NormalValueModel",
    "make_value_model",
    "SpatialPattern",
    "UniformPattern",
    "HotspotPattern",
    "complementary_hotspots",
    "ArrivalProcess",
    "UniformArrivals",
    "DiurnalArrivals",
    "SyntheticWorkload",
    "SyntheticWorkloadConfig",
    "CityTraceConfig",
    "CityTraceGenerator",
    "MultiPlatformConfig",
    "MultiPlatformWorkload",
    "RawTrace",
    "load_trace_csv",
    "scenario_from_traces",
    "save_scenario",
    "load_scenario",
    "scenario_to_dict",
    "scenario_from_dict",
    "DATASETS",
    "CITY_PAIRS",
    "build_city_pair",
    "dataset_statistics",
]
