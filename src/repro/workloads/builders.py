"""Shared machinery for building scenarios from patterns + models.

Both the synthetic sweeps and the simulated city traces reduce to the same
operation: for each platform, place ``n`` workers and ``m`` requests
according to spatial patterns, stamp arrival times, draw request values,
and equip every worker with a behaviour (history + reservation
distribution).

Behaviour model (see DESIGN.md §1.4/§2): each worker has a personal
**going rate** ``gamma_w ~ N(0.80, 0.05)`` — the fraction of a request's
value below which they will not serve it as a borrowed worker.  The
worker's visible history is a tight sample of payment *rates* around that
going rate (the normalized payments of cooperative requests they completed
before), and their latent reservation distribution *is* the empirical
distribution of the history, so Definition 3.1's estimator is exact and
acceptance decisions follow the paper's Bernoulli-vs-history-CDF mechanics
to the letter, applied in rate space.

This concentrated shape is the one consistent with all of the paper's
incentive measurements simultaneously: the Algorithm-2 minimum payment
lands just under the cheapest candidate's going rate (~0.70 x v_r) where
fresh offers mostly fail (DemCOM's low acceptance ratio), while the MER
pricer pays just *above* the cliff (~0.8 x v_r) and clears most workers
(RamCOM's ~0.7 acceptance ratio).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.behavior.distributions import EmpiricalDistribution
from repro.behavior.worker_model import BehaviorOracle, WorkerBehavior
from repro.core.entities import Request, Worker
from repro.errors import ConfigurationError
from repro.utils.rng import SeedSequence
from repro.workloads.arrival import ArrivalProcess
from repro.workloads.spatial import SpatialPattern
from repro.workloads.value_models import ValueModel

__all__ = ["BehaviorConfig", "PlatformPopulation", "populate_platform"]


@dataclass(frozen=True)
class BehaviorConfig:
    """Calibration of the going-rate behaviour model.

    Attributes
    ----------
    going_rate_mean:
        Mean of ``gamma_w`` — a worker's going rate as a fraction of the
        request's value.
    going_rate_spread:
        Std-dev of ``gamma_w`` across workers (worker heterogeneity; the
        cheapest nearby worker sets DemCOM's minimum payment).
    jitter:
        Within-worker spread of accepted payment rates (how sharp each
        worker's acceptance cliff is).
    """

    going_rate_mean: float = 0.80
    going_rate_spread: float = 0.05
    jitter: float = 0.03

    def __post_init__(self) -> None:
        if not 0.0 < self.going_rate_mean <= 1.5:
            raise ConfigurationError("going_rate_mean out of range")
        if self.going_rate_spread < 0 or self.jitter < 0:
            raise ConfigurationError("spreads must be non-negative")

    def sample_history(self, length: int, rng: random.Random) -> list[float]:
        """Draw one worker's going rate and their payment-*rate* history."""
        gamma = rng.gauss(self.going_rate_mean, self.going_rate_spread)
        gamma = min(1.15, max(0.4, gamma))
        return [
            min(1.2, max(0.05, rng.gauss(gamma, self.jitter)))
            for _ in range(length)
        ]


class PlatformPopulation:
    """The generated entities of one platform."""

    def __init__(
        self,
        platform_id: str,
        workers: list[Worker],
        requests: list[Request],
        behaviors: list[WorkerBehavior],
    ):
        self.platform_id = platform_id
        self.workers = workers
        self.requests = requests
        self.behaviors = behaviors


def populate_platform(
    platform_id: str,
    worker_count: int,
    request_count: int,
    worker_pattern: SpatialPattern,
    request_pattern: SpatialPattern,
    arrivals: ArrivalProcess,
    value_model: ValueModel,
    radius_km: float,
    history_length: int,
    seeds: SeedSequence,
    behavior: BehaviorConfig | None = None,
    worker_arrivals: ArrivalProcess | None = None,
    shift_seconds: float | None = None,
) -> PlatformPopulation:
    """Generate one platform's workers, requests and behaviours.

    Ids embed the platform so they are globally unique
    (``{platform}-w{i}`` / ``{platform}-r{i}``).

    ``worker_arrivals`` lets workers follow a different (typically earlier,
    flatter) arrival profile than requests: drivers go on duty before the
    demand peaks they serve.  Defaults to the request process.

    ``shift_seconds`` gives every worker a departure time (shift length)
    after their arrival; ``None`` (default) means workers wait all day, as
    in the paper's model.
    """
    if worker_count < 0 or request_count < 0:
        raise ConfigurationError("counts must be non-negative")
    if radius_km <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius_km}")
    if history_length < 1:
        raise ConfigurationError("history_length must be >= 1")

    worker_rng = seeds.rng(f"{platform_id}/workers")
    request_rng = seeds.rng(f"{platform_id}/requests")
    history_rng = seeds.rng(f"{platform_id}/history")
    behavior_config = behavior or BehaviorConfig()

    worker_times = (worker_arrivals or arrivals).sample_times(
        worker_count, worker_rng
    )
    workers: list[Worker] = []
    behaviors: list[WorkerBehavior] = []
    for index, arrival_time in enumerate(worker_times):
        worker_id = f"{platform_id}-w{index}"
        departure = (
            arrival_time + shift_seconds if shift_seconds is not None else None
        )
        workers.append(
            Worker(
                worker_id=worker_id,
                platform_id=platform_id,
                arrival_time=arrival_time,
                location=worker_pattern.sample(worker_rng),
                service_radius=radius_km,
                departure_time=departure,
            )
        )
        history = behavior_config.sample_history(history_length, history_rng)
        behaviors.append(
            WorkerBehavior(worker_id, EmpiricalDistribution(history), history)
        )

    request_times = arrivals.sample_times(request_count, request_rng)
    requests: list[Request] = []
    for index, arrival_time in enumerate(request_times):
        requests.append(
            Request(
                request_id=f"{platform_id}-r{index}",
                platform_id=platform_id,
                arrival_time=arrival_time,
                location=request_pattern.sample(request_rng),
                value=value_model.sample(request_rng),
            )
        )

    return PlatformPopulation(platform_id, workers, requests, behaviors)


def register_behaviors(
    oracle: BehaviorOracle, populations: list[PlatformPopulation]
) -> None:
    """Register every generated worker's behaviour with the oracle."""
    for population in populations:
        for behavior in population.behaviors:
            oracle.register(behavior)
