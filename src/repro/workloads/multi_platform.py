"""N-platform workloads — beyond the paper's two-platform experiments.

The COM model places no limit on the number of cooperating platforms
(Definition 2.3's outer workers "may belong to several cooperative
platforms"); the paper's evaluation uses two.  This generator builds
scenarios for N >= 2 platforms over a shared hotspot set with *rotated*
mixture weights: platform ``i``'s workers concentrate where platform
``(i+1) mod N``'s requests do, closing a cycle of complementary imbalance —
every platform is simultaneously a borrower (from its clockwise neighbour)
and a lender (to its counter-clockwise neighbour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.behavior.worker_model import BehaviorOracle
from repro.core.events import EventStream
from repro.core.simulator import Scenario
from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.utils.rng import SeedSequence
from repro.workloads.arrival import DiurnalArrivals
from repro.workloads.builders import (
    BehaviorConfig,
    populate_platform,
    register_behaviors,
)
from repro.workloads.spatial import HotspotPattern
from repro.workloads.value_models import make_value_model

__all__ = ["MultiPlatformConfig", "MultiPlatformWorkload"]


@dataclass
class MultiPlatformConfig:
    """Knobs of an N-platform scenario."""

    platform_count: int = 3
    #: Total requests / workers across all platforms (split evenly).
    request_count: int = 1500
    worker_count: int = 300
    radius_km: float = 1.0
    value_distribution: str = "real"
    city_km: float = 12.0
    #: Hotspots per platform-slot; the full set is platform_count * this.
    hotspots_per_platform: int = 2
    #: How strongly each platform's workers avoid its own request regions.
    skew: float = 0.45
    gradient: float = 3.0
    horizon_seconds: float = 86_400.0
    history_length: int = 50
    behavior: BehaviorConfig = field(default_factory=BehaviorConfig)

    def __post_init__(self) -> None:
        if self.platform_count < 2:
            raise ConfigurationError("need at least two platforms to cooperate")
        if not 0.0 <= self.skew <= 1.0:
            raise ConfigurationError(f"skew must be in [0, 1], got {self.skew}")
        if self.hotspots_per_platform < 1:
            raise ConfigurationError("need at least one hotspot per platform")

    @property
    def platform_ids(self) -> list[str]:
        """``P0 .. P{N-1}``."""
        return [f"P{i}" for i in range(self.platform_count)]


class MultiPlatformWorkload:
    """Builds N-platform scenarios with cyclic complementary imbalance."""

    def __init__(self, config: MultiPlatformConfig | None = None):
        self.config = config or MultiPlatformConfig()

    def _rotated_weights(self, owner: int, total: int) -> list[float]:
        """Weights peaked on the owner's hotspot block, graded by skew."""
        config = self.config
        ratio = config.gradient**config.skew
        block = config.hotspots_per_platform
        weights = []
        for index in range(total):
            # Cyclic distance from the owner's block (in blocks).
            distance = ((index // block) - owner) % config.platform_count
            weights.append(ratio ** (config.platform_count - 1 - distance))
        return weights

    def build(self, seed: int = 0) -> Scenario:
        """Generate one N-platform scenario deterministically from ``seed``."""
        config = self.config
        seeds = SeedSequence(seed).child("multi-platform")
        box = BoundingBox.square(config.city_km)
        value_model = make_value_model(config.value_distribution)
        arrivals = DiurnalArrivals(config.horizon_seconds)
        worker_arrivals = DiurnalArrivals(
            config.horizon_seconds, peak_hours=(7.0, 17.0), base_level=0.8
        )

        hotspot_rng = seeds.rng("hotspots")
        total_hotspots = config.platform_count * config.hotspots_per_platform
        centers = [
            Point(
                hotspot_rng.uniform(box.min_x, box.max_x),
                hotspot_rng.uniform(box.min_y, box.max_y),
            )
            for _ in range(total_hotspots)
        ]
        hotspots = [(center, 1.0) for center in centers]

        populations = []
        per_workers = config.worker_count // config.platform_count
        per_requests = config.request_count // config.platform_count
        for index, platform_id in enumerate(config.platform_ids):
            # Workers sit on the *next* platform's request block: a cycle of
            # borrow-from-clockwise, lend-to-counter-clockwise.
            worker_weights = self._rotated_weights(
                (index + 1) % config.platform_count, total_hotspots
            )
            request_weights = self._rotated_weights(index, total_hotspots)
            populations.append(
                populate_platform(
                    platform_id=platform_id,
                    worker_count=per_workers,
                    request_count=per_requests,
                    worker_pattern=HotspotPattern(
                        box, hotspots, worker_weights, background=0.05
                    ),
                    request_pattern=HotspotPattern(
                        box, hotspots, request_weights, background=0.05
                    ),
                    arrivals=arrivals,
                    value_model=value_model,
                    radius_km=config.radius_km,
                    history_length=config.history_length,
                    seeds=seeds,
                    behavior=config.behavior,
                    worker_arrivals=worker_arrivals,
                )
            )

        oracle = BehaviorOracle(seed=seeds.derived_seed("oracle"))
        register_behaviors(oracle, populations)
        workers = [worker for pop in populations for worker in pop.workers]
        requests = [request for pop in populations for request in pop.requests]
        return Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=oracle,
            platform_ids=config.platform_ids,
            value_upper_bound=value_model.upper_bound,
            name=f"multi-{config.platform_count}p-R{config.request_count}",
        )
