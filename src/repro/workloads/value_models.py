"""Request-value distributions.

Table IV lists two value-distribution settings: **real** (the empirical
fare distribution of the taxi traces) and **normal**.  The traces are not
available offline, so the "real" model is a calibrated taxi-fare generator:
a lognormal with median ~=14 CNY and shape sigma ~= 0.7, clipped to
[5, 100] CNY.  This matches the aggregate statistics recoverable from the
paper's tables — mean value ~= 18-20 CNY (OFF revenue / |R|) and a value
ceiling around 100 CNY (RamCOM's theta = ceil(ln(max_v + 1)) ~= 5 levels) —
and the broad right-skew of real fares that drives the paper's incentive
numbers (minimum outer payment ~70% of the request value, RamCOM
acceptance far above DemCOM's).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError

__all__ = ["ValueModel", "RealFareModel", "NormalValueModel", "make_value_model"]


class ValueModel(ABC):
    """A distribution over request values ``v_r > 0``."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one request value."""

    @property
    @abstractmethod
    def upper_bound(self) -> float:
        """A hard upper bound on sampled values (``max(v_r)``).

        Both RamCOM and Greedy-RT assume this bound is known a priori.
        """

    @abstractmethod
    def mean(self) -> float:
        """The distribution's mean (used by calibration tests)."""


class RealFareModel(ValueModel):
    """The "real" fare-like value distribution (clipped lognormal).

    Parameters
    ----------
    median:
        Median fare (CNY).  Defaults to 14 — real taxi-fare distributions
        are right-skewed with many short cheap trips, giving mean ~= 18-20.
    sigma:
        Lognormal shape.  Defaults to 0.70 (the broad spread of real
        fares); this breadth is what lets moderate outer payments clear a
        useful fraction of workers' history CDFs (the paper's incentive
        calibration: DemCOM payment rate ~0.7, RamCOM acceptance ~0.7).
    minimum, maximum:
        Clipping bounds (taxi base fare, practical ceiling).
    """

    def __init__(
        self,
        median: float = 14.0,
        sigma: float = 0.70,
        minimum: float = 5.0,
        maximum: float = 100.0,
    ):
        if median <= 0 or sigma <= 0:
            raise ConfigurationError("median and sigma must be positive")
        if not 0 < minimum < maximum:
            raise ConfigurationError("need 0 < minimum < maximum")
        self.mu = math.log(median)
        self.sigma = sigma
        self.minimum = minimum
        self.maximum = maximum

    def sample(self, rng: random.Random) -> float:
        value = rng.lognormvariate(self.mu, self.sigma)
        return min(self.maximum, max(self.minimum, value))

    @property
    def upper_bound(self) -> float:
        return self.maximum

    def mean(self) -> float:
        # Clipping barely moves the mean for these parameters; report the
        # unclipped lognormal mean.
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)

    def __repr__(self) -> str:
        return (
            f"RealFareModel(median={math.exp(self.mu):.1f}, sigma={self.sigma}, "
            f"clip=[{self.minimum}, {self.maximum}])"
        )


class NormalValueModel(ValueModel):
    """Table IV's "normal" value distribution (truncated to stay positive)."""

    def __init__(self, mu: float = 20.0, sigma: float = 5.0, maximum: float = 100.0):
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        if maximum <= mu:
            raise ConfigurationError("maximum must exceed mu")
        self.mu = mu
        self.sigma = sigma
        self.maximum = maximum
        self._minimum = max(1.0, mu - 3.0 * sigma)

    def sample(self, rng: random.Random) -> float:
        value = rng.gauss(self.mu, self.sigma)
        return min(self.maximum, max(self._minimum, value))

    @property
    def upper_bound(self) -> float:
        return self.maximum

    def mean(self) -> float:
        return self.mu

    def __repr__(self) -> str:
        return f"NormalValueModel(mu={self.mu}, sigma={self.sigma})"


def make_value_model(name: str) -> ValueModel:
    """Factory for Table IV's setting names: ``"real"`` or ``"normal"``."""
    lowered = name.lower()
    if lowered == "real":
        return RealFareModel()
    if lowered == "normal":
        return NormalValueModel()
    raise ConfigurationError(
        f"unknown value distribution {name!r}; expected 'real' or 'normal'"
    )
