"""Spatial placement patterns.

The whole point of COM is the *non-uniform* distribution of workers and
requests (paper Fig. 2): in one region platform A has idle workers where
platform B has queueing requests, and vice versa.  The generators here
produce exactly that structure:

* :class:`UniformPattern` — uniform over the city box (control);
* :class:`HotspotPattern` — a mixture of Gaussian hotspots clipped to the
  box (real taxi demand is hotspot-shaped);
* :func:`complementary_hotspots` — builds, for two platforms, worker and
  request patterns over a shared hotspot set with *anti-correlated* mixture
  weights: where platform A's workers concentrate, platform A's requests
  are thin but platform B's requests are dense.  The ``skew`` knob
  interpolates from identical (0.0) to fully complementary (1.0).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point

__all__ = [
    "SpatialPattern",
    "UniformPattern",
    "HotspotPattern",
    "complementary_hotspots",
]


class SpatialPattern(ABC):
    """A distribution over locations inside a city box."""

    @abstractmethod
    def sample(self, rng: random.Random) -> Point:
        """Draw one location."""


class UniformPattern(SpatialPattern):
    """Uniform over the bounding box."""

    def __init__(self, box: BoundingBox):
        self.box = box

    def sample(self, rng: random.Random) -> Point:
        return Point(
            rng.uniform(self.box.min_x, self.box.max_x),
            rng.uniform(self.box.min_y, self.box.max_y),
        )

    def __repr__(self) -> str:
        return f"UniformPattern({self.box})"


@dataclass(frozen=True)
class _Hotspot:
    center: Point
    sigma_km: float


class HotspotPattern(SpatialPattern):
    """A weighted mixture of Gaussian hotspots, clipped to the box.

    A small ``background`` fraction of samples is uniform over the box so no
    region has literally zero density (real cities have background demand).
    """

    def __init__(
        self,
        box: BoundingBox,
        hotspots: list[tuple[Point, float]],
        weights: list[float],
        background: float = 0.10,
    ):
        if not hotspots:
            raise ConfigurationError("HotspotPattern needs at least one hotspot")
        if len(weights) != len(hotspots):
            raise ConfigurationError("weights and hotspots must align")
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise ConfigurationError("weights must be non-negative, not all zero")
        if not 0.0 <= background <= 1.0:
            raise ConfigurationError(f"background must be in [0, 1], got {background}")
        self.box = box
        self._hotspots = [_Hotspot(center, sigma) for center, sigma in hotspots]
        total = sum(weights)
        self._cumulative: list[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self.background = background
        self._uniform = UniformPattern(box)

    def sample(self, rng: random.Random) -> Point:
        if rng.random() < self.background:
            return self._uniform.sample(rng)
        pick = rng.random()
        index = 0
        while index < len(self._cumulative) - 1 and pick > self._cumulative[index]:
            index += 1
        hotspot = self._hotspots[index]
        point = Point(
            rng.gauss(hotspot.center.x, hotspot.sigma_km),
            rng.gauss(hotspot.center.y, hotspot.sigma_km),
        )
        return self.box.clamp(point)

    def __repr__(self) -> str:
        return f"HotspotPattern(n={len(self._hotspots)}, background={self.background})"


def complementary_hotspots(
    box: BoundingBox,
    hotspot_count: int,
    skew: float,
    rng: random.Random,
    sigma_km: float = 1.2,
    gradient: float = 3.0,
    background: float = 0.05,
) -> dict[str, tuple[SpatialPattern, SpatialPattern]]:
    """Fig.-2-style anti-correlated patterns for two platforms.

    Returns ``{"A": (worker_pattern, request_pattern), "B": (...)}``.

    Hotspot centres are drawn uniformly in the box.  Platform A's workers
    get geometrically graded mixture weights (ratio ``gradient`` between
    consecutive hotspots); platform A's *requests* get the reversed
    weights, and platform B mirrors A (B's workers match A's requests).
    ``skew`` interpolates between no imbalance (0.0: all four patterns
    identical) and the full gradient (1.0); it is the single knob that
    controls how much one platform's requests sit in regions dominated by
    the *other* platform's workers — i.e. how much cross-platform
    cooperation can possibly help.
    """
    if hotspot_count < 2:
        raise ConfigurationError("need at least two hotspots for complementarity")
    if not 0.0 <= skew <= 1.0:
        raise ConfigurationError(f"skew must be in [0, 1], got {skew}")
    if gradient < 1.0:
        raise ConfigurationError(f"gradient must be >= 1, got {gradient}")
    centers = [
        Point(rng.uniform(box.min_x, box.max_x), rng.uniform(box.min_y, box.max_y))
        for _ in range(hotspot_count)
    ]
    hotspots = [(center, sigma_km) for center in centers]

    # skew scales the gradient's exponent so the imbalance interpolates
    # geometrically: ratio 1 (flat) at skew 0, the full `gradient` ratio at
    # skew 1.  A linear mix would let the steep tail dominate at any skew.
    effective_ratio = gradient**skew
    forward = [effective_ratio**index for index in range(hotspot_count)]
    backward = list(reversed(forward))

    return {
        "A": (
            HotspotPattern(box, hotspots, forward, background=background),
            HotspotPattern(box, hotspots, backward, background=background),
        ),
        "B": (
            HotspotPattern(box, hotspots, backward, background=background),
            HotspotPattern(box, hotspots, forward, background=background),
        ),
    }
