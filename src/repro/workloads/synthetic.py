"""Synthetic workloads — the Table-IV scalability sweeps.

The paper's synthetic datasets draw equal numbers of requests and workers
for each of the two cooperative platforms (sampled from RDC11 / RYC11,
keeping real locations and arrival times).  Our generator reproduces the
same knobs over the simulated city model:

* ``|R|`` in {500, 1000, **2500**, 5k, 10k, 20k, 50k, 100k} (total, split
  evenly between the two platforms),
* ``|W|`` in {100, 200, **500**, 1k, 2.5k, 5k, 10k, 20k},
* ``rad`` in {0.5, 1, 1.5, 2, 2.5} km,
* value distribution in {real, normal},

with bold values the defaults, exactly as Table IV.  Locations follow the
complementary-hotspot city (Fig. 2's imbalance), arrivals the diurnal
two-peak day.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.behavior.worker_model import BehaviorOracle
from repro.core.events import EventStream
from repro.core.simulator import Scenario
from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.utils.rng import SeedSequence
from repro.workloads.arrival import DiurnalArrivals, UniformArrivals
from repro.workloads.builders import (
    BehaviorConfig,
    populate_platform,
    register_behaviors,
)
from repro.workloads.spatial import complementary_hotspots
from repro.workloads.value_models import make_value_model

__all__ = ["SyntheticWorkloadConfig", "SyntheticWorkload"]

#: Table IV sweep values (totals across both platforms).
REQUEST_SWEEP = (500, 1000, 2500, 5000, 10_000, 20_000, 50_000, 100_000)
WORKER_SWEEP = (100, 200, 500, 1000, 2500, 5000, 10_000, 20_000)
RADIUS_SWEEP = (0.5, 1.0, 1.5, 2.0, 2.5)
DEFAULT_REQUESTS = 2500
DEFAULT_WORKERS = 500


@dataclass
class SyntheticWorkloadConfig:
    """Knobs of one synthetic scenario (Table IV)."""

    request_count: int = DEFAULT_REQUESTS
    worker_count: int = DEFAULT_WORKERS
    radius_km: float = 1.0
    value_distribution: str = "real"
    #: City square side (km); the paper samples from the full Chengdu box.
    city_km: float = 20.0
    hotspot_count: int = 5
    #: Fig.-2 imbalance between the platforms' worker/request densities.
    skew: float = 0.45
    arrival: str = "diurnal"
    horizon_seconds: float = 86_400.0
    history_length: int = 50
    platform_ids: tuple[str, str] = ("A", "B")
    behavior: BehaviorConfig = field(default_factory=BehaviorConfig)
    #: Optional worker shift length (seconds); None = wait all day.
    shift_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.request_count < 2 or self.worker_count < 2:
            raise ConfigurationError("need at least one request/worker per platform")
        if len(self.platform_ids) != 2:
            raise ConfigurationError("synthetic workloads model two platforms")
        if self.arrival not in ("diurnal", "uniform"):
            raise ConfigurationError(f"unknown arrival process {self.arrival!r}")


class SyntheticWorkload:
    """Builds :class:`~repro.core.simulator.Scenario` objects from a config."""

    def __init__(self, config: SyntheticWorkloadConfig | None = None):
        self.config = config or SyntheticWorkloadConfig()

    def build(self, seed: int = 0) -> Scenario:
        """Generate one scenario deterministically from ``seed``."""
        config = self.config
        seeds = SeedSequence(seed).child("synthetic")
        box = BoundingBox.square(config.city_km)
        value_model = make_value_model(config.value_distribution)
        if config.arrival == "diurnal":
            arrivals = DiurnalArrivals(config.horizon_seconds)
            # Drivers go on duty ahead of the demand peaks they serve.
            worker_arrivals: UniformArrivals | DiurnalArrivals = DiurnalArrivals(
                config.horizon_seconds,
                peak_hours=(7.0, 17.0),
                base_level=0.8,
            )
        else:
            arrivals = UniformArrivals(config.horizon_seconds)
            worker_arrivals = arrivals

        patterns = complementary_hotspots(
            box, config.hotspot_count, config.skew, seeds.rng("hotspots")
        )
        first, second = config.platform_ids
        pattern_map = {first: patterns["A"], second: patterns["B"]}

        populations = []
        per_platform_workers = config.worker_count // 2
        per_platform_requests = config.request_count // 2
        for platform_id in config.platform_ids:
            worker_pattern, request_pattern = pattern_map[platform_id]
            populations.append(
                populate_platform(
                    platform_id=platform_id,
                    worker_count=per_platform_workers,
                    request_count=per_platform_requests,
                    worker_pattern=worker_pattern,
                    request_pattern=request_pattern,
                    arrivals=arrivals,
                    value_model=value_model,
                    worker_arrivals=worker_arrivals,
                    radius_km=config.radius_km,
                    history_length=config.history_length,
                    seeds=seeds,
                    behavior=config.behavior,
                    shift_seconds=config.shift_seconds,
                )
            )

        oracle = BehaviorOracle(seed=seeds.derived_seed("oracle"))
        register_behaviors(oracle, populations)
        workers = [worker for pop in populations for worker in pop.workers]
        requests = [request for pop in populations for request in pop.requests]
        name = (
            f"synthetic-R{config.request_count}-W{config.worker_count}"
            f"-rad{config.radius_km}-{config.value_distribution}"
        )
        return Scenario(
            events=EventStream.from_entities(workers, requests),
            oracle=oracle,
            platform_ids=list(config.platform_ids),
            value_upper_bound=value_model.upper_bound,
            name=name,
        )
