"""Arrival-time processes.

The taxi traces behind Tables III and V-VII have strongly diurnal demand
(morning and evening peaks); the synthetic sweeps inherit the real arrival
times (Table IV: "the location and arriving time ... keep same as those in
RDC11 and RYC11").  :class:`DiurnalArrivals` reproduces that two-peak shape
via inverse-CDF sampling of a mixture intensity; :class:`UniformArrivals`
is the homogeneous control.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError

__all__ = ["ArrivalProcess", "UniformArrivals", "DiurnalArrivals"]

SECONDS_PER_DAY = 86_400.0


class ArrivalProcess(ABC):
    """A distribution of arrival timestamps over a horizon."""

    @abstractmethod
    def sample_times(self, count: int, rng: random.Random) -> list[float]:
        """Draw ``count`` timestamps, sorted ascending."""

    @property
    @abstractmethod
    def horizon(self) -> float:
        """The end of the observation window (seconds)."""


class UniformArrivals(ArrivalProcess):
    """I.i.d. uniform over ``[0, horizon]`` (a homogeneous Poisson's order
    statistics)."""

    def __init__(self, horizon_seconds: float = SECONDS_PER_DAY):
        if horizon_seconds <= 0:
            raise ConfigurationError("horizon must be positive")
        self._horizon = float(horizon_seconds)

    @property
    def horizon(self) -> float:
        return self._horizon

    def sample_times(self, count: int, rng: random.Random) -> list[float]:
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return sorted(rng.uniform(0.0, self._horizon) for _ in range(count))


class DiurnalArrivals(ArrivalProcess):
    """Two-peak diurnal intensity (default peaks: 08:30 and 18:30).

    The intensity is ``base + sum_i amplitude * N(peak_i, width)`` over a
    day; samples come from rejection-free inverse-CDF over a fine grid.
    """

    def __init__(
        self,
        horizon_seconds: float = SECONDS_PER_DAY,
        peak_hours: tuple[float, ...] = (8.5, 18.5),
        peak_width_hours: float = 1.8,
        base_level: float = 0.35,
        grid_size: int = 288,
    ):
        if horizon_seconds <= 0:
            raise ConfigurationError("horizon must be positive")
        if not peak_hours:
            raise ConfigurationError("need at least one peak")
        if peak_width_hours <= 0 or base_level < 0:
            raise ConfigurationError("bad peak_width/base_level")
        self._horizon = float(horizon_seconds)
        self.peak_hours = peak_hours
        self.peak_width_hours = peak_width_hours
        self.base_level = base_level
        self._cdf_grid = self._build_cdf(grid_size)

    @property
    def horizon(self) -> float:
        return self._horizon

    def _intensity(self, hour: float) -> float:
        value = self.base_level
        for peak in self.peak_hours:
            z = (hour - peak) / self.peak_width_hours
            value += math.exp(-0.5 * z * z)
        return value

    def _build_cdf(self, grid_size: int) -> list[float]:
        hours_span = self._horizon / 3600.0
        masses = []
        for index in range(grid_size):
            hour = (index + 0.5) / grid_size * hours_span
            masses.append(self._intensity(hour))
        total = sum(masses)
        cumulative = []
        running = 0.0
        for mass in masses:
            running += mass / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        return cumulative

    def sample_times(self, count: int, rng: random.Random) -> list[float]:
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        grid_size = len(self._cdf_grid)
        cell_span = self._horizon / grid_size
        times = []
        for _ in range(count):
            pick = rng.random()
            low, high = 0, grid_size - 1
            while low < high:
                mid = (low + high) // 2
                if self._cdf_grid[mid] < pick:
                    low = mid + 1
                else:
                    high = mid
            # Uniform within the selected grid cell.
            times.append((low + rng.random()) * cell_span)
        times.sort()
        return times
