"""Scenario serialization — share and archive workload instances.

A :class:`~repro.core.simulator.Scenario` round-trips through JSON so that
experiment inputs can be archived next to their results, shipped in bug
reports, or regenerated bit-for-bit on another machine without rerunning
the generators.

Worker behaviour serializes via each worker's *history* (the generators
equip every worker with an :class:`~repro.behavior.distributions.
EmpiricalDistribution` over their history, so history + oracle seed/mode
reconstructs behaviour exactly).  Scenarios holding analytic distributions
(hand-built test fixtures) are rejected with a clear error rather than
silently altered.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.behavior.distributions import EmpiricalDistribution
from repro.behavior.worker_model import BehaviorOracle, WorkerBehavior
from repro.core.entities import Request, Worker
from repro.core.events import EventStream
from repro.core.simulator import Scenario
from repro.errors import WorkloadError
from repro.geo.point import Point

__all__ = ["scenario_to_dict", "scenario_from_dict", "save_scenario", "load_scenario"]

FORMAT_VERSION = 1


def scenario_to_dict(scenario: Scenario) -> dict:
    """A JSON-ready representation of a scenario."""
    workers = []
    for worker in scenario.events.workers:
        if worker.worker_id not in scenario.oracle:
            raise WorkloadError(
                f"worker {worker.worker_id} has no registered behaviour; "
                "only fully generated scenarios serialize"
            )
        behavior = scenario.oracle.behavior_of(worker.worker_id)
        if not isinstance(behavior.distribution, EmpiricalDistribution):
            raise WorkloadError(
                f"worker {worker.worker_id} uses a non-empirical reservation "
                "distribution; serialization supports generator-built "
                "scenarios (empirical behaviour) only"
            )
        workers.append(
            {
                "id": worker.worker_id,
                "platform": worker.platform_id,
                "t": worker.arrival_time,
                "x": worker.location.x,
                "y": worker.location.y,
                "radius": worker.service_radius,
                "shareable": worker.shareable,
                "departure": worker.departure_time,
                "history": behavior.history,
            }
        )
    requests = [
        {
            "id": request.request_id,
            "platform": request.platform_id,
            "t": request.arrival_time,
            "x": request.location.x,
            "y": request.location.y,
            "value": request.value,
        }
        for request in scenario.events.requests
    ]
    return {
        "format": FORMAT_VERSION,
        "name": scenario.name,
        "platform_ids": scenario.platform_ids,
        "value_upper_bound": scenario.value_upper_bound,
        "oracle": {"seed": scenario.oracle.seed, "mode": scenario.oracle.mode},
        "workers": workers,
        "requests": requests,
    }


def scenario_from_dict(payload: dict) -> Scenario:
    """Reconstruct a scenario from :func:`scenario_to_dict`'s output."""
    if payload.get("format") != FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported scenario format {payload.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    oracle_info = payload["oracle"]
    oracle = BehaviorOracle(seed=oracle_info["seed"], mode=oracle_info["mode"])
    workers: list[Worker] = []
    for entry in payload["workers"]:
        workers.append(
            Worker(
                worker_id=entry["id"],
                platform_id=entry["platform"],
                arrival_time=entry["t"],
                location=Point(entry["x"], entry["y"]),
                service_radius=entry["radius"],
                shareable=entry["shareable"],
                departure_time=entry["departure"],
            )
        )
        history = entry["history"]
        oracle.register(
            WorkerBehavior(entry["id"], EmpiricalDistribution(history), history)
        )
    requests = [
        Request(
            request_id=entry["id"],
            platform_id=entry["platform"],
            arrival_time=entry["t"],
            location=Point(entry["x"], entry["y"]),
            value=entry["value"],
        )
        for entry in payload["requests"]
    ]
    return Scenario(
        events=EventStream.from_entities(workers, requests),
        oracle=oracle,
        platform_ids=list(payload["platform_ids"]),
        value_upper_bound=payload["value_upper_bound"],
        name=payload["name"],
    )


def save_scenario(scenario: Scenario, path: str | Path) -> Path:
    """Write a scenario to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(scenario_to_dict(scenario)))
    return path


def load_scenario(path: str | Path) -> Scenario:
    """Read a scenario saved by :func:`save_scenario`."""
    return scenario_from_dict(json.loads(Path(path).read_text()))
