"""Spatial substrate: points, distances, bounding boxes, and spatial indexes.

COM's *range constraint* (Definition 2.6) requires, for every incoming
request, the set of waiting workers whose service disk covers the request's
location.  At the paper's scales (up to 100k requests x 20k workers) a linear
scan per request is the dominant cost, so the waiting lists are backed by a
uniform :class:`GridIndex` (the classic choice for uniformly bounded query
radii).  A from-scratch :class:`KDTree` is provided for nearest-neighbour
tie-breaking and as an alternative index.

Distances default to Euclidean in km on a planar city model (the paper uses
Euclidean; §II notes road-network distance is a drop-in change).  Haversine
is included for lat/lon trace data.
"""

from repro.geo.point import Point
from repro.geo.bbox import BoundingBox
from repro.geo.distance import (
    euclidean,
    euclidean_squared,
    haversine_km,
    manhattan,
)
from repro.geo.grid_index import GridIndex
from repro.geo.kdtree import KDTree
from repro.geo.roadnet import RoadNetwork

__all__ = [
    "Point",
    "BoundingBox",
    "euclidean",
    "euclidean_squared",
    "haversine_km",
    "manhattan",
    "GridIndex",
    "KDTree",
    "RoadNetwork",
]
