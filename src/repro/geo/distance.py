"""Distance functions.

The paper's model uses planar Euclidean distance; §II remarks that road
network (shortest-path) distance is a drop-in replacement because only the
*service range predicate* changes.  We provide Euclidean (default),
Manhattan (a simple road-grid proxy used by the road-network extension), and
haversine for geographic traces.
"""

from __future__ import annotations

import math

from repro.geo.point import Point

__all__ = ["euclidean", "euclidean_squared", "manhattan", "haversine_km"]

EARTH_RADIUS_KM = 6371.0088


def euclidean(a: Point, b: Point) -> float:
    """Planar Euclidean distance."""
    return math.hypot(a.x - b.x, a.y - b.y)


def euclidean_squared(a: Point, b: Point) -> float:
    """Squared planar Euclidean distance."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def manhattan(a: Point, b: Point) -> float:
    """L1 distance — the simplest road-grid travel model."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def haversine_km(a: Point, b: Point) -> float:
    """Great-circle distance in kilometres.

    Points are interpreted as ``(x=longitude, y=latitude)`` in degrees.
    Used when loading geographic trace data instead of the planar city model.
    """
    lon1, lat1 = math.radians(a.x), math.radians(a.y)
    lon2, lat2 = math.radians(b.x), math.radians(b.y)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))
