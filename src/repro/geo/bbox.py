"""Axis-aligned bounding boxes.

Used by the workload generators (a city is a bounding box populated with
hotspots) and by the spatial indexes (grid extents, k-d tree pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geo.point import Point

__all__ = ["BoundingBox"]


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ConfigurationError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def square(cls, side_km: float) -> "BoundingBox":
        """A ``side_km`` x ``side_km`` box anchored at the origin."""
        if side_km <= 0:
            raise ConfigurationError(f"square side must be positive, got {side_km}")
        return cls(0.0, 0.0, side_km, side_km)

    @classmethod
    def around(cls, points: list[Point]) -> "BoundingBox":
        """The tightest box containing ``points`` (non-empty)."""
        if not points:
            raise ConfigurationError("BoundingBox.around requires at least one point")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Rectangle area."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """The box's centroid."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """True iff ``point`` is inside the closed box."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the box (nearest point inside it)."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )

    def expand(self, margin: float) -> "BoundingBox":
        """Return a box grown by ``margin`` on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def intersects_disk(self, center: Point, radius: float) -> bool:
        """True iff the closed disk ``(center, radius)`` touches the box."""
        clamped = self.clamp(center)
        return clamped.squared_distance_to(center) <= radius * radius
