"""Road-network distances — the paper's §II extension.

    "Although COM uses the Euclidean distance, without loss of generality,
    it can be equivalently changed into the shortest path distance in road
    networks by just changing the service range from circulars to
    irregular shapes."

This module provides that drop-in change: a :class:`RoadNetwork` is a
weighted graph over the city whose shortest-path metric replaces Euclidean
distance in the range constraint.  The default construction is a grid
lattice (Manhattan-style street plan) with a configurable fraction of
blocked segments, which produces exactly the irregular service shapes the
paper describes.

Key property used by the eligibility pipeline: for networks whose edge
lengths are the Euclidean lengths of their segments, the road distance is
always >= the Euclidean distance, so a Euclidean radius query remains a
*sound prefilter* — road-network mode only removes candidates.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.grid_index import GridIndex
from repro.utils.rng import derive_rng
from repro.geo.point import Point

__all__ = ["RoadNetwork"]


class RoadNetwork:
    """A weighted undirected road graph with a shortest-path metric.

    Nodes are intersections; points snap to their nearest node, and the
    distance between two points is (snap distance) + (shortest path) +
    (snap distance).  Distances between unreachable components are
    ``inf``.
    """

    #: Max per-network cached single-source shortest-path trees.
    PATH_CACHE_LIMIT = 2048

    def __init__(self) -> None:
        self._nodes: list[Point] = []
        self._adjacency: list[dict[int, float]] = []
        self._path_cache: OrderedDict[int, list[float]] = OrderedDict()
        self._node_index: GridIndex | None = None

    # -- construction --------------------------------------------------------

    def add_node(self, point: Point) -> int:
        """Add an intersection; returns its node id."""
        self._nodes.append(point)
        self._adjacency.append({})
        self._node_index = None  # rebuilt lazily on the next snap query
        self._path_cache.clear()  # cached trees lack the new node
        return len(self._nodes) - 1

    def add_road(self, a: int, b: int, length: float | None = None) -> None:
        """Connect two intersections (defaults to their Euclidean length)."""
        if not (0 <= a < len(self._nodes) and 0 <= b < len(self._nodes)):
            raise ConfigurationError("unknown node id")
        if a == b:
            raise ConfigurationError("self-loops are not roads")
        if length is None:
            length = self._nodes[a].distance_to(self._nodes[b])
        if length <= 0:
            raise ConfigurationError(f"road length must be positive, got {length}")
        self._adjacency[a][b] = length
        self._adjacency[b][a] = length
        self._path_cache.clear()  # cached trees predate this road

    @classmethod
    def grid(
        cls,
        box: BoundingBox,
        spacing_km: float = 0.25,
        blocked_fraction: float = 0.0,
        seed: int = 0,
    ) -> "RoadNetwork":
        """A street lattice over ``box``.

        ``blocked_fraction`` removes that share of segments at random
        (rivers, one-ways, construction), creating irregular service
        shapes.  Removal never disconnects deliberately — callers asking
        for extreme fractions accept unreachable pockets (distance inf).
        """
        if spacing_km <= 0:
            raise ConfigurationError("spacing must be positive")
        if not 0.0 <= blocked_fraction < 1.0:
            raise ConfigurationError("blocked_fraction must be in [0, 1)")
        network = cls()
        columns = max(2, int(math.ceil(box.width / spacing_km)) + 1)
        rows = max(2, int(math.ceil(box.height / spacing_km)) + 1)
        ids: dict[tuple[int, int], int] = {}
        for row in range(rows):
            for column in range(columns):
                point = Point(
                    min(box.max_x, box.min_x + column * spacing_km),
                    min(box.max_y, box.min_y + row * spacing_km),
                )
                ids[(row, column)] = network.add_node(point)
        rng = derive_rng(seed, "geo/roadnet/lattice")
        for row in range(rows):
            for column in range(columns):
                if column + 1 < columns and rng.random() >= blocked_fraction:
                    network.add_road(ids[(row, column)], ids[(row, column + 1)])
                if row + 1 < rows and rng.random() >= blocked_fraction:
                    network.add_road(ids[(row, column)], ids[(row + 1, column)])
        return network

    # -- queries --------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of intersections."""
        return len(self._nodes)

    def nearest_node(self, point: Point) -> tuple[int, float]:
        """The closest intersection to ``point`` and its distance."""
        if not self._nodes:
            raise ConfigurationError("empty road network")
        if self._node_index is None:
            index = GridIndex(cell_size=0.5)
            for node_id, node in enumerate(self._nodes):
                index.insert(node_id, node)
            self._node_index = index
        found = self._node_index.nearest(point)
        assert found is not None
        return found

    def _shortest_paths_from(self, source: int) -> list[float]:
        distances = [math.inf] * len(self._nodes)
        distances[source] = 0.0
        heap = [(0.0, source)]
        while heap:
            distance, node = heapq.heappop(heap)
            if distance > distances[node]:
                continue
            for neighbour, length in self._adjacency[node].items():
                candidate = distance + length
                if candidate < distances[neighbour]:
                    distances[neighbour] = candidate
                    heapq.heappush(heap, (candidate, neighbour))
        return distances

    def node_distance(self, a: int, b: int) -> float:
        """Shortest-path distance between two intersections."""
        return self._cached_paths(a)[b]

    def _cached_paths(self, source: int) -> list[float]:
        cached = self._path_cache.get(source)
        if cached is not None:
            self._path_cache.move_to_end(source)
            return cached
        paths = self._shortest_paths_from(source)
        self._path_cache[source] = paths
        if len(self._path_cache) > self.PATH_CACHE_LIMIT:
            self._path_cache.popitem(last=False)
        return paths

    def distance(self, a: Point, b: Point) -> float:
        """Road distance between two arbitrary points (snap + path + snap)."""
        node_a, snap_a = self.nearest_node(a)
        node_b, snap_b = self.nearest_node(b)
        path = self.node_distance(node_a, node_b)
        if math.isinf(path):
            return math.inf
        return snap_a + path + snap_b

    def within(self, a: Point, b: Point, radius: float) -> bool:
        """Range predicate under the road metric."""
        # Road distance dominates Euclidean (edge lengths are Euclidean),
        # so a cheap Euclidean rejection comes first.
        if a.squared_distance_to(b) > radius * radius:
            return False
        return self.distance(a, b) <= radius
