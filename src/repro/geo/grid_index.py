"""Uniform-grid spatial index.

The workhorse index behind every waiting list.  Workers are inserted under a
hashable key at a point; an incoming request asks for all workers within a
query radius (the maximum service radius present — each candidate is then
filtered against its own radius by the caller, which keeps the index fully
generic).

A uniform grid is the right structure here because the paper's service radii
are tightly bounded (0.5-2.5 km) while the city spans tens of km: queries
touch O(1) cells and the index supports O(1) delete, which matters because a
matched worker must leave the index immediately (1-by-1 constraint).
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterator

from repro.errors import ConfigurationError
from repro.geo.point import Point

__all__ = ["GridIndex"]


class GridIndex:
    """A dynamic point index over an unbounded plane.

    Parameters
    ----------
    cell_size:
        Edge length of a grid cell.  Choose close to the typical query
        radius; queries enumerate ``ceil(r / cell_size)``-ring neighbourhoods.
    """

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], dict[Hashable, Point]] = {}
        self._locations: dict[Hashable, Point] = {}

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._locations

    def _cell_of(self, point: Point) -> tuple[int, int]:
        return (
            int(math.floor(point.x / self.cell_size)),
            int(math.floor(point.y / self.cell_size)),
        )

    def insert(self, key: Hashable, point: Point) -> None:
        """Insert ``key`` at ``point``; re-inserting an existing key moves it."""
        if key in self._locations:
            self.remove(key)
        cell = self._cell_of(point)
        self._cells.setdefault(cell, {})[key] = point
        self._locations[key] = point

    def remove(self, key: Hashable) -> None:
        """Remove ``key``; raises ``KeyError`` if absent."""
        point = self._locations.pop(key)
        cell = self._cell_of(point)
        bucket = self._cells[cell]
        del bucket[key]
        if not bucket:
            del self._cells[cell]

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` if present; no-op otherwise."""
        if key in self._locations:
            self.remove(key)

    def location_of(self, key: Hashable) -> Point:
        """Return the stored location of ``key``."""
        return self._locations[key]

    def query_radius(self, center: Point, radius: float) -> list[Hashable]:
        """All keys within the closed disk ``(center, radius)``.

        Results are unordered; callers needing determinism should sort.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        reach = int(math.ceil(radius / self.cell_size))
        center_cell = self._cell_of(center)
        radius_squared = radius * radius
        found: list[Hashable] = []
        for cell_x in range(center_cell[0] - reach, center_cell[0] + reach + 1):
            for cell_y in range(center_cell[1] - reach, center_cell[1] + reach + 1):
                bucket = self._cells.get((cell_x, cell_y))
                if not bucket:
                    continue
                for key, point in bucket.items():
                    if point.squared_distance_to(center) <= radius_squared:
                        found.append(key)
        return found

    def nearest(self, center: Point) -> tuple[Hashable, float] | None:
        """The closest key to ``center`` and its distance, or ``None`` if empty.

        Expands ring by ring from the centre cell; terminates once the ring's
        minimum possible distance exceeds the best found.
        """
        if not self._locations:
            return None
        center_cell = self._cell_of(center)
        best_key: Hashable | None = None
        best_squared = math.inf
        ring = 0
        max_ring = self._max_ring(center_cell)
        while ring <= max_ring:
            for cell in self._ring_cells(center_cell, ring):
                bucket = self._cells.get(cell)
                if not bucket:
                    continue
                for key, point in bucket.items():
                    squared = point.squared_distance_to(center)
                    if squared < best_squared:
                        best_squared = squared
                        best_key = key
            if best_key is not None:
                # Points in farther rings are at least (ring * cell) away from
                # the center cell's boundary; stop once that exceeds best.
                guaranteed = ring * self.cell_size
                if guaranteed * guaranteed > best_squared:
                    break
            ring += 1
        assert best_key is not None
        return best_key, math.sqrt(best_squared)

    def _max_ring(self, center_cell: tuple[int, int]) -> int:
        reach = 0
        for cell_x, cell_y in self._cells:
            reach = max(
                reach, abs(cell_x - center_cell[0]), abs(cell_y - center_cell[1])
            )
        return reach

    @staticmethod
    def _ring_cells(
        center: tuple[int, int], ring: int
    ) -> Iterator[tuple[int, int]]:
        cx, cy = center
        if ring == 0:
            yield (cx, cy)
            return
        for x in range(cx - ring, cx + ring + 1):
            yield (x, cy - ring)
            yield (x, cy + ring)
        for y in range(cy - ring + 1, cy + ring):
            yield (cx - ring, y)
            yield (cx + ring, y)

    def items(self) -> Iterator[tuple[Hashable, Point]]:
        """Iterate over ``(key, point)`` pairs (unordered)."""
        return iter(self._locations.items())

    def clear(self) -> None:
        """Remove everything."""
        self._cells.clear()
        self._locations.clear()
