"""A from-scratch 2-d k-d tree.

Static index built once over a point set; supports nearest-neighbour and
radius queries with standard branch-and-bound pruning.  The online waiting
lists use :class:`~repro.geo.grid_index.GridIndex` (dynamic deletes); the
k-d tree serves the offline baseline (batch eligibility-graph construction)
and is cross-checked against brute force in the property tests.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Sequence

from repro.errors import ConfigurationError
from repro.geo.point import Point

__all__ = ["KDTree"]


class _Node:
    __slots__ = ("key", "point", "axis", "left", "right")

    def __init__(self, key: Hashable, point: Point, axis: int):
        self.key = key
        self.point = point
        self.axis = axis
        self.left: _Node | None = None
        self.right: _Node | None = None


class KDTree:
    """An immutable 2-d tree over ``(key, point)`` pairs.

    Built by median splitting, guaranteeing O(log n) expected depth
    regardless of input order.
    """

    def __init__(self, items: Sequence[tuple[Hashable, Point]]):
        self._size = len(items)
        self._root = self._build(list(items), depth=0)

    def __len__(self) -> int:
        return self._size

    @classmethod
    def _build(
        cls, items: list[tuple[Hashable, Point]], depth: int
    ) -> _Node | None:
        if not items:
            return None
        axis = depth % 2
        items.sort(key=lambda pair: pair[1].x if axis == 0 else pair[1].y)
        median = len(items) // 2
        key, point = items[median]
        node = _Node(key, point, axis)
        node.left = cls._build(items[:median], depth + 1)
        node.right = cls._build(items[median + 1 :], depth + 1)
        return node

    @staticmethod
    def _coordinate(point: Point, axis: int) -> float:
        return point.x if axis == 0 else point.y

    def nearest(self, target: Point) -> tuple[Hashable, float] | None:
        """The nearest stored key to ``target`` and its distance."""
        if self._root is None:
            return None
        best: list[object] = [None, math.inf]  # key, squared distance

        def visit(node: _Node | None) -> None:
            if node is None:
                return
            squared = node.point.squared_distance_to(target)
            if squared < best[1]:
                best[0] = node.key
                best[1] = squared
            delta = self._coordinate(target, node.axis) - self._coordinate(
                node.point, node.axis
            )
            near, far = (node.left, node.right) if delta <= 0 else (node.right, node.left)
            visit(near)
            if delta * delta < best[1]:
                visit(far)

        visit(self._root)
        return best[0], math.sqrt(best[1])  # type: ignore[arg-type]

    def query_radius(self, center: Point, radius: float) -> list[Hashable]:
        """All keys within the closed disk ``(center, radius)``."""
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        radius_squared = radius * radius
        found: list[Hashable] = []

        def visit(node: _Node | None) -> None:
            if node is None:
                return
            if node.point.squared_distance_to(center) <= radius_squared:
                found.append(node.key)
            delta = self._coordinate(center, node.axis) - self._coordinate(
                node.point, node.axis
            )
            if delta <= radius:
                visit(node.left)
            if delta >= -radius:
                visit(node.right)

        visit(self._root)
        return found
