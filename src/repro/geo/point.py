"""Immutable 2-D points.

Locations of requests and workers (Definitions 2.1-2.3) live in a planar 2-D
space measured in kilometres.  :class:`Point` is a frozen dataclass so it can
be shared freely between waiting lists, indexes, and matchings without
defensive copies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Point"]


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the 2-D plane (kilometre units in the city model)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt for comparisons)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def within(self, other: "Point", radius: float) -> bool:
        """True iff ``other`` lies inside this point's closed ``radius`` disk."""
        return self.squared_distance_to(other) <= radius * radius

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y
