"""Graph substrate: bipartite graphs and the matching/flow algorithms the
offline baseline and competitive-ratio experiments rely on.

The paper reduces offline COM to maximum-weight bipartite matching (§II-B,
Fig. 4, citing Ahuja et al. [11]).  We implement:

* :class:`BipartiteGraph` — a sparse weighted bipartite graph;
* :func:`max_weight_matching` — successive-shortest-paths (min-cost-flow)
  maximum-weight matching on sparse graphs, optimal and fast enough for the
  table-scale experiments;
* :func:`hungarian_dense` — the classic O(n^3) Hungarian algorithm on dense
  matrices, cross-checked against ``scipy.optimize.linear_sum_assignment``
  in the property tests;
* :class:`HopcroftKarp` — maximum-cardinality matching (used by the
  RANKING baseline's offline reference and tests);
* :class:`Dinic` — maximum flow (the Kazemi-GeoCrowd [8] reduction
  substrate and an extension baseline).
"""

from repro.graph.bipartite import BipartiteGraph, MatchingResult
from repro.graph.auction import auction_matching
from repro.graph.hungarian import hungarian_dense, max_weight_matching
from repro.graph.hopcroft_karp import HopcroftKarp
from repro.graph.maxflow import Dinic

__all__ = [
    "BipartiteGraph",
    "MatchingResult",
    "hungarian_dense",
    "max_weight_matching",
    "auction_matching",
    "HopcroftKarp",
    "Dinic",
]
