"""Hopcroft-Karp maximum-cardinality bipartite matching.

Used by the unweighted baselines (RANKING's offline reference point) and by
the test suite as an independent check on matching feasibility.  Runs in
``O(E * sqrt(V))``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.graph.bipartite import BipartiteGraph, MatchingResult

__all__ = ["HopcroftKarp"]

_INF = float("inf")


class HopcroftKarp:
    """Maximum-cardinality matching over a :class:`BipartiteGraph`.

    Edge weights are ignored; only adjacency matters.

    >>> graph = BipartiteGraph()
    >>> graph.add_edge("r1", "w1", 1.0)
    >>> graph.add_edge("r2", "w1", 1.0)
    >>> HopcroftKarp(graph).solve().cardinality
    1
    """

    def __init__(self, graph: BipartiteGraph):
        self._graph = graph
        self._adjacency = [
            list(neighbours.keys()) for neighbours in graph.adjacency_by_id()
        ]
        self._left_count = graph.left_count
        self._right_count = graph.right_count
        self._match_left = [-1] * self._left_count
        self._match_right = [-1] * self._right_count
        self._distance: list[float] = []

    def _bfs(self) -> bool:
        self._distance = [_INF] * self._left_count
        queue: deque[int] = deque()
        for left in range(self._left_count):
            if self._match_left[left] == -1:
                self._distance[left] = 0
                queue.append(left)
        found_augmenting = False
        while queue:
            left = queue.popleft()
            for right in self._adjacency[left]:
                matched = self._match_right[right]
                if matched == -1:
                    found_augmenting = True
                elif self._distance[matched] == _INF:
                    self._distance[matched] = self._distance[left] + 1
                    queue.append(matched)
        return found_augmenting

    def _dfs(self, left: int) -> bool:
        for right in self._adjacency[left]:
            matched = self._match_right[right]
            if matched == -1 or (
                self._distance[matched] == self._distance[left] + 1
                and self._dfs(matched)
            ):
                self._match_left[left] = right
                self._match_right[right] = left
                return True
        self._distance[left] = _INF
        return False

    def solve(self) -> MatchingResult:
        """Compute and return the maximum-cardinality matching."""
        while self._bfs():
            for left in range(self._left_count):
                if self._match_left[left] == -1:
                    self._dfs(left)
        result = MatchingResult()
        for left, right in enumerate(self._match_left):
            if right == -1:
                continue
            left_key: Hashable = self._graph.left_key_of(left)
            right_key: Hashable = self._graph.right_key_of(right)
            result.pairs[left_key] = right_key
            weight = self._graph.adjacency_by_id()[left].get(right, 0.0)
            result.total_weight += weight
        return result
