"""Maximum-weight bipartite matching.

Two implementations, both exact:

* :func:`max_weight_matching` — sparse successive-shortest-paths with
  Johnson potentials (the incremental Jonker-Volgenant scheme).  Each left
  vertex additionally owns a private zero-weight *dummy* column, which makes
  every row matchable and turns "leave this request unserved" into an
  ordinary assignment; maximizing total weight is converted to minimizing
  ``W - w`` with ``W`` the maximum edge weight, so all reduced costs stay
  non-negative and Dijkstra applies.  Complexity ``O(L * (E + V) log V)``.

* :func:`hungarian_dense` — the classical O(n^3) Hungarian algorithm on a
  dense cost matrix (minimization form).  Used for small instances and
  cross-checked against ``scipy.optimize.linear_sum_assignment`` in the
  property tests.

The offline COM baseline (paper §II-B / Fig. 4) builds a
:class:`~repro.graph.bipartite.BipartiteGraph` of eligible request-worker
pairs and calls :func:`max_weight_matching`.
"""

from __future__ import annotations

import heapq
import math

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, MatchingResult

__all__ = ["max_weight_matching", "hungarian_dense"]


def max_weight_matching(graph: BipartiteGraph) -> MatchingResult:
    """Exact maximum-weight bipartite matching of a sparse graph.

    Vertices may remain unmatched; only edges present in ``graph`` can be
    used.  Edges with non-positive weight are never chosen (matching them
    cannot increase the total weight, and the dummy column dominates them).
    """
    adjacency = graph.adjacency_by_id()
    left_count = graph.left_count
    right_count = graph.right_count
    if left_count == 0 or right_count == 0:
        return MatchingResult()

    max_weight = max(
        (weight for neighbours in adjacency for weight in neighbours.values()),
        default=0.0,
    )
    if max_weight <= 0.0:
        return MatchingResult()

    # Column ids: real columns [0, right_count); dummy for row i is
    # right_count + i.  cost(l, r) = max_weight - w(l, r); dummy cost =
    # max_weight (i.e. w = 0).
    total_columns = right_count + left_count
    match_col: list[int] = [-1] * total_columns  # column -> row
    match_row: list[int] = [-1] * left_count  # row -> column
    potential_row = [0.0] * left_count
    potential_col = [0.0] * total_columns

    def edge_cost(row: int, column: int) -> float:
        if column >= right_count:
            return max_weight  # dummy: weight 0
        return max_weight - adjacency[row][column]

    def columns_of(row: int):
        yield from adjacency[row].keys()
        yield right_count + row  # the row's private dummy

    for source_row in range(left_count):
        # Dijkstra from source_row over reduced costs.
        dist_final: dict[int, float] = {}
        parent_col: dict[int, int | None] = {}
        # Heap entries carry (distance, column, via); -1 encodes "reached
        # directly from the source row" so tuple comparison never touches a
        # None (columns are ints, ties fall through to the via field).
        heap: list[tuple[float, int, int]] = []
        for column in columns_of(source_row):
            reduced = (
                edge_cost(source_row, column)
                - potential_row[source_row]
                - potential_col[column]
            )
            heapq.heappush(heap, (reduced, column, -1))
        free_column = -1
        free_distance = math.inf
        while heap:
            distance, column, via_raw = heapq.heappop(heap)
            via = None if via_raw == -1 else via_raw
            if column in dist_final:
                continue
            dist_final[column] = distance
            parent_col[column] = via
            if match_col[column] == -1:
                free_column = column
                free_distance = distance
                break
            row = match_col[column]
            for next_column in columns_of(row):
                if next_column in dist_final:
                    continue
                reduced = (
                    edge_cost(row, next_column)
                    - potential_row[row]
                    - potential_col[next_column]
                )
                heapq.heappush(heap, (distance + reduced, next_column, column))
        if free_column == -1:  # pragma: no cover - dummy guarantees a path
            raise GraphError("no augmenting path found; dummy column missing?")

        # Potential update keeps all reduced costs non-negative and matched
        # edges tight.
        potential_row[source_row] += free_distance
        for column, distance in dist_final.items():
            if column == free_column:
                continue
            slack = free_distance - distance
            potential_col[column] -= slack
            row = match_col[column]
            if row != -1:
                potential_row[row] += slack

        # Augment along the alternating path.
        column = free_column
        while True:
            previous = parent_col[column]
            if previous is None:
                match_col[column] = source_row
                match_row[source_row] = column
                break
            row = match_col[previous]
            match_col[column] = row
            match_row[row] = column
            column = previous

    result = MatchingResult()
    for row, column in enumerate(match_row):
        if column < 0 or column >= right_count:
            continue  # unmatched or parked on its dummy
        weight = adjacency[row][column]
        if weight <= 0.0:
            continue
        result.pairs[graph.left_key_of(row)] = graph.right_key_of(column)
        result.total_weight += weight
    return result


def hungarian_dense(cost: list[list[float]]) -> tuple[list[int], float]:
    """Classical Hungarian algorithm, minimization form.

    Parameters
    ----------
    cost:
        A rectangular matrix ``cost[row][column]`` with ``rows <= columns``.
        Every row is assigned to a distinct column.

    Returns
    -------
    ``(assignment, total_cost)`` where ``assignment[row]`` is the column
    assigned to ``row``.

    Notes
    -----
    This is the O(n^2 m) potential-based formulation (e-maxx/JV style) using
    1-based sentinel column 0.  It accepts negative costs.
    """
    rows = len(cost)
    if rows == 0:
        return [], 0.0
    columns = len(cost[0])
    if any(len(row) != columns for row in cost):
        raise GraphError("cost matrix is ragged")
    if rows > columns:
        raise GraphError(
            f"hungarian_dense requires rows <= columns, got {rows}x{columns}"
        )

    INF = math.inf
    u = [0.0] * (rows + 1)
    v = [0.0] * (columns + 1)
    way = [0] * (columns + 1)
    match = [0] * (columns + 1)  # column -> row (1-based; 0 = free)

    for row in range(1, rows + 1):
        match[0] = row
        current_column = 0
        minv = [INF] * (columns + 1)
        used = [False] * (columns + 1)
        while True:
            used[current_column] = True
            row_here = match[current_column]
            delta = INF
            next_column = 0
            for column in range(1, columns + 1):
                if used[column]:
                    continue
                reduced = cost[row_here - 1][column - 1] - u[row_here] - v[column]
                if reduced < minv[column]:
                    minv[column] = reduced
                    way[column] = current_column
                if minv[column] < delta:
                    delta = minv[column]
                    next_column = column
            for column in range(columns + 1):
                if used[column]:
                    u[match[column]] += delta
                    v[column] -= delta
                else:
                    minv[column] -= delta
            current_column = next_column
            if match[current_column] == 0:
                break
        while current_column != 0:
            previous = way[current_column]
            match[current_column] = match[previous]
            current_column = previous

    assignment = [-1] * rows
    total = 0.0
    for column in range(1, columns + 1):
        if match[column] != 0:
            assignment[match[column] - 1] = column - 1
            total += cost[match[column] - 1][column - 1]
    return assignment, total
