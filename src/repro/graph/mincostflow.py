"""Min-cost-flow solver specialised for capacitated assignment.

The reentry variant of the offline baseline needs a *b-matching*: each
request has unit capacity but a worker may serve up to ``c_w`` requests (one
per service slot in the horizon).  Expanding workers into copies explodes
the graph (tables run with ~70 slots/worker); solving the equivalent
min-cost flow keeps one node per worker.

Network: S -> request (cap 1, cost 0) -> worker (cap 1, cost -w) ->
T (cap c_w, cost 0).  We send augmenting flow along successive shortest
paths (Dijkstra with Johnson potentials) and stop augmenting a given
request once its best path has non-negative cost; with per-request dummy
sinks this is the standard incremental assignment scheme, generalised so a
machine with spare capacity counts as a free column.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Hashable

from repro.errors import GraphError

__all__ = ["CapacitatedAssignment"]


class CapacitatedAssignment:
    """Maximum-weight assignment of unit jobs to capacitated machines.

    Jobs may remain unassigned; only positive-weight assignments are made.

    >>> solver = CapacitatedAssignment()
    >>> solver.set_capacity("w", 2)
    >>> solver.add_edge("r1", "w", 5.0)
    >>> solver.add_edge("r2", "w", 3.0)
    >>> pairs, weight = solver.solve()
    >>> weight
    8.0
    """

    def __init__(self) -> None:
        self._job_ids: dict[Hashable, int] = {}
        self._jobs: list[Hashable] = []
        self._machine_ids: dict[Hashable, int] = {}
        self._machines: list[Hashable] = []
        self._capacity: list[int] = []
        self._adjacency: list[dict[int, float]] = []  # job -> {machine: weight}

    def set_capacity(self, machine: Hashable, capacity: int) -> None:
        """Declare a machine and its capacity (replaces a prior value)."""
        if capacity < 0:
            raise GraphError(f"capacity must be non-negative, got {capacity}")
        index = self._machine_index(machine)
        self._capacity[index] = capacity

    def _machine_index(self, machine: Hashable) -> int:
        if machine not in self._machine_ids:
            self._machine_ids[machine] = len(self._machines)
            self._machines.append(machine)
            self._capacity.append(1)
        return self._machine_ids[machine]

    def _job_index(self, job: Hashable) -> int:
        if job not in self._job_ids:
            self._job_ids[job] = len(self._jobs)
            self._jobs.append(job)
            self._adjacency.append({})
        return self._job_ids[job]

    def add_edge(self, job: Hashable, machine: Hashable, weight: float) -> None:
        """Job may run on machine for ``weight`` gain (must be finite)."""
        if weight != weight or weight in (math.inf, -math.inf):
            raise GraphError(f"weight must be finite, got {weight}")
        job_index = self._job_index(job)
        machine_index = self._machine_index(machine)
        self._adjacency[job_index][machine_index] = float(weight)

    def solve(self) -> tuple[dict[Hashable, Hashable], float]:
        """Return ``({job: machine}, total_weight)`` maximizing total weight."""
        job_count = len(self._jobs)
        machine_count = len(self._machines)
        if job_count == 0 or machine_count == 0:
            return {}, 0.0

        max_weight = max(
            (w for adjacency in self._adjacency for w in adjacency.values()),
            default=0.0,
        )
        if max_weight <= 0.0:
            return {}, 0.0

        # Costs: job -> machine edge costs (max_weight - w) >= 0; each job
        # also owns a zero-weight dummy sink (index machine_count + job,
        # cost max_weight), so every job is routable and "unassigned" is an
        # ordinary outcome.
        match_job: list[int] = [-1] * job_count
        load: list[int] = [0] * machine_count
        potential_job = [0.0] * job_count
        potential_machine = [0.0] * (machine_count + job_count)
        assigned: list[list[int]] = [[] for _ in range(machine_count)]

        adjacency = self._adjacency
        capacity = self._capacity

        def edge_cost(job: int, machine: int) -> float:
            if machine >= machine_count:
                return max_weight
            return max_weight - adjacency[job][machine]

        def machines_of(job: int):
            yield from adjacency[job].keys()
            yield machine_count + job

        for source_job in range(job_count):
            dist_final: dict[int, float] = {}
            # machine -> (previous machine or -1, job used on the previous
            # machine or the source job)
            parent: dict[int, tuple[int, int]] = {}
            heap: list[tuple[float, int, int, int]] = []
            for machine in machines_of(source_job):
                reduced = (
                    edge_cost(source_job, machine)
                    - potential_job[source_job]
                    - potential_machine[machine]
                )
                heapq.heappush(heap, (reduced, machine, -1, source_job))
            free_machine = -1
            free_distance = math.inf
            while heap:
                distance, machine, via_machine, via_job = heapq.heappop(heap)
                if machine in dist_final:
                    continue
                dist_final[machine] = distance
                parent[machine] = (via_machine, via_job)
                is_dummy = machine >= machine_count
                if is_dummy or load[machine] < capacity[machine]:
                    free_machine = machine
                    free_distance = distance
                    break
                for job in assigned[machine]:
                    for next_machine in machines_of(job):
                        if next_machine in dist_final:
                            continue
                        reduced = (
                            edge_cost(job, next_machine)
                            - potential_job[job]
                            - potential_machine[next_machine]
                        )
                        heapq.heappush(
                            heap,
                            (distance + reduced, next_machine, machine, job),
                        )
            if free_machine == -1:  # pragma: no cover - dummy guarantees a path
                raise GraphError("no augmenting path; dummy sink missing?")

            # Johnson potential update: matched edges stay tight, reduced
            # costs stay non-negative.
            potential_job[source_job] += free_distance
            for machine, distance in dist_final.items():
                if machine == free_machine:
                    continue
                slack = free_distance - distance
                potential_machine[machine] -= slack
                if machine < machine_count:
                    for job in assigned[machine]:
                        potential_job[job] += slack

            # Augment along the recorded path: each hop moves `via_job` from
            # `via_machine` (or from being unassigned, for the source) onto
            # `machine`.
            machine = free_machine
            while True:
                via_machine, via_job = parent[machine]
                if via_machine != -1:
                    self._unassign(via_job, via_machine, match_job, load, assigned)
                self._assign(
                    via_job, machine, match_job, load, assigned, machine_count
                )
                if via_machine == -1:
                    break
                machine = via_machine

        pairs: dict[Hashable, Hashable] = {}
        total = 0.0
        for job, machine in enumerate(match_job):
            if machine < 0 or machine >= machine_count:
                continue
            weight = adjacency[job][machine]
            if weight <= 0.0:
                continue
            pairs[self._jobs[job]] = self._machines[machine]
            total += weight
        return pairs, total

    @staticmethod
    def _assign(
        job: int,
        machine: int,
        match_job: list[int],
        load: list[int],
        assigned: list[list[int]],
        machine_count: int,
    ) -> None:
        match_job[job] = machine
        if machine < machine_count:
            load[machine] += 1
            assigned[machine].append(job)

    @staticmethod
    def _unassign(
        job: int,
        machine: int,
        match_job: list[int],
        load: list[int],
        assigned: list[list[int]],
    ) -> None:
        match_job[job] = -1
        load[machine] -= 1
        assigned[machine].remove(job)
