"""Bertsekas' auction algorithm for the assignment problem.

A third, independently derived matcher (after the sparse SSP Hungarian and
the dense JV Hungarian), used as a cross-check oracle in the property
tests and as a reference point in the matching micro-benchmarks.

The algorithm runs an ascending-price auction: unassigned "persons" (left
vertices) bid for their most valuable "object" (right vertex) at current
prices; each bid raises the object's price by the winner's margin over
their second-best option plus ``epsilon``.  The final matching satisfies
epsilon-complementary-slackness, so its weight is within
``left_count * epsilon`` of optimal.

Only *profitable* assignments are made: each person owns a virtual
zero-weight fallback object (whose price never moves — parking is free and
infinitely available), so the result is a maximum-weight matching with
vertices allowed to stay unmatched, matching
:func:`repro.graph.hungarian.max_weight_matching`'s semantics up to the
epsilon gap.

Complexity note: the classic bound is ``O(n^2 * max_weight / epsilon)``
bids in the worst case (near-tie weights make prices crawl), which is why
``epsilon`` defaults to a moderate 1e-3 rather than machine precision —
this matcher is an *oracle*, not the production path (OFF uses the
strongly-polynomial Hungarian).  Epsilon scaling does not transfer soundly
to the unmatched-allowed formulation: inflated early-phase prices make the
free fallbacks absorbing, so we deliberately run a single phase.
"""

from __future__ import annotations

from collections import deque

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, MatchingResult

__all__ = ["auction_matching"]


def auction_matching(
    graph: BipartiteGraph, epsilon: float = 1e-3
) -> MatchingResult:
    """Maximum-weight bipartite matching by Bertsekas' auction.

    The returned matching's weight is within ``left_count * epsilon`` of
    optimal (exact whenever distinct matching totals are separated by more
    than that).
    """
    if epsilon <= 0:
        raise GraphError(f"epsilon must be positive, got {epsilon}")
    adjacency = graph.adjacency_by_id()
    left_count = graph.left_count
    right_count = graph.right_count
    if left_count == 0 or right_count == 0:
        return MatchingResult()
    if all(
        weight <= 0.0
        for neighbours in adjacency
        for weight in neighbours.values()
    ):
        return MatchingResult()

    FALLBACK = -1  # virtual free-parking object (price pinned at 0)
    prices = [0.0] * right_count
    owner: list[int] = [-1] * right_count  # object -> person
    assigned: list[int] = [FALLBACK - 1] * left_count  # person -> object
    queue: deque[int] = deque(range(left_count))

    while queue:
        person = queue.popleft()
        best_object = FALLBACK
        best_value = 0.0  # the fallback's net value, always available
        second_value = 0.0
        for object_id, weight in adjacency[person].items():
            if weight <= 0.0:
                continue
            value = weight - prices[object_id]
            if value > best_value:
                second_value = best_value
                best_value = value
                best_object = object_id
            elif value > second_value:
                second_value = value
        if best_object == FALLBACK:
            assigned[person] = FALLBACK
            continue
        prices[best_object] += best_value - second_value + epsilon
        previous = owner[best_object]
        if previous != -1:
            assigned[previous] = FALLBACK - 1
            queue.append(previous)
        owner[best_object] = person
        assigned[person] = best_object

    result = MatchingResult()
    for person, object_id in enumerate(assigned):
        if object_id < 0:
            continue  # parked on the fallback
        result.pairs[graph.left_key_of(person)] = graph.right_key_of(object_id)
        result.total_weight += adjacency[person][object_id]
    return result
