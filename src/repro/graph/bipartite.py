"""Sparse weighted bipartite graphs.

Left vertices model requests, right vertices model workers (the paper's
Fig. 4 orientation).  Vertices are arbitrary hashable keys; internally they
are mapped to dense integer ids so the matching algorithms can use flat
lists.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from repro.errors import GraphError

__all__ = ["BipartiteGraph", "MatchingResult"]


@dataclass
class MatchingResult:
    """A matching over a :class:`BipartiteGraph`.

    Attributes
    ----------
    pairs:
        ``{left_key: right_key}`` for every matched left vertex.
    total_weight:
        Sum of the weights of the matched edges.
    """

    pairs: dict[Hashable, Hashable] = field(default_factory=dict)
    total_weight: float = 0.0

    @property
    def cardinality(self) -> int:
        """Number of matched pairs."""
        return len(self.pairs)

    def right_to_left(self) -> dict[Hashable, Hashable]:
        """The inverse mapping ``{right_key: left_key}``."""
        return {right: left for left, right in self.pairs.items()}


class BipartiteGraph:
    """A weighted bipartite graph with O(1) edge lookup.

    Edges are directed left -> right conceptually; ``add_edge`` replaces any
    existing edge between the same pair (keep-max is the caller's choice).
    """

    def __init__(self) -> None:
        self._left_ids: dict[Hashable, int] = {}
        self._right_ids: dict[Hashable, int] = {}
        self._left_keys: list[Hashable] = []
        self._right_keys: list[Hashable] = []
        # adjacency[left_id] = {right_id: weight}
        self._adjacency: list[dict[int, float]] = []

    # -- construction -----------------------------------------------------

    def add_left(self, key: Hashable) -> int:
        """Add (or look up) a left vertex, returning its dense id."""
        if key in self._left_ids:
            return self._left_ids[key]
        vertex_id = len(self._left_keys)
        self._left_ids[key] = vertex_id
        self._left_keys.append(key)
        self._adjacency.append({})
        return vertex_id

    def add_right(self, key: Hashable) -> int:
        """Add (or look up) a right vertex, returning its dense id."""
        if key in self._right_ids:
            return self._right_ids[key]
        vertex_id = len(self._right_keys)
        self._right_ids[key] = vertex_id
        self._right_keys.append(key)
        return vertex_id

    def add_edge(self, left_key: Hashable, right_key: Hashable, weight: float) -> None:
        """Add an edge, creating endpoints as needed.

        Weights must be finite; the matching algorithms assume real weights.
        """
        if weight != weight or weight in (float("inf"), float("-inf")):
            raise GraphError(f"edge weight must be finite, got {weight}")
        left_id = self.add_left(left_key)
        right_id = self.add_right(right_key)
        self._adjacency[left_id][right_id] = float(weight)

    # -- inspection --------------------------------------------------------

    @property
    def left_count(self) -> int:
        """Number of left vertices."""
        return len(self._left_keys)

    @property
    def right_count(self) -> int:
        """Number of right vertices."""
        return len(self._right_keys)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return sum(len(neighbours) for neighbours in self._adjacency)

    def left_keys(self) -> list[Hashable]:
        """Left vertex keys in insertion order."""
        return list(self._left_keys)

    def right_keys(self) -> list[Hashable]:
        """Right vertex keys in insertion order."""
        return list(self._right_keys)

    def weight(self, left_key: Hashable, right_key: Hashable) -> float | None:
        """The weight of edge ``(left, right)`` or ``None`` if absent."""
        left_id = self._left_ids.get(left_key)
        right_id = self._right_ids.get(right_key)
        if left_id is None or right_id is None:
            return None
        return self._adjacency[left_id].get(right_id)

    def neighbours(self, left_key: Hashable) -> dict[Hashable, float]:
        """``{right_key: weight}`` for a left vertex."""
        left_id = self._left_ids.get(left_key)
        if left_id is None:
            raise GraphError(f"unknown left vertex {left_key!r}")
        return {
            self._right_keys[right_id]: weight
            for right_id, weight in self._adjacency[left_id].items()
        }

    def edges(self) -> Iterable[tuple[Hashable, Hashable, float]]:
        """Iterate over ``(left_key, right_key, weight)`` triples."""
        for left_id, neighbours in enumerate(self._adjacency):
            left_key = self._left_keys[left_id]
            for right_id, weight in neighbours.items():
                yield left_key, self._right_keys[right_id], weight

    # -- dense ids for the algorithms ---------------------------------------

    def adjacency_by_id(self) -> list[dict[int, float]]:
        """Internal adjacency, ``adjacency[left_id] -> {right_id: weight}``."""
        return self._adjacency

    def left_key_of(self, left_id: int) -> Hashable:
        """Key of a left id."""
        return self._left_keys[left_id]

    def right_key_of(self, right_id: int) -> Hashable:
        """Key of a right id."""
        return self._right_keys[right_id]
