"""Dinic's maximum-flow algorithm.

Kazemi & Shahabi's GeoCrowd [8] — one of the offline task-assignment
formulations the paper builds on — reduces offline matching to maximum
flow.  We provide Dinic's algorithm (O(V^2 E), and O(E sqrt(V)) on unit
networks such as bipartite matching) both as that substrate and as another
independent oracle in the test suite.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.errors import GraphError

__all__ = ["Dinic"]


class _Edge:
    __slots__ = ("target", "capacity", "reverse_index")

    def __init__(self, target: int, capacity: float, reverse_index: int):
        self.target = target
        self.capacity = capacity
        self.reverse_index = reverse_index


class Dinic:
    """Max-flow solver over an arbitrary directed network.

    Vertices are arbitrary hashable keys, added implicitly by
    :meth:`add_edge`.

    >>> net = Dinic()
    >>> net.add_edge("s", "a", 1.0)
    >>> net.add_edge("a", "t", 1.0)
    >>> net.max_flow("s", "t")
    1.0
    """

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._graph: list[list[_Edge]] = []

    def _vertex(self, key: Hashable) -> int:
        if key not in self._ids:
            self._ids[key] = len(self._graph)
            self._graph.append([])
        return self._ids[key]

    def add_edge(self, source: Hashable, target: Hashable, capacity: float) -> None:
        """Add a directed edge with the given capacity."""
        if capacity < 0:
            raise GraphError(f"capacity must be non-negative, got {capacity}")
        u = self._vertex(source)
        v = self._vertex(target)
        self._graph[u].append(_Edge(v, capacity, len(self._graph[v])))
        self._graph[v].append(_Edge(u, 0.0, len(self._graph[u]) - 1))

    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        levels = [-1] * len(self._graph)
        levels[source] = 0
        queue: deque[int] = deque([source])
        while queue:
            vertex = queue.popleft()
            for edge in self._graph[vertex]:
                if edge.capacity > 1e-12 and levels[edge.target] == -1:
                    levels[edge.target] = levels[vertex] + 1
                    queue.append(edge.target)
        return levels if levels[sink] != -1 else None

    def _dfs_blocking(
        self,
        vertex: int,
        sink: int,
        pushed: float,
        levels: list[int],
        iterators: list[int],
    ) -> float:
        if vertex == sink:
            return pushed
        while iterators[vertex] < len(self._graph[vertex]):
            edge = self._graph[vertex][iterators[vertex]]
            if edge.capacity > 1e-12 and levels[edge.target] == levels[vertex] + 1:
                flow = self._dfs_blocking(
                    edge.target, sink, min(pushed, edge.capacity), levels, iterators
                )
                if flow > 0:
                    edge.capacity -= flow
                    self._graph[edge.target][edge.reverse_index].capacity += flow
                    return flow
            iterators[vertex] += 1
        return 0.0

    def max_flow(self, source: Hashable, sink: Hashable) -> float:
        """Compute the maximum flow from ``source`` to ``sink``."""
        if source == sink:
            raise GraphError("source and sink must differ")
        source_id = self._vertex(source)
        sink_id = self._vertex(sink)
        total = 0.0
        while True:
            levels = self._bfs_levels(source_id, sink_id)
            if levels is None:
                return total
            iterators = [0] * len(self._graph)
            while True:
                flow = self._dfs_blocking(
                    source_id, sink_id, float("inf"), levels, iterators
                )
                if flow <= 0:
                    break
                total += flow

    def flow_on(self, source: Hashable, target: Hashable) -> float:
        """Flow currently routed along edge ``(source, target)``.

        Only meaningful after :meth:`max_flow`; computed from the reverse
        edge's gained capacity.
        """
        u = self._ids.get(source)
        v = self._ids.get(target)
        if u is None or v is None:
            return 0.0
        for edge in self._graph[v]:
            if edge.target == u and edge.capacity > 0:
                forward = self._graph[u][edge.reverse_index]
                if forward.target == v:
                    return edge.capacity
        return 0.0
