"""Acceptance-probability estimation (Definition 3.1, Eq. 4).

The platform estimates a worker's probability of accepting payment ``v'``
for a request of value ``v_r`` as the fraction of the worker's completed
history at or below the offer.  Two reading modes of Eq. 4 are supported:

* ``"relative"`` (default) — histories store *payment rates* ``v'/v_r`` of
  past completed cooperative requests, and the estimate compares the
  offered rate against them.  This is the calibration under which the
  paper's measurements are mutually consistent: payment rates of ~0.70
  (DemCOM) / ~0.82 (RamCOM) of each request's value across all request
  sizes, with low/high acceptance respectively (see DESIGN.md §2).
* ``"absolute"`` — histories store raw values and the offer is compared
  directly (the literal reading of Eq. 4); provided for ablation.

The estimator pre-sorts each worker's history once so each query is a
binary search; DemCOM and Algorithm 2 issue thousands of queries per
request.
"""

from __future__ import annotations

import bisect
from collections.abc import Hashable, Sequence

from repro.errors import ConfigurationError

__all__ = ["AcceptanceEstimator", "AcceptanceSnapshot"]


class AcceptanceSnapshot:
    """A per-call view of candidate histories for the Algorithm-2 fast path.

    One :meth:`AcceptanceEstimator.snapshot` call materialises, for a fixed
    candidate list, everything :meth:`AcceptanceEstimator.probability` would
    look up per query — the sorted history list and its length per worker,
    plus the estimator's normalisation mode and cold-start default — so the
    Monte-Carlo/bisection loop of Algorithm 2 and the MER pricer's
    any-acceptance product can iterate over plain tuples with an inlined
    ``bisect`` instead of paying a dict lookup, a method call and a mode
    branch per (payment, worker) probe.

    ``rows`` is aligned with the ``worker_ids`` passed to ``snapshot()``:
    one ``(history, size)`` pair per candidate, where ``history`` is the
    estimator's *live* sorted list (not a copy) or ``None`` for a
    cold-start worker.  A snapshot is therefore only valid until the next
    history mutation (``record_completion`` / ``set_history``); the
    simulator never mutates histories inside a single decision, which is
    the window the fast path uses.
    """

    __slots__ = ("mode", "default_probability", "rows")

    def __init__(
        self,
        mode: str,
        default_probability: float,
        rows: list[tuple[list[float] | None, int]],
    ):
        self.mode = mode
        self.default_probability = default_probability
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def normalize(self, payment: float, request_value: float) -> float:
        """The offer in history space — ``payment/request_value`` in
        relative mode, ``payment`` in absolute mode (mirrors Eq. 4)."""
        if self.mode == "absolute":
            return payment
        if request_value <= 0:
            raise ConfigurationError(
                f"request_value must be positive, got {request_value}"
            )
        return payment / request_value

    def probabilities(
        self, payment: float, request_value: float
    ) -> list[float]:
        """Per-candidate Eq.-4 probabilities at ``payment`` (test seam;
        bit-identical to querying the estimator row by row)."""
        offer = self.normalize(payment, request_value)
        cold = self.default_probability if payment > 0 else 0.0
        bisect_right = bisect.bisect_right
        return [
            cold if history is None else bisect_right(history, offer) / size
            for history, size in self.rows
        ]


class AcceptanceEstimator:
    """Empirical-CDF acceptance estimates over worker histories.

    Parameters
    ----------
    default_probability:
        Returned for a worker with an *empty* history (a cold-start worker).
        The paper assumes N >= 1; a neutral 0.5 keeps cold-start workers
        reachable without making them free.
    mode:
        ``"relative"`` (histories hold payment rates) or ``"absolute"``
        (histories hold raw values).
    """

    def __init__(self, default_probability: float = 0.5, mode: str = "relative"):
        if not 0.0 <= default_probability <= 1.0:
            raise ConfigurationError(
                f"default_probability must be in [0, 1], got {default_probability}"
            )
        if mode not in ("relative", "absolute"):
            raise ConfigurationError(
                f"mode must be 'relative' or 'absolute', got {mode!r}"
            )
        self.default_probability = default_probability
        self.mode = mode
        self._histories: dict[Hashable, list[float]] = {}

    def _normalize(self, payment: float, request_value: float) -> float:
        if self.mode == "absolute":
            return payment
        if request_value <= 0:
            raise ConfigurationError(
                f"request_value must be positive, got {request_value}"
            )
        return payment / request_value

    def set_history(self, worker_id: Hashable, values: Sequence[float]) -> None:
        """Register (or replace) a worker's history (rates or raw values,
        matching the estimator's mode)."""
        self._histories[worker_id] = sorted(float(v) for v in values)

    def record_completion(
        self, worker_id: Hashable, payment: float, request_value: float
    ) -> None:
        """Append one completed cooperative request to a worker's history.

        Keeps the history sorted; used by the simulator's online-learning
        loop where histories grow as cooperative requests complete.
        """
        history = self._histories.setdefault(worker_id, [])
        bisect.insort(history, self._normalize(payment, request_value))

    def has_history(self, worker_id: Hashable) -> bool:
        """True iff the worker has at least one history entry."""
        return bool(self._histories.get(worker_id))

    def history_size(self, worker_id: Hashable) -> int:
        """N — the number of history entries for the worker."""
        return len(self._histories.get(worker_id, ()))

    def probability(
        self, payment: float, worker_id: Hashable, request_value: float
    ) -> float:
        """Eq. 4: ``pr(v', w) = N(history <= offer) / N``.

        Monotone non-decreasing in ``payment``; 0 below every history
        entry, 1 above all of them.
        """
        history = self._histories.get(worker_id)
        if not history:
            return self.default_probability if payment > 0 else 0.0
        offer = self._normalize(payment, request_value)
        return bisect.bisect_right(history, offer) / len(history)

    def snapshot(self, worker_ids: Sequence[Hashable]) -> AcceptanceSnapshot:
        """Materialise the candidates' histories once for a batch of
        probability queries (the Algorithm-2 / MER fast path).

        The returned rows alias the live history lists; see
        :class:`AcceptanceSnapshot` for the validity window.
        """
        histories = self._histories
        rows: list[tuple[list[float] | None, int]] = []
        for worker_id in worker_ids:
            history = histories.get(worker_id)
            if history:
                rows.append((history, len(history)))
            else:
                rows.append((None, 0))
        return AcceptanceSnapshot(self.mode, self.default_probability, rows)

    def candidate_payments(
        self, worker_id: Hashable, request_value: float
    ) -> list[float]:
        """The payments at which this worker's estimated CDF steps, capped
        at ``request_value`` — the MER pricer's exact breakpoints."""
        history = self._histories.get(worker_id, [])
        if self.mode == "absolute":
            end = bisect.bisect_right(history, request_value)
            return history[:end]
        payments = []
        for rate in history:
            payment = rate * request_value
            if payment > request_value:
                break
            payments.append(payment)
        return payments

    def support(self, worker_id: Hashable) -> tuple[float, float] | None:
        """(min, max) of the worker's history entries, or None if empty."""
        history = self._histories.get(worker_id)
        if not history:
            return None
        return history[0], history[-1]
