"""Acceptance-probability estimation (Definition 3.1, Eq. 4).

The platform estimates a worker's probability of accepting payment ``v'``
for a request of value ``v_r`` as the fraction of the worker's completed
history at or below the offer.  Two reading modes of Eq. 4 are supported:

* ``"relative"`` (default) — histories store *payment rates* ``v'/v_r`` of
  past completed cooperative requests, and the estimate compares the
  offered rate against them.  This is the calibration under which the
  paper's measurements are mutually consistent: payment rates of ~0.70
  (DemCOM) / ~0.82 (RamCOM) of each request's value across all request
  sizes, with low/high acceptance respectively (see DESIGN.md §2).
* ``"absolute"`` — histories store raw values and the offer is compared
  directly (the literal reading of Eq. 4); provided for ablation.

The estimator pre-sorts each worker's history once so each query is a
binary search; DemCOM and Algorithm 2 issue thousands of queries per
request.
"""

from __future__ import annotations

import bisect
from collections.abc import Hashable, Sequence

from repro.errors import ConfigurationError

__all__ = ["AcceptanceEstimator", "AcceptanceSnapshot"]


class AcceptanceSnapshot:
    """A per-call view of candidate histories for the Algorithm-2 fast path.

    One :meth:`AcceptanceEstimator.snapshot` call materialises, for a fixed
    candidate list, everything :meth:`AcceptanceEstimator.probability` would
    look up per query — the sorted history list and its length per worker,
    plus the estimator's normalisation mode and cold-start default — so the
    Monte-Carlo/bisection loop of Algorithm 2 and the MER pricer's
    any-acceptance product can iterate over plain tuples with an inlined
    ``bisect`` instead of paying a dict lookup, a method call and a mode
    branch per (payment, worker) probe.

    ``rows`` is aligned with the ``worker_ids`` passed to ``snapshot()``:
    one ``(history, size)`` pair per candidate, where ``history`` is the
    estimator's *live* sorted list (not a copy) or ``None`` for a
    cold-start worker.  A snapshot is therefore only valid until the next
    history mutation (``record_completion`` / ``set_history``); the
    simulator never mutates histories inside a single decision, which is
    the window the fast path uses.

    For the array backend (docs/PERFORMANCE.md#the-array-backend) the
    snapshot also grows a *dense matrix form*: :meth:`matrix` lays the
    same candidate histories out as flat numpy arrays (per-candidate
    history segments, support bounds, normalisation denominators) for the
    vectorized kernel in :mod:`repro.core.payment_kernel`.
    """

    __slots__ = ("mode", "default_probability", "rows", "worker_ids", "array_cache")

    def __init__(
        self,
        mode: str,
        default_probability: float,
        rows: list[tuple[list[float] | None, int]],
        worker_ids: tuple[Hashable, ...] | None = None,
        array_cache: dict[Hashable, object] | None = None,
    ):
        self.mode = mode
        self.default_probability = default_probability
        self.rows = rows
        self.worker_ids = worker_ids
        self.array_cache = array_cache

    def matrix(self):
        """Struct-of-arrays form of the rows (requires numpy).

        Per-worker ndarray conversions are memoised in the owning
        estimator's ``array_cache`` (invalidated on history mutation) so
        repeated estimates over warm candidates never re-copy histories.
        """
        from repro.core.payment_kernel import build_matrix

        return build_matrix(
            self, array_cache=self.array_cache, worker_ids=self.worker_ids
        )

    def __len__(self) -> int:
        return len(self.rows)

    def normalize(self, payment: float, request_value: float) -> float:
        """The offer in history space — ``payment/request_value`` in
        relative mode, ``payment`` in absolute mode (mirrors Eq. 4)."""
        if self.mode == "absolute":
            return payment
        if request_value <= 0:
            raise ConfigurationError(
                f"request_value must be positive, got {request_value}"
            )
        return payment / request_value

    def probabilities(
        self, payment: float, request_value: float
    ) -> list[float]:
        """Per-candidate Eq.-4 probabilities at ``payment`` (test seam;
        bit-identical to querying the estimator row by row)."""
        offer = self.normalize(payment, request_value)
        cold = self.default_probability if payment > 0 else 0.0
        bisect_right = bisect.bisect_right
        return [
            cold if history is None else bisect_right(history, offer) / size
            for history, size in self.rows
        ]


class AcceptanceEstimator:
    """Empirical-CDF acceptance estimates over worker histories.

    Parameters
    ----------
    default_probability:
        Returned for a worker with an *empty* history (a cold-start worker).
        The paper assumes N >= 1; a neutral 0.5 keeps cold-start workers
        reachable without making them free.
    mode:
        ``"relative"`` (histories hold payment rates) or ``"absolute"``
        (histories hold raw values).
    """

    def __init__(self, default_probability: float = 0.5, mode: str = "relative"):
        if not 0.0 <= default_probability <= 1.0:
            raise ConfigurationError(
                f"default_probability must be in [0, 1], got {default_probability}"
            )
        if mode not in ("relative", "absolute"):
            raise ConfigurationError(
                f"mode must be 'relative' or 'absolute', got {mode!r}"
            )
        self.default_probability = default_probability
        self.mode = mode
        self._histories: dict[Hashable, list[float]] = {}
        #: Monotonic mutation counter — bumped by every history mutation.
        #: The array backend keys speculative batch results on it so a
        #: mid-batch ``record_completion`` invalidates them
        #: (docs/SERVICE.md#micro-batched-dispatch).
        self.version = 0
        #: Per-worker ndarray copies of the sorted histories, maintained
        #: lazily by the array backend (:mod:`repro.core.payment_kernel`)
        #: and dropped here on mutation.  Plain dict so this module stays
        #: numpy-free.
        self._array_cache: dict[Hashable, object] = {}
        #: Built CandidateMatrix per candidate-id tuple (array backend).
        #: Invalidated *per worker*: a mutation evicts exactly the
        #: matrices whose candidate set contains the mutated worker
        #: (tracked in ``_matrix_index``); matrices over untouched
        #: candidates stay warm across unrelated completions.
        self._matrix_cache: dict[tuple[Hashable, ...], object] = {}
        #: worker id -> matrix-cache keys that include the worker.
        self._matrix_index: dict[Hashable, set[tuple[Hashable, ...]]] = {}
        #: Per-worker mutation counters behind :meth:`history_signature`.
        self._worker_versions: dict[Hashable, int] = {}

    def _normalize(self, payment: float, request_value: float) -> float:
        if self.mode == "absolute":
            return payment
        if request_value <= 0:
            raise ConfigurationError(
                f"request_value must be positive, got {request_value}"
            )
        return payment / request_value

    def set_history(self, worker_id: Hashable, values: Sequence[float]) -> None:
        """Register (or replace) a worker's history (rates or raw values,
        matching the estimator's mode)."""
        self._histories[worker_id] = sorted(float(v) for v in values)
        self._note_mutation(worker_id)

    def record_completion(
        self, worker_id: Hashable, payment: float, request_value: float
    ) -> None:
        """Append one completed cooperative request to a worker's history.

        Keeps the history sorted; used by the simulator's online-learning
        loop where histories grow as cooperative requests complete.
        """
        history = self._histories.setdefault(worker_id, [])
        bisect.insort(history, self._normalize(payment, request_value))
        self._note_mutation(worker_id)

    def _note_mutation(self, worker_id: Hashable) -> None:
        """Bump the version counters and evict exactly the cached arrays
        and matrices the mutated worker participates in."""
        self.version += 1
        versions = self._worker_versions
        versions[worker_id] = versions.get(worker_id, 0) + 1
        self._array_cache.pop(worker_id, None)
        keys = self._matrix_index.pop(worker_id, None)
        if not keys:
            return
        for key in keys:
            if self._matrix_cache.pop(key, None) is not None:
                for member in key:
                    if member != worker_id:
                        index = self._matrix_index.get(member)
                        if index is not None:
                            index.discard(key)
                            if not index:
                                del self._matrix_index[member]

    def history_signature(
        self, worker_ids: Sequence[Hashable]
    ) -> tuple[int, ...]:
        """Per-candidate mutation counters, aligned with ``worker_ids``.

        Two calls return equal signatures iff none of the candidates'
        histories changed in between — the precise validity condition
        for speculative estimates/quotes over that candidate set.  The
        global :attr:`version` is a conservative proxy (any mutation
        anywhere); the signature lets speculation survive completions
        that only touch *other* workers
        (docs/SERVICE.md#micro-batched-dispatch).
        """
        versions = self._worker_versions
        return tuple(versions.get(worker_id, 0) for worker_id in worker_ids)

    def has_history(self, worker_id: Hashable) -> bool:
        """True iff the worker has at least one history entry."""
        return bool(self._histories.get(worker_id))

    def history_size(self, worker_id: Hashable) -> int:
        """N — the number of history entries for the worker."""
        return len(self._histories.get(worker_id, ()))

    def probability(
        self, payment: float, worker_id: Hashable, request_value: float
    ) -> float:
        """Eq. 4: ``pr(v', w) = N(history <= offer) / N``.

        Monotone non-decreasing in ``payment``; 0 below every history
        entry, 1 above all of them.
        """
        history = self._histories.get(worker_id)
        if not history:
            return self.default_probability if payment > 0 else 0.0
        offer = self._normalize(payment, request_value)
        return bisect.bisect_right(history, offer) / len(history)

    def snapshot(self, worker_ids: Sequence[Hashable]) -> AcceptanceSnapshot:
        """Materialise the candidates' histories once for a batch of
        probability queries (the Algorithm-2 / MER fast path).

        The returned rows alias the live history lists; see
        :class:`AcceptanceSnapshot` for the validity window.
        """
        histories = self._histories
        rows: list[tuple[list[float] | None, int]] = []
        for worker_id in worker_ids:
            history = histories.get(worker_id)
            if history:
                rows.append((history, len(history)))
            else:
                rows.append((None, 0))
        return AcceptanceSnapshot(
            self.mode,
            self.default_probability,
            rows,
            worker_ids=tuple(worker_ids),
            array_cache=self._array_cache,
        )

    def matrix(self, worker_ids: Sequence[Hashable]):
        """The candidates' :class:`~repro.core.payment_kernel.CandidateMatrix`,
        memoised per candidate-id tuple until the next history mutation.

        The array backend's hot path: repeated estimates/quotes over the
        same candidate set (the common case — the gateway's micro-batches
        and the benchmarks reuse candidate sets heavily) skip both the
        snapshot walk and the matrix build entirely.
        """
        key = tuple(worker_ids)
        cached = self._matrix_cache.get(key)
        if cached is not None:
            return cached
        if len(self._matrix_cache) >= 4096:
            # Unbounded candidate-set churn (e.g. adversarial workloads)
            # must not leak; matrices are cheap to rebuild.
            self._matrix_cache.clear()
            self._matrix_index.clear()
        built = self.snapshot(key).matrix()
        self._matrix_cache[key] = built
        for member in key:
            self._matrix_index.setdefault(member, set()).add(key)
        return built

    def __getstate__(self) -> dict:
        # The ndarray caches are lazily rebuilt accelerator structures;
        # dropping them keeps pickles (COMSNAP1 service snapshots, the
        # parallel runner's scenario copies) numpy-free and loadable on
        # hosts without the optional dependency.
        state = dict(self.__dict__)
        state["_array_cache"] = {}
        state["_matrix_cache"] = {}
        state["_matrix_index"] = {}
        return state

    def candidate_payments(
        self, worker_id: Hashable, request_value: float
    ) -> list[float]:
        """The payments at which this worker's estimated CDF steps, capped
        at ``request_value`` — the MER pricer's exact breakpoints."""
        history = self._histories.get(worker_id, [])
        if self.mode == "absolute":
            end = bisect.bisect_right(history, request_value)
            return history[:end]
        payments = []
        for rate in history:
            payment = rate * request_value
            if payment > request_value:
                break
            payments.append(payment)
        return payments

    def support(self, worker_id: Hashable) -> tuple[float, float] | None:
        """(min, max) of the worker's history entries, or None if empty."""
        history = self._histories.get(worker_id)
        if not history:
            return None
        return history[0], history[-1]
