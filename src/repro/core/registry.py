"""Algorithm registry: string names -> algorithm factories.

The experiment harness, CLI, and benchmarks refer to algorithms by name
("DemCOM", "RamCOM", "TOTA", ...).  Baselines register themselves on import
of :mod:`repro.baselines`; user code can register custom algorithms too.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.base import OnlineAlgorithm
from repro.core.demcom import DemCOM
from repro.core.ramcom import RamCOM
from repro.errors import UnknownAlgorithmError

__all__ = ["register_algorithm", "make_algorithm", "available_algorithms"]

_FACTORIES: dict[str, Callable[[], OnlineAlgorithm]] = {}


def register_algorithm(name: str, factory: Callable[[], OnlineAlgorithm]) -> None:
    """Register (or replace) an algorithm factory under ``name``.

    Names are case-insensitive.
    """
    _FACTORIES[name.lower()] = factory


def make_algorithm(name: str) -> OnlineAlgorithm:
    """Instantiate a registered algorithm by name."""
    _ensure_baselines_loaded()
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise UnknownAlgorithmError(name, list(_FACTORIES))
    return factory()


def algorithm_factory(name: str) -> Callable[[], OnlineAlgorithm]:
    """Return the factory itself (the simulator wants a callable)."""
    _ensure_baselines_loaded()
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise UnknownAlgorithmError(name, list(_FACTORIES))
    return factory


def available_algorithms() -> list[str]:
    """Registered algorithm names (lower-case), sorted."""
    _ensure_baselines_loaded()
    return sorted(_FACTORIES)


def _ensure_baselines_loaded() -> None:
    """Import the baselines package so its registrations run."""
    import repro.baselines  # noqa: F401  (import side effect)


register_algorithm("demcom", DemCOM)
register_algorithm("ramcom", RamCOM)
