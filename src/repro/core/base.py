"""The online-algorithm protocol.

Each platform runs one :class:`OnlineAlgorithm` instance.  The simulator
delivers arrivals; on each request the algorithm returns a
:class:`Decision` — serve with an inner worker, serve with a borrowed outer
worker at some payment, or reject.  The algorithm sees the world only
through its :class:`PlatformContext`:

* eligible inner/outer candidates (the exchange's shared availability view),
* the Eq.-4 acceptance estimator and the incentive machinery
  (Algorithm 2 / the MER pricer),
* a live *offer channel* to outer workers (the behaviour oracle) — the
  algorithm never sees reservations, only accept/reject answers,
* its own deterministic RNG stream.

This keeps the algorithms pure decision logic; all state mutation
(claiming workers, ledger updates, metric timing) happens in the simulator.
"""

from __future__ import annotations

import enum
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.behavior.worker_model import BehaviorOracle
from repro.core.entities import Request, Worker
from repro.core.exchange import CooperationExchange
from repro.core.acceptance import AcceptanceEstimator
from repro.core.payment import MinimumOuterPaymentEstimator
from repro.core.pricing import MaximumExpectedRevenuePricer
from repro.analysis.sanitizer import ConstraintSanitizer
from repro.errors import ExchangeUnavailableError
from repro.obs import NULL_PROBE, Probe
from repro.utils.timer import Stopwatch

__all__ = [
    "DecisionKind",
    "Decision",
    "PlatformContext",
    "OnlineAlgorithm",
    "run_offer_loop",
]


class DecisionKind(enum.Enum):
    """The possible outcomes for an incoming request.

    DEFER is the batching extension: the request is parked and the
    simulator later asks the algorithm to flush it (the paper's model
    decides immediately; see :class:`repro.baselines.batch.BatchMatching`).
    """

    SERVE_INNER = "serve_inner"
    SERVE_OUTER = "serve_outer"
    REJECT = "reject"
    DEFER = "defer"


@dataclass(frozen=True, slots=True)
class Decision:
    """An algorithm's answer for one request.

    ``cooperative_attempt`` marks requests for which the algorithm extended
    live offers to outer workers (whether or not anyone accepted); it is the
    denominator of the paper's acceptance-ratio metric |AcpRt|.
    """

    kind: DecisionKind
    worker: Worker | None = None
    payment: float = 0.0
    cooperative_attempt: bool = False
    offers_made: int = 0

    @classmethod
    def serve_inner(cls, worker: Worker) -> "Decision":
        """Serve with an inner worker (full value to the platform)."""
        return cls(kind=DecisionKind.SERVE_INNER, worker=worker)

    @classmethod
    def serve_outer(
        cls, worker: Worker, payment: float, offers_made: int
    ) -> "Decision":
        """Serve with a borrowed worker at ``payment``."""
        return cls(
            kind=DecisionKind.SERVE_OUTER,
            worker=worker,
            payment=payment,
            cooperative_attempt=True,
            offers_made=offers_made,
        )

    @classmethod
    def reject(
        cls, cooperative_attempt: bool = False, offers_made: int = 0
    ) -> "Decision":
        """Reject the request."""
        return cls(
            kind=DecisionKind.REJECT,
            cooperative_attempt=cooperative_attempt,
            offers_made=offers_made,
        )

    @classmethod
    def defer(cls) -> "Decision":
        """Park the request for a later batch flush (extension)."""
        return cls(kind=DecisionKind.DEFER)


@dataclass
class PlatformContext:
    """Everything one platform's algorithm may consult.

    Attributes
    ----------
    platform_id:
        The platform this context belongs to.
    exchange:
        Shared availability state (inner list + outer candidates).
    acceptance:
        Eq.-4 estimator over worker histories.
    payment_estimator:
        Algorithm 2 (minimum outer payment).
    pricer:
        The MER pricer (Definition 4.1) used by RamCOM.
    oracle:
        Live offer channel; answers accept/reject per (worker, request,
        payment) deterministically in the experiment seed.
    rng:
        The algorithm's private random stream.
    value_upper_bound:
        Known bound on request values (``max(v_r)``); both RamCOM's
        threshold and Greedy-RT need it, as in the paper's analysis.
    cooperation_enabled:
        When False the exchange exposes no outer candidates (TOTA mode and
        the no-cooperation ablation).
    probe:
        Telemetry hook (:mod:`repro.obs`); the no-op default makes the
        instrumented candidate queries free when telemetry is off.
    sanitizer:
        Runtime constraint sanitizer (:mod:`repro.analysis`); ``None``
        (the default) keeps the offer loop's disabled path to a single
        ``is None`` check per offer.
    """

    platform_id: str
    exchange: CooperationExchange
    acceptance: AcceptanceEstimator
    payment_estimator: MinimumOuterPaymentEstimator
    pricer: MaximumExpectedRevenuePricer
    oracle: BehaviorOracle
    rng: random.Random
    value_upper_bound: float
    cooperation_enabled: bool = True
    probe: Probe = NULL_PROBE
    sanitizer: "ConstraintSanitizer | None" = None
    extra: dict = field(default_factory=dict)

    def inner_candidates(self, request: Request) -> list[Worker]:
        """Eligible inner workers, nearest first."""
        if not self.probe.enabled:
            return self.exchange.inner_candidates(self.platform_id, request)
        with self.probe.span(
            "candidates.inner", tid=self.platform_id, request=request.request_id
        ) as span:
            workers = self.exchange.inner_candidates(self.platform_id, request)
            span.annotate(count=len(workers))
        self.probe.observe(
            "candidate_count", len(workers), platform=self.platform_id, side="inner"
        )
        return workers

    def outer_candidates(self, request: Request) -> list[Worker]:
        """Eligible shareable outer workers, nearest first.

        Degraded mode: when the resilience layer reports the exchange (or
        every peer) unreachable, this returns ``[]`` — the algorithm falls
        back to inner-only matching, which trivially preserves the
        Definition-2.6 constraints (the candidate set only shrinks).
        """
        if not self.cooperation_enabled:
            return []
        if not self.probe.enabled:
            try:
                return self.exchange.outer_candidates(self.platform_id, request)
            except ExchangeUnavailableError:
                return []
        with self.probe.span(
            "candidates.outer", tid=self.platform_id, request=request.request_id
        ) as span:
            watch = Stopwatch().start()
            try:
                workers = self.exchange.outer_candidates(self.platform_id, request)
                outcome = "ok"
            except ExchangeUnavailableError:
                workers = []
                outcome = "unavailable"
            elapsed = watch.stop()
            span.annotate(count=len(workers), outcome=outcome)
        self.probe.observe(
            "exchange_rpc_seconds",
            elapsed,
            platform=self.platform_id,
            peer="exchange",
            outcome=outcome,
        )
        self.probe.observe(
            "candidate_count", len(workers), platform=self.platform_id, side="outer"
        )
        return workers


def run_offer_loop(
    request: Request,
    candidates: list[Worker],
    payment: float,
    context: PlatformContext,
) -> Decision:
    """Algorithm 1, lines 15-26: live offers at ``payment``, nearest first.

    Shared by DemCOM and RamCOM (they differ only in how the payment is
    chosen).  Returns SERVE_OUTER for the nearest accepting worker, or a
    cooperative REJECT when everyone declines.
    """
    probe = context.probe
    span = (
        probe.span(
            "offer_loop",
            tid=context.platform_id,
            request=request.request_id,
            payment=payment,
            candidates=len(candidates),
        )
        if probe.enabled
        else None
    )
    offers_made = 0
    accepted: Worker | None = None
    sanitizer = context.sanitizer
    for worker in candidates:
        if sanitizer is not None:
            # Offers may only reach eligible shareable outer workers at a
            # payment within (0, v_r] — validated before the offer goes out.
            sanitizer.check_offer(request, worker, payment, context.platform_id)
        offers_made += 1
        if context.oracle.offer(
            worker.worker_id, request.request_id, payment, request.value
        ):
            accepted = worker
            break
    if probe.enabled and span is not None:
        span.annotate(
            offers_made=offers_made,
            outcome="accepted" if accepted is not None else "declined",
        )
        span.end()
        probe.count(
            "offers_total",
            offers_made,
            platform=context.platform_id,
            outcome="accepted" if accepted is not None else "declined",
        )
    if accepted is not None:
        return Decision.serve_outer(accepted, payment, offers_made)
    return Decision.reject(cooperative_attempt=True, offers_made=offers_made)


class OnlineAlgorithm(ABC):
    """Base class for all online matching algorithms."""

    #: Registry / reporting name; subclasses override.
    name: str = "abstract"

    #: What the gateway's micro-batched dispatch may precompute for this
    #: algorithm's cooperative path: ``"estimate"`` (a keyed Algorithm-2
    #: payment estimate), ``"quote"`` (a deterministic MER quote) or
    #: ``None`` (no speculation — the safe default for algorithms whose
    #: decisions the session cannot predict side-effect-free).
    speculates: str | None = None

    def on_worker_arrival(self, worker: Worker, context: PlatformContext) -> None:
        """Hook called when a worker joins this platform's waiting list.

        The default does nothing; stateful algorithms (e.g. RANKING's
        random priorities) override it.
        """

    @abstractmethod
    def decide(self, request: Request, context: PlatformContext) -> Decision:
        """Decide the fate of one incoming request, immediately."""

    def flush(
        self, time: float, context: PlatformContext
    ) -> list[tuple[Request, Decision]]:
        """Resolve deferred requests up to ``time`` (batching extension).

        Called by the simulator before each subsequent event and once with
        ``time = inf`` at end of stream.  Returned decisions must not be
        DEFER.  The default (for immediate-decision algorithms) is empty.
        """
        return []

    def reset(self, context: PlatformContext) -> None:
        """Re-initialise per-run state (e.g. RamCOM's threshold draw)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
