"""Matchings and revenue accounting (Definition 2.5).

A :class:`MatchRecord` captures one assignment: which request, which worker,
inner or outer, and — for outer assignments — the payment made to the
lender.  The :class:`MatchingLedger` accumulates records for one platform
and exposes the revenue decomposition of Eq. 1:

    Rev = Rev_in + Rev_out = sum(v_r) + sum(v_r - v'_r).

The lender side (``lender_income``) is also tracked per counterparty so the
"win-win" claim of the paper's Example 1 is directly observable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.entities import Request, Worker
from repro.errors import ConfigurationError, SimulationError

__all__ = ["AssignmentKind", "MatchRecord", "MatchingLedger"]


class AssignmentKind(enum.Enum):
    """Whether a request was served by an inner or a borrowed worker."""

    INNER = "inner"
    OUTER = "outer"


@dataclass(frozen=True, slots=True)
class MatchRecord:
    """One completed assignment.

    Attributes
    ----------
    request, worker:
        The matched pair.
    kind:
        INNER (worker's home platform == request's platform) or OUTER.
    payment:
        The outer payment ``v'_r`` (0.0 for inner assignments).
    decision_time:
        Wall-clock-free logical time of the decision (the request's arrival
        time; COM decides immediately).
    pickup_distance:
        Worker-to-request distance at assignment (km); feeds the
        travel-distance extension metrics.
    """

    request: Request
    worker: Worker
    kind: AssignmentKind
    payment: float = 0.0
    decision_time: float = 0.0
    pickup_distance: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is AssignmentKind.INNER and self.payment != 0.0:
            raise ConfigurationError("inner assignments carry no outer payment")
        if self.kind is AssignmentKind.OUTER:
            if not 0.0 < self.payment <= self.request.value + 1e-9:
                raise ConfigurationError(
                    f"outer payment must be in (0, v_r], got {self.payment} "
                    f"for value {self.request.value}"
                )

    @property
    def platform_revenue(self) -> float:
        """Definition 2.5: ``v_r`` inner, ``v_r - v'_r`` outer."""
        if self.kind is AssignmentKind.INNER:
            return self.request.value
        return self.request.value - self.payment


class MatchingLedger:
    """Accumulates one platform's assignments and rejections."""

    def __init__(self, platform_id: str):
        self.platform_id = platform_id
        self.records: list[MatchRecord] = []
        self.rejected: list[Request] = []
        #: income earned by this platform's workers serving *other*
        #: platforms' requests, keyed by borrower platform id.
        self.lender_income: dict[str, float] = {}
        self._matched_requests: set[str] = set()
        self._matched_workers: set[str] = set()

    # -- recording -----------------------------------------------------------

    def record(self, record: MatchRecord) -> None:
        """Record an assignment; enforces the 1-by-1 constraint eagerly."""
        request_id = record.request.request_id
        worker_id = record.worker.worker_id
        if request_id in self._matched_requests:
            raise SimulationError(f"request {request_id} matched twice")
        if worker_id in self._matched_workers:
            raise SimulationError(f"worker {worker_id} matched twice")
        self._matched_requests.add(request_id)
        self._matched_workers.add(worker_id)
        self.records.append(record)

    def record_rejection(self, request: Request) -> None:
        """Record a rejected request."""
        if request.request_id in self._matched_requests:
            raise SimulationError(
                f"request {request.request_id} both matched and rejected"
            )
        self.rejected.append(request)

    def record_lender_income(self, borrower_platform: str, payment: float) -> None:
        """Credit payment received for lending a worker to ``borrower``."""
        self.lender_income[borrower_platform] = (
            self.lender_income.get(borrower_platform, 0.0) + payment
        )

    # -- Definition 2.5 accounting --------------------------------------------

    @property
    def revenue_inner(self) -> float:
        """``Rev_in`` — total value of requests served by inner workers."""
        return sum(
            record.request.value
            for record in self.records
            if record.kind is AssignmentKind.INNER
        )

    @property
    def revenue_outer(self) -> float:
        """``Rev_out`` — total ``v_r - v'_r`` over borrowed assignments."""
        return sum(
            record.platform_revenue
            for record in self.records
            if record.kind is AssignmentKind.OUTER
        )

    @property
    def revenue(self) -> float:
        """``Rev = Rev_in + Rev_out`` (Eq. 1)."""
        return self.revenue_inner + self.revenue_outer

    @property
    def total_lender_income(self) -> float:
        """Everything earned by lending workers out."""
        return sum(self.lender_income.values())

    # -- counters used by the paper's tables ----------------------------------

    @property
    def completed_requests(self) -> int:
        """|CpR| — requests of this platform that were served."""
        return len(self.records)

    @property
    def cooperative_requests(self) -> int:
        """|CoR| — requests served by borrowed (outer) workers."""
        return sum(
            1 for record in self.records if record.kind is AssignmentKind.OUTER
        )

    @property
    def rejected_requests(self) -> int:
        """Requests this platform rejected."""
        return len(self.rejected)

    def outer_payment_rates(self) -> list[float]:
        """``v'_r / v_r`` for every cooperative assignment."""
        return [
            record.payment / record.request.value
            for record in self.records
            if record.kind is AssignmentKind.OUTER
        ]

    def mean_pickup_distance(self) -> float:
        """Average worker-to-request distance (travel-aware extension)."""
        if not self.records:
            return 0.0
        return sum(record.pickup_distance for record in self.records) / len(
            self.records
        )
