"""Minimum outer-payment estimation — Algorithm 2 of the paper.

DemCOM pays outer workers as little as possible.  The minimum payment at
which *some* eligible outer worker would accept is a random quantity (each
worker's willingness is random), so Algorithm 2 estimates its expectation by
Monte-Carlo sampling: each sampling instance simulates every candidate
worker's acceptance at trial prices and bisects on the price axis to find
where acceptance switches on; the estimate is the mean over
``n_s = ceil(4 ln(2/xi) / eta^2)`` instances (Lemma 1 gives the resulting
``(xi, eta)`` accuracy guarantee).

Instances where nobody accepts even at the full request value contribute
``v_r + epsilon``; if such instances dominate, the estimate exceeds ``v_r``
and DemCOM rejects the request (Algorithm 1, lines 13-14).
"""

from __future__ import annotations

import math
import random
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core.acceptance import AcceptanceEstimator
from repro.errors import ConfigurationError
from repro.obs import NULL_PROBE, Probe

__all__ = ["MinimumOuterPaymentEstimator", "PaymentEstimate", "sample_count"]


def sample_count(xi: float, eta: float) -> int:
    """``n_s = ceil(4 ln(2/xi) / eta^2)`` — Lemma 1's sample bound."""
    if not 0.0 < xi < 1.0:
        raise ConfigurationError(f"xi must be in (0, 1), got {xi}")
    if not 0.0 < eta < 1.0:
        raise ConfigurationError(f"eta must be in (0, 1), got {eta}")
    return int(math.ceil(4.0 * math.log(2.0 / xi) / (eta * eta)))


@dataclass(frozen=True, slots=True)
class PaymentEstimate:
    """Result of one Algorithm-2 run.

    Attributes
    ----------
    payment:
        The estimated minimum outer payment ``v'_r``.  May exceed the
        request value, which signals "reject" to DemCOM.
    samples:
        Number of Monte-Carlo instances averaged.
    rejected_instances:
        Instances in which no candidate accepted even at the full value.
    """

    payment: float
    samples: int
    rejected_instances: int

    @property
    def always_rejected(self) -> bool:
        """True iff no instance ever found an accepting worker."""
        return self.rejected_instances == self.samples


class MinimumOuterPaymentEstimator:
    """Monte-Carlo + bisection estimator of the minimum outer payment.

    Parameters
    ----------
    estimator:
        The Eq.-4 acceptance estimator (shared with the algorithm).
    xi, eta:
        Accuracy knobs of Lemma 1; they fix the instance count and the
        bisection tolerance ``xi * v_r``.
    epsilon:
        Absolute bisection floor and the surcharge marking an
        impossible-to-serve instance.
    """

    def __init__(
        self,
        estimator: AcceptanceEstimator,
        xi: float = 0.1,
        eta: float = 0.5,
        epsilon: float = 1e-6,
    ):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.estimator = estimator
        self.xi = xi
        self.eta = eta
        self.epsilon = epsilon
        self.samples = sample_count(xi, eta)

    def _anyone_accepts(
        self,
        payment: float,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
    ) -> bool:
        """Simulate one acceptance round at ``payment`` (Alg. 2 lines 4/9)."""
        for worker_id in worker_ids:
            probability = self.estimator.probability(
                payment, worker_id, request_value
            )
            if probability > 0.0 and rng.random() <= probability:
                return True
        return False

    def estimate(
        self,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
        probe: Probe = NULL_PROBE,
    ) -> PaymentEstimate:
        """Run Algorithm 2 for a request of value ``request_value``.

        ``worker_ids`` are the outer candidates already filtered for the
        Definition-2.6 constraints (Algorithm 1, line 8 computes that set).
        ``probe`` receives a ``payment.estimate`` span plus the
        Monte-Carlo instance / bisection-iteration accounting; the no-op
        default never draws from ``rng`` differently, so telemetry cannot
        perturb the estimate.
        """
        if request_value <= 0:
            raise ConfigurationError(
                f"request value must be positive, got {request_value}"
            )
        if not worker_ids:
            # No candidates: every instance is a rejection.
            return PaymentEstimate(
                payment=request_value + self.epsilon,
                samples=self.samples,
                rejected_instances=self.samples,
            )

        span = (
            probe.span(
                "payment.estimate",
                category="payment",
                value=request_value,
                candidates=len(worker_ids),
                samples=self.samples,
            )
            if probe.enabled
            else None
        )
        tolerance = max(self.epsilon, self.xi * request_value)
        total = 0.0
        rejected = 0
        iterations = 0
        for _ in range(self.samples):
            if not self._anyone_accepts(
                request_value, request_value, worker_ids, rng
            ):
                total += request_value + self.epsilon
                rejected += 1
                continue
            low = 0.0
            high = request_value
            mid = high / 2.0
            while high - low > tolerance:
                iterations += 1
                if self._anyone_accepts(mid, request_value, worker_ids, rng):
                    high = mid
                else:
                    low = mid
                mid = (high + low) / 2.0
            # The instance's value is the bracket midpoint, which sits at or
            # *below* the smallest payment observed to attract a worker.
            # This undershoot is the essence of DemCOM's weakness (§III-D):
            # offers at the estimated minimum clear the workers' acceptance
            # threshold only a minority of the time (the paper measures
            # ~17%), which is precisely what motivates RamCOM's
            # expected-revenue pricing.
            total += mid
        estimate = PaymentEstimate(
            payment=total / self.samples,
            samples=self.samples,
            rejected_instances=rejected,
        )
        if probe.enabled:
            probe.count("payment_mc_instances", self.samples)
            probe.count("payment_mc_iterations", iterations)
            probe.observe("payment_mc_iterations_per_estimate", iterations)
            if span is not None:
                span.annotate(
                    payment=estimate.payment,
                    rejected_instances=rejected,
                    bisection_iterations=iterations,
                )
                span.end()
        return estimate
