"""Minimum outer-payment estimation — Algorithm 2 of the paper.

DemCOM pays outer workers as little as possible.  The minimum payment at
which *some* eligible outer worker would accept is a random quantity (each
worker's willingness is random), so Algorithm 2 estimates its expectation by
Monte-Carlo sampling: each sampling instance simulates every candidate
worker's acceptance at trial prices and bisects on the price axis to find
where acceptance switches on; the estimate is the mean over
``n_s = ceil(4 ln(2/xi) / eta^2)`` instances (Lemma 1 gives the resulting
``(xi, eta)`` accuracy guarantee).

Instances where nobody accepts even at the full request value contribute
``v_r + epsilon``; if such instances dominate, the estimate exceeds ``v_r``
and DemCOM rejects the request (Algorithm 1, lines 13-14).

The estimator is the dominant per-decision cost of DemCOM (one Eq.-4 query
per candidate per bisection step, times ``n_s`` instances), so by default it
runs on the snapshot *fast path*: candidate histories are materialised once
per :meth:`MinimumOuterPaymentEstimator.estimate` call
(:meth:`~repro.core.acceptance.AcceptanceEstimator.snapshot`), and the Eq.-4
probability vector at each trial price is computed once and memoised across
the Monte-Carlo instances — all ``n_s`` instances bisect the same dyadic
price grid, so the empirical-CDF evaluations collapse from
``O(n_s * depth * |candidates|)`` to ``O(grid * |candidates|)``.  The fast
path draws the *exact same RNG sequence* as the reference path (one uniform
per candidate with positive acceptance probability, in candidate order,
until one accepts), so results are bit-identical — docs/PERFORMANCE.md
spells out the argument, and the golden tests in
``tests/test_perf_fastpath.py`` pin it down.  Pass ``fast_path=False`` to
run the reference per-query implementation (the benchmark baseline).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core.acceptance import AcceptanceEstimator
from repro.errors import ConfigurationError
from repro.obs import NULL_PROBE, Probe

__all__ = ["MinimumOuterPaymentEstimator", "PaymentEstimate", "sample_count"]


def sample_count(xi: float, eta: float) -> int:
    """``n_s = ceil(4 ln(2/xi) / eta^2)`` — Lemma 1's sample bound."""
    if not 0.0 < xi < 1.0:
        raise ConfigurationError(f"xi must be in (0, 1), got {xi}")
    if not 0.0 < eta < 1.0:
        raise ConfigurationError(f"eta must be in (0, 1), got {eta}")
    return int(math.ceil(4.0 * math.log(2.0 / xi) / (eta * eta)))


@dataclass(frozen=True, slots=True)
class PaymentEstimate:
    """Result of one Algorithm-2 run.

    Attributes
    ----------
    payment:
        The estimated minimum outer payment ``v'_r``.  May exceed the
        request value, which signals "reject" to DemCOM.
    samples:
        Number of Monte-Carlo instances averaged.
    rejected_instances:
        Instances in which no candidate accepted even at the full value.
    """

    payment: float
    samples: int
    rejected_instances: int

    @property
    def always_rejected(self) -> bool:
        """True iff no instance ever found an accepting worker."""
        return self.rejected_instances == self.samples


class MinimumOuterPaymentEstimator:
    """Monte-Carlo + bisection estimator of the minimum outer payment.

    Parameters
    ----------
    estimator:
        The Eq.-4 acceptance estimator (shared with the algorithm).
    xi, eta:
        Accuracy knobs of Lemma 1; they fix the instance count and the
        bisection tolerance ``xi * v_r``.
    epsilon:
        Absolute bisection floor and the surcharge marking an
        impossible-to-serve instance.
    fast_path:
        Run the snapshot fast path (default).  ``False`` selects the
        reference per-query implementation — same results bit for bit,
        kept as the golden baseline for the fast-path equivalence tests
        and ``benchmarks/bench_hotpath.py``.
    """

    def __init__(
        self,
        estimator: AcceptanceEstimator,
        xi: float = 0.1,
        eta: float = 0.5,
        epsilon: float = 1e-6,
        fast_path: bool = True,
    ):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.estimator = estimator
        self.xi = xi
        self.eta = eta
        self.epsilon = epsilon
        self.fast_path = fast_path
        self.samples = sample_count(xi, eta)

    def _anyone_accepts(
        self,
        payment: float,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
    ) -> bool:
        """Simulate one acceptance round at ``payment`` (Alg. 2 lines 4/9).

        Reference path: one ``probability`` query per candidate.
        """
        for worker_id in worker_ids:
            probability = self.estimator.probability(
                payment, worker_id, request_value
            )
            if probability > 0.0 and rng.random() <= probability:
                return True
        return False

    def _run_instances_reference(
        self,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
        tolerance: float,
    ) -> tuple[float, int, int]:
        """The pre-fast-path instance loop (kept as the golden baseline)."""
        total = 0.0
        rejected = 0
        iterations = 0
        for _ in range(self.samples):
            if not self._anyone_accepts(
                request_value, request_value, worker_ids, rng
            ):
                total += request_value + self.epsilon
                rejected += 1
                continue
            low = 0.0
            high = request_value
            mid = high / 2.0
            while high - low > tolerance:
                iterations += 1
                if self._anyone_accepts(mid, request_value, worker_ids, rng):
                    high = mid
                else:
                    low = mid
                mid = (high + low) / 2.0
            total += mid
        return total, rejected, iterations

    def _run_instances_fast(
        self,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
        tolerance: float,
    ) -> tuple[float, int, int]:
        """Snapshot fast path: same instances, same draws, shared Eq.-4 work.

        Two observations make this bit-identical to the reference loop while
        doing a fraction of its work:

        * **The probability vector at an offer is draw-independent.**  A
          round accepts/rejects by drawing one uniform per candidate whose
          Eq.-4 probability is positive, in candidate order, until one
          accepts — the draws depend only on the probability *values*, so
          precomputing ``[pr(offer, w) for w in candidates]`` and iterating
          it preserves the exact RNG sequence (a probability of 0 draws
          nothing on either path; a probability of exactly
          ``size/size == 1.0`` always satisfies ``draw() <= 1.0``, so its
          uniform is still consumed).
        * **Instances share the trial-price grid.**  Every instance first
          probes ``v_r``, then bisects midpoints of dyadic subintervals of
          ``[0, v_r]`` down to the same tolerance — a set of at most
          ``2^depth`` distinct prices probed by all ``n_s`` instances.
          Memoising the probability vector per offer therefore turns
          ``O(n_s * depth * |candidates|)`` empirical-CDF evaluations into
          ``O(grid * |candidates|)``.

        Probabilities are computed from the same histories with the same
        ``bisect_right``/division expressions as
        :meth:`AcceptanceEstimator.probability <repro.core.acceptance.
        AcceptanceEstimator.probability>`, so every float compared against
        a uniform is identical bit for bit.
        """
        snapshot = self.estimator.snapshot(worker_ids)
        rows = snapshot.rows
        # Every trial price probed below is positive (the first probe is
        # v_r > 0 and every bisection midpoint sits strictly inside
        # (0, v_r)), so the cold-start probability is the plain default.
        cold = snapshot.default_probability
        relative = snapshot.mode == "relative"
        draw = rng.random
        chop = bisect_right
        epsilon = self.epsilon
        probabilities: dict[float, list[float]] = {}
        full_offer = request_value / request_value if relative else request_value
        full_probs = [
            cold if history is None else chop(history, full_offer) / size
            for history, size in rows
        ]
        total = 0.0
        rejected = 0
        iterations = 0
        for _ in range(self.samples):
            for probability in full_probs:
                if probability > 0.0 and draw() <= probability:
                    break
            else:
                total += request_value + epsilon
                rejected += 1
                continue
            low = 0.0
            high = request_value
            mid = high / 2.0
            while high - low > tolerance:
                iterations += 1
                offer = mid / request_value if relative else mid
                probs = probabilities.get(offer)
                if probs is None:
                    probs = [
                        cold if history is None else chop(history, offer) / size
                        for history, size in rows
                    ]
                    probabilities[offer] = probs
                for probability in probs:
                    if probability > 0.0 and draw() <= probability:
                        high = mid
                        break
                else:
                    low = mid
                mid = (high + low) / 2.0
            total += mid
        return total, rejected, iterations

    def estimate(
        self,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
        probe: Probe = NULL_PROBE,
    ) -> PaymentEstimate:
        """Run Algorithm 2 for a request of value ``request_value``.

        ``worker_ids`` are the outer candidates already filtered for the
        Definition-2.6 constraints (Algorithm 1, line 8 computes that set).
        ``probe`` receives a ``payment.estimate`` span plus the
        Monte-Carlo instance / bisection-iteration accounting; the no-op
        default never draws from ``rng`` differently, so telemetry cannot
        perturb the estimate.  The span is closed even when the estimator
        raises mid-run (flagged ``failed=True``, mirroring the
        ``Stopwatch`` failure pattern), so a crashing estimate never leaks
        an open span into the trace.
        """
        if request_value <= 0:
            raise ConfigurationError(
                f"request value must be positive, got {request_value}"
            )
        if not worker_ids:
            # No candidates: every instance is a rejection.
            return PaymentEstimate(
                payment=request_value + self.epsilon,
                samples=self.samples,
                rejected_instances=self.samples,
            )

        span = (
            probe.span(
                "payment.estimate",
                category="payment",
                value=request_value,
                candidates=len(worker_ids),
                samples=self.samples,
            )
            if probe.enabled
            else None
        )
        failed = True
        try:
            tolerance = max(self.epsilon, self.xi * request_value)
            if self.fast_path:
                total, rejected, iterations = self._run_instances_fast(
                    request_value, worker_ids, rng, tolerance
                )
            else:
                total, rejected, iterations = self._run_instances_reference(
                    request_value, worker_ids, rng, tolerance
                )
            estimate = PaymentEstimate(
                payment=total / self.samples,
                samples=self.samples,
                rejected_instances=rejected,
            )
            failed = False
        finally:
            if span is not None and failed:
                span.annotate(failed=True)
                span.end()
        if probe.enabled:
            probe.count("payment_mc_instances", self.samples)
            probe.count("payment_mc_iterations", iterations)
            probe.observe("payment_mc_iterations_per_estimate", iterations)
            if span is not None:
                span.annotate(
                    payment=estimate.payment,
                    rejected_instances=rejected,
                    bisection_iterations=iterations,
                )
                span.end()
        return estimate
