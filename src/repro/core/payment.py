"""Minimum outer-payment estimation — Algorithm 2 of the paper.

DemCOM pays outer workers as little as possible.  The minimum payment at
which *some* eligible outer worker would accept is a random quantity (each
worker's willingness is random), so Algorithm 2 estimates its expectation by
Monte-Carlo sampling: each sampling instance simulates every candidate
worker's acceptance at trial prices and bisects on the price axis to find
where acceptance switches on; the estimate is the mean over
``n_s = ceil(4 ln(2/xi) / eta^2)`` instances (Lemma 1 gives the resulting
``(xi, eta)`` accuracy guarantee).

Instances where nobody accepts even at the full request value contribute
``v_r + epsilon``; if such instances dominate, the estimate exceeds ``v_r``
and DemCOM rejects the request (Algorithm 1, lines 13-14).

The estimator is the dominant per-decision cost of DemCOM (one Eq.-4 query
per candidate per bisection step, times ``n_s`` instances), so by default it
runs on the snapshot *fast path*: candidate histories are materialised once
per :meth:`MinimumOuterPaymentEstimator.estimate` call
(:meth:`~repro.core.acceptance.AcceptanceEstimator.snapshot`), and the Eq.-4
probability vector at each trial price is computed once and memoised across
the Monte-Carlo instances — all ``n_s`` instances bisect the same dyadic
price grid, so the empirical-CDF evaluations collapse from
``O(n_s * depth * |candidates|)`` to ``O(grid * |candidates|)``.  The fast
path draws the *exact same RNG sequence* as the reference path (one uniform
per candidate with positive acceptance probability, in candidate order,
until one accepts), so results are bit-identical — docs/PERFORMANCE.md
spells out the argument, and the golden tests in
``tests/test_perf_fastpath.py`` pin it down.  Pass ``fast_path=False`` to
run the reference per-query implementation (the benchmark baseline).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core import payment_kernel
from repro.core.acceptance import AcceptanceEstimator
from repro.errors import ConfigurationError
from repro.obs import NULL_PROBE, Probe

__all__ = ["MinimumOuterPaymentEstimator", "PaymentEstimate", "sample_count"]


def sample_count(xi: float, eta: float) -> int:
    """``n_s = ceil(4 ln(2/xi) / eta^2)`` — Lemma 1's sample bound."""
    if not 0.0 < xi < 1.0:
        raise ConfigurationError(f"xi must be in (0, 1), got {xi}")
    if not 0.0 < eta < 1.0:
        raise ConfigurationError(f"eta must be in (0, 1), got {eta}")
    return int(math.ceil(4.0 * math.log(2.0 / xi) / (eta * eta)))


@dataclass(frozen=True, slots=True)
class PaymentEstimate:
    """Result of one Algorithm-2 run.

    Attributes
    ----------
    payment:
        The estimated minimum outer payment ``v'_r``.  May exceed the
        request value, which signals "reject" to DemCOM.
    samples:
        Number of Monte-Carlo instances averaged.
    rejected_instances:
        Instances in which no candidate accepted even at the full value.
    """

    payment: float
    samples: int
    rejected_instances: int

    @property
    def always_rejected(self) -> bool:
        """True iff no instance ever found an accepting worker."""
        return self.rejected_instances == self.samples


class MinimumOuterPaymentEstimator:
    """Monte-Carlo + bisection estimator of the minimum outer payment.

    Parameters
    ----------
    estimator:
        The Eq.-4 acceptance estimator (shared with the algorithm).
    xi, eta:
        Accuracy knobs of Lemma 1; they fix the instance count and the
        bisection tolerance ``xi * v_r``.
    epsilon:
        Absolute bisection floor and the surcharge marking an
        impossible-to-serve instance.
    fast_path:
        Run the snapshot fast path (default).  ``False`` selects the
        reference per-query implementation — same results bit for bit,
        kept as the golden baseline for the fast-path equivalence tests
        and ``benchmarks/bench_hotpath.py``.
    backend:
        ``"python"`` (default — the scalar paths above, byte-stable),
        ``"numpy"`` (the vectorized array backend of
        :mod:`repro.core.payment_kernel`; requires numpy) or ``"auto"``
        (numpy when importable, pure Python otherwise).  The
        ``REPRO_PAYMENT_BACKEND`` environment variable overrides this
        argument.  The numpy backend is pinned to the scalar paths by
        estimate-value equivalence at documented tolerance, not bit
        identity — see docs/PERFORMANCE.md#the-array-backend.
    kernel_seed:
        Base seed of the array backend's pinned per-request uniform
        streams (ignored by the pure-Python backend).  Estimates with a
        ``key`` draw from a generator seeded by ``(kernel_seed, key)``
        alone, making them independent of call order and batching.
    vector_min_candidates:
        Candidate-count crossover for the numpy backend: below it the
        scalar fast path beats the kernel's fixed per-call overhead
        (matrix build, grid curves), so the estimate delegates to it.
        The rule is a pure function of the candidate set, so a run's
        estimates are identical whatever order or batching requests
        arrive in.
    """

    def __init__(
        self,
        estimator: AcceptanceEstimator,
        xi: float = 0.1,
        eta: float = 0.5,
        epsilon: float = 1e-6,
        fast_path: bool = True,
        backend: str = "python",
        kernel_seed: int = 0,
        vector_min_candidates: int = 16,
    ):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.estimator = estimator
        self.xi = xi
        self.eta = eta
        self.epsilon = epsilon
        self.fast_path = fast_path
        self.backend = payment_kernel.resolve_backend(backend)
        self.kernel_seed = kernel_seed
        self.vector_min_candidates = vector_min_candidates
        self.samples = sample_count(xi, eta)
        #: Speculative results from :meth:`prime_batch`, keyed by
        #: ``(value, candidate_ids, key)`` and guarded by the candidates'
        #: :meth:`~repro.core.acceptance.AcceptanceEstimator.history_signature`
        #: — consumed by keyed :meth:`estimate` calls (gateway
        #: micro-batching).
        self._primed: dict[tuple, tuple[tuple[int, ...], tuple[float, int, int]]] = {}
        #: Number of keyed estimates answered from a primed batch.
        self.prime_hits = 0

    def _vectorize(self, worker_ids: Sequence[Hashable]) -> bool:
        """Whether the numpy backend runs this candidate set itself."""
        return (
            self.backend == "numpy"
            and len(worker_ids) >= self.vector_min_candidates
        )

    def _anyone_accepts(
        self,
        payment: float,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
    ) -> bool:
        """Simulate one acceptance round at ``payment`` (Alg. 2 lines 4/9).

        Reference path: one ``probability`` query per candidate.
        """
        for worker_id in worker_ids:
            probability = self.estimator.probability(
                payment, worker_id, request_value
            )
            if probability > 0.0 and rng.random() <= probability:
                return True
        return False

    def _run_instances_reference(
        self,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
        tolerance: float,
    ) -> tuple[float, int, int]:
        """The pre-fast-path instance loop (kept as the golden baseline)."""
        total = 0.0
        rejected = 0
        iterations = 0
        for _ in range(self.samples):
            if not self._anyone_accepts(
                request_value, request_value, worker_ids, rng
            ):
                total += request_value + self.epsilon
                rejected += 1
                continue
            low = 0.0
            high = request_value
            mid = high / 2.0
            while high - low > tolerance:
                iterations += 1
                if self._anyone_accepts(mid, request_value, worker_ids, rng):
                    high = mid
                else:
                    low = mid
                mid = (high + low) / 2.0
            total += mid
        return total, rejected, iterations

    def _run_instances_fast(
        self,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
        tolerance: float,
    ) -> tuple[float, int, int]:
        """Snapshot fast path: same instances, same draws, shared Eq.-4 work.

        Two observations make this bit-identical to the reference loop while
        doing a fraction of its work:

        * **The probability vector at an offer is draw-independent.**  A
          round accepts/rejects by drawing one uniform per candidate whose
          Eq.-4 probability is positive, in candidate order, until one
          accepts — the draws depend only on the probability *values*, so
          precomputing ``[pr(offer, w) for w in candidates]`` and iterating
          it preserves the exact RNG sequence (a probability of 0 draws
          nothing on either path; a probability of exactly
          ``size/size == 1.0`` always satisfies ``draw() <= 1.0``, so its
          uniform is still consumed).
        * **Instances share the trial-price grid.**  Every instance first
          probes ``v_r``, then bisects midpoints of dyadic subintervals of
          ``[0, v_r]`` down to the same tolerance — a set of at most
          ``2^depth`` distinct prices probed by all ``n_s`` instances.
          Memoising the probability vector per offer therefore turns
          ``O(n_s * depth * |candidates|)`` empirical-CDF evaluations into
          ``O(grid * |candidates|)``.

        Probabilities are computed from the same histories with the same
        ``bisect_right``/division expressions as
        :meth:`AcceptanceEstimator.probability <repro.core.acceptance.
        AcceptanceEstimator.probability>`, so every float compared against
        a uniform is identical bit for bit.
        """
        snapshot = self.estimator.snapshot(worker_ids)
        rows = snapshot.rows
        # Every trial price probed below is positive (the first probe is
        # v_r > 0 and every bisection midpoint sits strictly inside
        # (0, v_r)), so the cold-start probability is the plain default.
        cold = snapshot.default_probability
        relative = snapshot.mode == "relative"
        draw = rng.random
        chop = bisect_right
        epsilon = self.epsilon
        probabilities: dict[float, list[float]] = {}
        full_offer = request_value / request_value if relative else request_value
        full_probs = [
            cold if history is None else chop(history, full_offer) / size
            for history, size in rows
        ]
        total = 0.0
        rejected = 0
        iterations = 0
        for _ in range(self.samples):
            for probability in full_probs:
                if probability > 0.0 and draw() <= probability:
                    break
            else:
                total += request_value + epsilon
                rejected += 1
                continue
            low = 0.0
            high = request_value
            mid = high / 2.0
            while high - low > tolerance:
                iterations += 1
                offer = mid / request_value if relative else mid
                probs = probabilities.get(offer)
                if probs is None:
                    probs = [
                        cold if history is None else chop(history, offer) / size
                        for history, size in rows
                    ]
                    probabilities[offer] = probs
                for probability in probs:
                    if probability > 0.0 and draw() <= probability:
                        high = mid
                        break
                else:
                    low = mid
                mid = (high + low) / 2.0
            total += mid
        return total, rejected, iterations

    def _estimate_numpy(
        self,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
        tolerance: float,
        key: Hashable | None,
    ) -> tuple[float, int, int]:
        """Array-backend estimate: ``(payment, rejected, iterations)``.

        Keyed estimates first consult the speculative cache filled by
        :meth:`prime_batch`; a hit is bit-identical to recomputing (same
        per-request seed, and the per-candidate history signature in the
        cache entry guarantees the same histories — completions touching
        only *other* workers don't spoil it).  Keyless estimates seed
        from ``rng`` (stream-coupled, so they stay deterministic per run
        but cannot be speculated).
        """
        if key is not None and self._primed:
            cached = self._primed.pop(
                (request_value, tuple(worker_ids), key), None
            )
            if cached is not None:
                signature, result = cached
                if signature == self.estimator.history_signature(worker_ids):
                    self.prime_hits += 1
                    return result
        if key is not None:
            seed = payment_kernel.request_seed(self.kernel_seed, key)
        else:
            seed = rng.getrandbits(64)
        matrix = self.estimator.matrix(worker_ids)
        result = payment_kernel.estimate_batch(
            [matrix],
            [request_value],
            [seed],
            self.samples,
            self.xi,
            self.epsilon,
        )[0]
        if result is None:
            # Bisection depth beyond the kernel's grid cap (pathological
            # accuracy knobs): scalar fast path, stream-coupled.
            total, rejected, iterations = self._run_instances_fast(
                request_value, worker_ids, rng, tolerance
            )
            return total / self.samples, rejected, iterations
        return result

    def estimate(
        self,
        request_value: float,
        worker_ids: Sequence[Hashable],
        rng: random.Random,
        probe: Probe = NULL_PROBE,
        key: Hashable | None = None,
    ) -> PaymentEstimate:
        """Run Algorithm 2 for a request of value ``request_value``.

        ``worker_ids`` are the outer candidates already filtered for the
        Definition-2.6 constraints (Algorithm 1, line 8 computes that set).
        ``probe`` receives a ``payment.estimate`` span plus the
        Monte-Carlo instance / bisection-iteration accounting; the no-op
        default never draws from ``rng`` differently, so telemetry cannot
        perturb the estimate.  The span is closed even when the estimator
        raises mid-run (flagged ``failed=True``, mirroring the
        ``Stopwatch`` failure pattern), so a crashing estimate never leaks
        an open span into the trace.

        ``key`` is a stable per-request identity (DemCOM passes the
        request id).  The pure-Python backend ignores it; the array
        backend seeds its uniforms from ``(kernel_seed, key)`` so the
        estimate is independent of call order — the property that makes
        the gateway's micro-batched dispatch bit-identical to
        one-at-a-time processing (docs/SERVICE.md).
        """
        if request_value <= 0:
            raise ConfigurationError(
                f"request value must be positive, got {request_value}"
            )
        if not worker_ids:
            # No candidates: every instance is a rejection.
            return PaymentEstimate(
                payment=request_value + self.epsilon,
                samples=self.samples,
                rejected_instances=self.samples,
            )

        span = (
            probe.span(
                "payment.estimate",
                category="payment",
                value=request_value,
                candidates=len(worker_ids),
                samples=self.samples,
            )
            if probe.enabled
            else None
        )
        failed = True
        try:
            tolerance = max(self.epsilon, self.xi * request_value)
            if self._vectorize(worker_ids):
                payment, rejected, iterations = self._estimate_numpy(
                    request_value, worker_ids, rng, tolerance, key
                )
            elif self.fast_path:
                total, rejected, iterations = self._run_instances_fast(
                    request_value, worker_ids, rng, tolerance
                )
                payment = total / self.samples
            else:
                total, rejected, iterations = self._run_instances_reference(
                    request_value, worker_ids, rng, tolerance
                )
                payment = total / self.samples
            estimate = PaymentEstimate(
                payment=payment,
                samples=self.samples,
                rejected_instances=rejected,
            )
            failed = False
        finally:
            if span is not None and failed:
                span.annotate(failed=True)
                span.end()
        if probe.enabled:
            probe.count("payment_mc_instances", self.samples)
            probe.count("payment_mc_iterations", iterations)
            probe.observe("payment_mc_iterations_per_estimate", iterations)
            if span is not None:
                span.annotate(
                    payment=estimate.payment,
                    rejected_instances=rejected,
                    bisection_iterations=iterations,
                )
                span.end()
        return estimate

    def _grid_depth(self, request_value: float) -> int:
        tolerance = max(self.epsilon, self.xi * float(request_value))
        return payment_kernel.bisection_depth(request_value, tolerance)

    def estimate_many(
        self,
        items: Sequence[tuple[float, Sequence[Hashable], Hashable | None]],
        rng: random.Random,
        probe: Probe = NULL_PROBE,
    ) -> list[PaymentEstimate]:
        """Estimate a batch of ``(value, candidate_ids, key)`` requests.

        Result ``i`` equals ``estimate(*items[i])`` called in order — the
        batch API never changes values, only amortises work: on the numpy
        backend all shallow instances run as **one** kernel invocation.
        Sequential per-item calls are used whenever fidelity requires
        them (pure-Python backend, telemetry enabled, any item past the
        kernel's grid-depth cap, or any item below the
        ``vector_min_candidates`` crossover — those run the scalar fast
        path, which is rng-stream-coupled).
        """
        items = list(items)
        batchable = (
            self.backend == "numpy"
            and not probe.enabled
            and all(
                value > 0
                and (
                    not ids
                    or (
                        len(ids) >= self.vector_min_candidates
                        and self._grid_depth(value)
                        <= payment_kernel.MAX_GRID_DEPTH
                    )
                )
                for value, ids, _key in items
            )
        )
        if not batchable:
            return [
                self.estimate(value, ids, rng, probe=probe, key=key)
                for value, ids, key in items
            ]
        results: list[PaymentEstimate | None] = [None] * len(items)
        matrices = []
        values = []
        seeds = []
        positions = []
        for index, (value, ids, key) in enumerate(items):
            if not ids:
                results[index] = PaymentEstimate(
                    payment=value + self.epsilon,
                    samples=self.samples,
                    rejected_instances=self.samples,
                )
                continue
            cached = (
                self._primed.pop((value, tuple(ids), key), None)
                if key is not None and self._primed
                else None
            )
            if cached is not None and cached[0] == self.estimator.history_signature(
                ids
            ):
                self.prime_hits += 1
                result = cached[1]
                results[index] = PaymentEstimate(
                    payment=result[0],
                    samples=self.samples,
                    rejected_instances=result[1],
                )
                continue
            # Seeds are drawn in item order so keyless items consume rng
            # exactly as sequential estimate() calls would.
            if key is not None:
                seeds.append(payment_kernel.request_seed(self.kernel_seed, key))
            else:
                seeds.append(rng.getrandbits(64))
            matrices.append(self.estimator.matrix(ids))
            values.append(value)
            positions.append(index)
        if matrices:
            batch = payment_kernel.estimate_batch(
                matrices, values, seeds, self.samples, self.xi, self.epsilon
            )
            for position, result in zip(positions, batch):
                assert result is not None  # depth pre-checked above
                results[position] = PaymentEstimate(
                    payment=result[0],
                    samples=self.samples,
                    rejected_instances=result[1],
                )
        return [result for result in results if result is not None]

    def prime_batch(
        self,
        items: Sequence[tuple[float, Sequence[Hashable], Hashable]],
    ) -> int:
        """Speculatively evaluate keyed estimates for queued requests.

        One kernel invocation prices every ``(value, candidate_ids,
        key)`` item; results are cached alongside the candidates'
        :meth:`~repro.core.acceptance.AcceptanceEstimator.history_signature`
        and consumed by the next matching keyed :meth:`estimate` call
        whose candidates' histories are still unchanged.  A relevant
        history mutation (or any input mismatch) between priming and the
        real call simply misses the cache — correctness never depends on
        the speculation being right.  Previous leftovers are dropped, so
        the cache is bounded by one batch.  Returns the number of primed
        estimates; the pure-Python backend never speculates (its
        estimates are rng-stream-coupled), and candidate sets below the
        ``vector_min_candidates`` crossover run the scalar path, so
        neither is primed.
        """
        self._primed.clear()
        if self.backend != "numpy":
            return 0
        prepared: list[tuple[float, tuple[Hashable, ...], Hashable]] = []
        for value, worker_ids, key in items:
            if key is None or value <= 0 or not self._vectorize(worker_ids):
                continue
            if self._grid_depth(value) > payment_kernel.MAX_GRID_DEPTH:
                continue
            prepared.append((value, tuple(worker_ids), key))
        if not prepared:
            return 0
        matrices = [
            self.estimator.matrix(ids) for _, ids, _ in prepared
        ]
        seeds = [
            payment_kernel.request_seed(self.kernel_seed, key)
            for _, _, key in prepared
        ]
        values = [value for value, _, _ in prepared]
        results = payment_kernel.estimate_batch(
            matrices, values, seeds, self.samples, self.xi, self.epsilon
        )
        for (value, ids, key), result in zip(prepared, results):
            if result is not None:
                self._primed[(value, ids, key)] = (
                    self.estimator.history_signature(ids),
                    result,
                )
        return len(self._primed)
