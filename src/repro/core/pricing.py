"""Maximum-expected-revenue pricing (Definition 4.1) used by RamCOM.

RamCOM does not pay outer workers the bare minimum; it trades revenue
against acceptance probability by choosing the payment that maximizes

    E(v', W) = (v_r - v') * pr(v', W),                      (Eq. 5)

where ``pr(v', W) = 1 - prod_w (1 - pr(v', w))`` is the probability that
*at least one* candidate accepts.  The paper delegates this maximization to
the dynamic-pricing algorithm of Tong et al. [14]; as documented in
DESIGN.md we substitute an exact maximization over a discrete payment grid
of the same objective, with the ``O(max v_r)`` complexity the paper quotes.

Candidate grid: the union of (a) an even grid over ``(0, v_r]`` and (b) the
candidates' history values below ``v_r`` — the empirical CDFs of Eq. 4 are
step functions whose steps sit exactly at history values, so including them
makes the discrete maximization exact for the estimator the algorithm
actually uses.

Like Algorithm 2, the any-acceptance product is the pricer's hot loop (one
Eq.-4 query per candidate per grid point).  By default :meth:`quote` runs
on the snapshot fast path — candidate histories are materialised once per
call (:meth:`~repro.core.acceptance.AcceptanceEstimator.snapshot`) and the
product iterates ``(history, size)`` tuples with an inlined ``bisect`` and
one offer normalisation per grid point.  The product multiplies the exact
same factors in the exact same candidate order, so quotes are bit-identical
to the reference path (``fast_path=False``); see docs/PERFORMANCE.md.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core.acceptance import AcceptanceEstimator
from repro.errors import ConfigurationError

__all__ = ["MaximumExpectedRevenuePricer", "PricingQuote"]


@dataclass(frozen=True, slots=True)
class PricingQuote:
    """The pricer's answer for one cooperative request.

    Attributes
    ----------
    payment:
        The outer payment ``v'_r`` maximizing expected revenue.
    expected_revenue:
        ``(v_r - payment) * acceptance_probability`` at the optimum.
    acceptance_probability:
        Estimated probability that at least one candidate accepts.
    """

    payment: float
    expected_revenue: float
    acceptance_probability: float


class MaximumExpectedRevenuePricer:
    """Exact discrete maximizer of Definition 4.1's expected revenue.

    Parameters
    ----------
    estimator:
        The shared Eq.-4 acceptance estimator.
    grid_steps:
        Size of the even payment grid over ``(0, v_r]``.
    include_history_breakpoints:
        Also evaluate candidates' history values (the CDF step points).
        Disabling this reproduces a plain grid search (ablation knob).
    max_breakpoints:
        Cap on history breakpoints considered, for dense histories.
    fast_path:
        Evaluate the any-acceptance product over a per-call history
        snapshot (default).  ``False`` selects the reference per-query
        implementation — bit-identical results, kept for the equivalence
        tests and the ``bench_hotpath`` baseline.
    """

    def __init__(
        self,
        estimator: AcceptanceEstimator,
        grid_steps: int = 50,
        include_history_breakpoints: bool = True,
        max_breakpoints: int = 200,
        fast_path: bool = True,
    ):
        if grid_steps < 1:
            raise ConfigurationError(f"grid_steps must be >= 1, got {grid_steps}")
        if max_breakpoints < 0:
            raise ConfigurationError(
                f"max_breakpoints must be >= 0, got {max_breakpoints}"
            )
        self.estimator = estimator
        self.grid_steps = grid_steps
        self.include_history_breakpoints = include_history_breakpoints
        self.max_breakpoints = max_breakpoints
        self.fast_path = fast_path

    def _any_acceptance_probability(
        self, payment: float, request_value: float, worker_ids: Sequence[Hashable]
    ) -> float:
        none_accepts = 1.0
        for worker_id in worker_ids:
            none_accepts *= 1.0 - self.estimator.probability(
                payment, worker_id, request_value
            )
            if none_accepts == 0.0:
                return 1.0
        return 1.0 - none_accepts

    def _candidate_payments(
        self, request_value: float, worker_ids: Sequence[Hashable]
    ) -> list[float]:
        step = request_value / self.grid_steps
        payments = [step * i for i in range(1, self.grid_steps + 1)]
        if self.include_history_breakpoints:
            breakpoints: set[float] = set()
            for worker_id in worker_ids:
                # Every CDF step point <= v_r is a candidate payment.
                for payment in self.estimator.candidate_payments(
                    worker_id, request_value
                ):
                    breakpoints.add(payment)
                    if len(breakpoints) >= self.max_breakpoints:
                        break
                if len(breakpoints) >= self.max_breakpoints:
                    break
            payments.extend(v for v in breakpoints if 0.0 < v <= request_value)
        return payments

    def quote(
        self, request_value: float, worker_ids: Sequence[Hashable]
    ) -> PricingQuote:
        """Compute the expected-revenue-maximizing payment for a request."""
        if request_value <= 0:
            raise ConfigurationError(
                f"request value must be positive, got {request_value}"
            )
        if not worker_ids:
            return PricingQuote(
                payment=request_value, expected_revenue=0.0, acceptance_probability=0.0
            )
        rows = (
            self.estimator.snapshot(worker_ids).rows if self.fast_path else None
        )
        relative = self.estimator.mode == "relative"
        default_probability = self.estimator.default_probability
        best_payment = request_value
        best_expected = -1.0
        best_probability = 0.0
        for payment in self._candidate_payments(request_value, worker_ids):
            if rows is None:
                probability = self._any_acceptance_probability(
                    payment, request_value, worker_ids
                )
            else:
                # Fast path: same factors, same candidate order, one offer
                # normalisation per grid point — bit-identical product.
                offer = payment / request_value if relative else payment
                cold = default_probability if payment > 0 else 0.0
                none_accepts = 1.0
                for history, size in rows:
                    if history is None:
                        none_accepts *= 1.0 - cold
                    elif history[0] > offer:
                        # Probability 0: multiplying by 1.0 is a no-op.
                        continue
                    elif history[size - 1] <= offer:
                        # Probability exactly 1.0: the product collapses,
                        # matching the reference early-exit.
                        none_accepts = 0.0
                    else:
                        none_accepts *= (
                            1.0 - bisect_right(history, offer) / size
                        )
                    if none_accepts == 0.0:
                        break
                probability = 1.0 - none_accepts
            expected = (request_value - payment) * probability
            # Tie-break toward higher payment: same platform revenue but a
            # higher chance of acceptance (and a happier lender).
            if expected > best_expected or (
                expected == best_expected and payment > best_payment
            ):
                best_expected = expected
                best_payment = payment
                best_probability = probability
        return PricingQuote(
            payment=best_payment,
            expected_revenue=max(0.0, best_expected),
            acceptance_probability=best_probability,
        )
