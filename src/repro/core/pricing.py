"""Maximum-expected-revenue pricing (Definition 4.1) used by RamCOM.

RamCOM does not pay outer workers the bare minimum; it trades revenue
against acceptance probability by choosing the payment that maximizes

    E(v', W) = (v_r - v') * pr(v', W),                      (Eq. 5)

where ``pr(v', W) = 1 - prod_w (1 - pr(v', w))`` is the probability that
*at least one* candidate accepts.  The paper delegates this maximization to
the dynamic-pricing algorithm of Tong et al. [14]; as documented in
DESIGN.md we substitute an exact maximization over a discrete payment grid
of the same objective, with the ``O(max v_r)`` complexity the paper quotes.

Candidate grid: the union of (a) an even grid over ``(0, v_r]`` and (b) the
candidates' history values below ``v_r`` — the empirical CDFs of Eq. 4 are
step functions whose steps sit exactly at history values, so including them
makes the discrete maximization exact for the estimator the algorithm
actually uses.

Like Algorithm 2, the any-acceptance product is the pricer's hot loop (one
Eq.-4 query per candidate per grid point).  By default :meth:`quote` runs
on the snapshot fast path — candidate histories are materialised once per
call (:meth:`~repro.core.acceptance.AcceptanceEstimator.snapshot`) and the
product iterates ``(history, size)`` tuples with an inlined ``bisect`` and
one offer normalisation per grid point.  The product multiplies the exact
same factors in the exact same candidate order, so quotes are bit-identical
to the reference path (``fast_path=False``); see docs/PERFORMANCE.md.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core import payment_kernel
from repro.core.acceptance import AcceptanceEstimator
from repro.errors import ConfigurationError

__all__ = ["MaximumExpectedRevenuePricer", "PricingQuote"]


@dataclass(frozen=True, slots=True)
class PricingQuote:
    """The pricer's answer for one cooperative request.

    Attributes
    ----------
    payment:
        The outer payment ``v'_r`` maximizing expected revenue.
    expected_revenue:
        ``(v_r - payment) * acceptance_probability`` at the optimum.
    acceptance_probability:
        Estimated probability that at least one candidate accepts.
    """

    payment: float
    expected_revenue: float
    acceptance_probability: float


class MaximumExpectedRevenuePricer:
    """Exact discrete maximizer of Definition 4.1's expected revenue.

    Parameters
    ----------
    estimator:
        The shared Eq.-4 acceptance estimator.
    grid_steps:
        Size of the even payment grid over ``(0, v_r]``.
    include_history_breakpoints:
        Also evaluate candidates' history values (the CDF step points).
        Disabling this reproduces a plain grid search (ablation knob).
    max_breakpoints:
        Cap on history breakpoints considered, for dense histories.
    fast_path:
        Evaluate the any-acceptance product over a per-call history
        snapshot (default).  ``False`` selects the reference per-query
        implementation — bit-identical results, kept for the equivalence
        tests and the ``bench_hotpath`` baseline.
    backend:
        ``"python"`` (default), ``"numpy"`` or ``"auto"`` — same knob and
        ``REPRO_PAYMENT_BACKEND`` override as the payment estimator.  On
        the numpy backend the whole payment grid × candidate probability
        table is one vectorized evaluation
        (:func:`repro.core.payment_kernel.acceptance_probabilities`);
        quotes match the scalar path at documented float tolerance
        (docs/PERFORMANCE.md#the-array-backend).
    vector_min_candidates:
        Candidate-count crossover for the numpy backend: below it the
        scalar fast path is cheaper (fixed array-call overhead dominates
        tiny products), so the quote delegates to it.  The rule is a
        pure function of the candidate set, so a run's decisions are
        identical whatever order or batching requests arrive in.
    """

    def __init__(
        self,
        estimator: AcceptanceEstimator,
        grid_steps: int = 50,
        include_history_breakpoints: bool = True,
        max_breakpoints: int = 200,
        fast_path: bool = True,
        backend: str = "python",
        vector_min_candidates: int = 4,
    ):
        if grid_steps < 1:
            raise ConfigurationError(f"grid_steps must be >= 1, got {grid_steps}")
        if max_breakpoints < 0:
            raise ConfigurationError(
                f"max_breakpoints must be >= 0, got {max_breakpoints}"
            )
        self.estimator = estimator
        self.grid_steps = grid_steps
        self.include_history_breakpoints = include_history_breakpoints
        self.max_breakpoints = max_breakpoints
        self.fast_path = fast_path
        self.backend = payment_kernel.resolve_backend(backend)
        self.vector_min_candidates = vector_min_candidates
        #: Speculative quotes from :meth:`prime_quotes`, keyed by
        #: ``(value, candidate_ids)`` and guarded by the candidates'
        #: :meth:`~repro.core.acceptance.AcceptanceEstimator.history_signature`
        #: (quotes are deterministic — no RNG — so a signature match IS
        #: the answer, even if *other* workers' histories changed).
        self._primed: dict[tuple, tuple[tuple[int, ...], PricingQuote]] = {}
        #: Number of quotes answered from a primed batch.
        self.prime_hits = 0

    def _vectorize(self, worker_ids: Sequence[Hashable]) -> bool:
        """Whether the numpy backend prices this candidate set itself."""
        return (
            self.backend == "numpy"
            and len(worker_ids) >= self.vector_min_candidates
        )

    def _any_acceptance_probability(
        self, payment: float, request_value: float, worker_ids: Sequence[Hashable]
    ) -> float:
        none_accepts = 1.0
        for worker_id in worker_ids:
            none_accepts *= 1.0 - self.estimator.probability(
                payment, worker_id, request_value
            )
            if none_accepts == 0.0:
                return 1.0
        return 1.0 - none_accepts

    def _candidate_payments(
        self, request_value: float, worker_ids: Sequence[Hashable]
    ) -> list[float]:
        step = request_value / self.grid_steps
        payments = [step * i for i in range(1, self.grid_steps + 1)]
        if self.include_history_breakpoints:
            breakpoints: set[float] = set()
            for worker_id in worker_ids:
                # Every CDF step point <= v_r is a candidate payment.
                for payment in self.estimator.candidate_payments(
                    worker_id, request_value
                ):
                    breakpoints.add(payment)
                    if len(breakpoints) >= self.max_breakpoints:
                        break
                if len(breakpoints) >= self.max_breakpoints:
                    break
            payments.extend(v for v in breakpoints if 0.0 < v <= request_value)
        return payments

    def _quote_numpy(
        self, request_value: float, worker_ids: Sequence[Hashable]
    ) -> PricingQuote:
        """Array-backend quote: one vectorized probability table.

        Same candidate payments, the same sequential ``1 - p`` product in
        candidate order (``multiply.reduce``) and the same lexicographic
        ``(expected, payment)`` selection as the scalar loop.

        Payments at or past every history entry of *some* warm candidate
        collapse the product exactly (that candidate's Eq.-4 probability
        is ``size/size == 1.0``, so ``any_accepts == 1.0`` and
        ``expected == request_value - payment``, strictly decreasing) —
        the vectorized analogue of the scalar loop's product-collapse
        early exit.  Only the payments *below* that support bound need
        the probability table, which is where the table's cost lives;
        the answer is identical to evaluating every column.
        """
        kernel = payment_kernel
        np = kernel._np
        payments = np.asarray(
            self._candidate_payments(request_value, worker_ids),
            dtype=np.float64,
        )
        matrix = self.estimator.matrix(worker_ids)
        # Smallest offer at which some warm candidate accepts surely
        # (+inf when every candidate is cold — cold probability < 1).
        collapse = float(np.where(matrix.cold, np.inf, matrix.support_high).min())
        if matrix.mode == "relative":
            offers = payments / request_value
        else:
            offers = payments
        sure = offers >= collapse
        best_payment = -np.inf
        best_expected = -np.inf
        best_probability = 0.0
        if sure.any():
            # expected == request_value - payment here, strictly
            # decreasing, so only the smallest sure payment can win.
            payment = float(payments[sure].min())
            best_payment = payment
            best_expected = request_value - payment
            best_probability = 1.0
            payments = payments[~sure]
        if payments.size:
            probabilities = kernel.acceptance_probabilities(
                matrix, payments, request_value
            )
            none_accepts = np.multiply.reduce(1.0 - probabilities, axis=0)
            any_accepts = 1.0 - none_accepts
            expected = (request_value - payments) * any_accepts
            sub_best = float(expected.max())
            ties = expected == sub_best
            tie_payments = payments[ties]
            pick = int(tie_payments.argmax())
            sub_payment = float(tie_payments[pick])
            # Same lexicographic (expected, payment) rule as the scalar
            # loop, now across the two partitions.
            if (sub_best, sub_payment) > (best_expected, best_payment):
                best_expected = sub_best
                best_payment = sub_payment
                best_probability = float(any_accepts[ties][pick])
        return PricingQuote(
            payment=best_payment,
            expected_revenue=max(0.0, best_expected),
            acceptance_probability=best_probability,
        )

    def prime_quotes(
        self, items: Sequence[tuple[float, Sequence[Hashable]]]
    ) -> int:
        """Speculatively quote a batch of ``(value, candidate_ids)`` items.

        Quotes are pure functions of the inputs and the candidates'
        histories, so a later :meth:`quote` call with matching inputs
        (and an unchanged per-candidate history signature) returns the
        primed quote — identical by construction, never by luck.  Stale
        or unmatched entries are simply recomputed.  Only the numpy
        backend speculates, and only for candidate sets it would price
        itself (``vector_min_candidates``); returns the number primed.
        """
        self._primed.clear()
        if self.backend != "numpy":
            return 0
        for value, worker_ids in items:
            if value <= 0 or not self._vectorize(worker_ids):
                continue
            ids = tuple(worker_ids)
            cache_key = (value, ids)
            if cache_key not in self._primed:
                self._primed[cache_key] = (
                    self.estimator.history_signature(ids),
                    self._quote_numpy(value, ids),
                )
        return len(self._primed)

    def quote(
        self, request_value: float, worker_ids: Sequence[Hashable]
    ) -> PricingQuote:
        """Compute the expected-revenue-maximizing payment for a request."""
        if request_value <= 0:
            raise ConfigurationError(
                f"request value must be positive, got {request_value}"
            )
        if not worker_ids:
            return PricingQuote(
                payment=request_value, expected_revenue=0.0, acceptance_probability=0.0
            )
        if self._vectorize(worker_ids):
            if self._primed:
                ids = tuple(worker_ids)
                cached = self._primed.pop((request_value, ids), None)
                if cached is not None:
                    signature, primed = cached
                    if signature == self.estimator.history_signature(ids):
                        self.prime_hits += 1
                        return primed
            return self._quote_numpy(request_value, worker_ids)
        rows = (
            self.estimator.snapshot(worker_ids).rows if self.fast_path else None
        )
        relative = self.estimator.mode == "relative"
        default_probability = self.estimator.default_probability
        best_payment = request_value
        best_expected = -1.0
        best_probability = 0.0
        for payment in self._candidate_payments(request_value, worker_ids):
            if rows is None:
                probability = self._any_acceptance_probability(
                    payment, request_value, worker_ids
                )
            else:
                # Fast path: same factors, same candidate order, one offer
                # normalisation per grid point — bit-identical product.
                offer = payment / request_value if relative else payment
                cold = default_probability if payment > 0 else 0.0
                none_accepts = 1.0
                for history, size in rows:
                    if history is None:
                        none_accepts *= 1.0 - cold
                    elif history[0] > offer:
                        # Probability 0: multiplying by 1.0 is a no-op.
                        continue
                    elif history[size - 1] <= offer:
                        # Probability exactly 1.0: the product collapses,
                        # matching the reference early-exit.
                        none_accepts = 0.0
                    else:
                        none_accepts *= (
                            1.0 - bisect_right(history, offer) / size
                        )
                    if none_accepts == 0.0:
                        break
                probability = 1.0 - none_accepts
            expected = (request_value - payment) * probability
            # Tie-break toward higher payment: same platform revenue but a
            # higher chance of acceptance (and a happier lender).
            if expected > best_expected or (
                expected == best_expected and payment > best_payment
            ):
                best_expected = expected
                best_payment = payment
                best_probability = probability
        return PricingQuote(
            payment=best_payment,
            expected_revenue=max(0.0, best_expected),
            acceptance_probability=best_probability,
        )
