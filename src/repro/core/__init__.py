"""The paper's primary contribution: the Cross Online Matching model and the
DemCOM / RamCOM algorithms.

Layering inside this package (lower layers never import higher ones):

1. :mod:`entities`, :mod:`events` — the problem's vocabulary
   (Definitions 2.1-2.4) and arrival streams.
2. :mod:`waiting_list`, :mod:`exchange`, :mod:`platform_state` — per-platform
   worker pools and the cross-platform cooperation exchange.
3. :mod:`acceptance`, :mod:`payment`, :mod:`pricing` — the incentive
   machinery (Definition 3.1 / Algorithm 2 / Definition 4.1).
4. :mod:`matching`, :mod:`constraints` — matchings, revenue accounting
   (Definition 2.5) and the four COM constraints (Definition 2.6).
5. :mod:`base`, :mod:`demcom`, :mod:`ramcom` — the online algorithm protocol
   and the paper's two algorithms (Algorithms 1 and 3).
6. :mod:`simulator` — the arrival-driven engine that runs any registered
   algorithm over any workload and produces a :class:`SimulationResult`.
"""

from repro.core.entities import Request, Worker
from repro.core.events import ArrivalEvent, EventKind, EventStream, merge_streams
from repro.core.waiting_list import WaitingList
from repro.core.exchange import CooperationExchange
from repro.core.acceptance import AcceptanceEstimator, AcceptanceSnapshot
from repro.core.payment import MinimumOuterPaymentEstimator, PaymentEstimate
from repro.core.pricing import MaximumExpectedRevenuePricer, PricingQuote
from repro.core.matching import AssignmentKind, MatchRecord, MatchingLedger
from repro.core.constraints import validate_matching
from repro.core.base import Decision, DecisionKind, OnlineAlgorithm, PlatformContext
from repro.core.demcom import DemCOM
from repro.core.ramcom import RamCOM
from repro.core.simulator import (
    Scenario,
    SimulationResult,
    SimulationSession,
    Simulator,
    SimulatorConfig,
)
from repro.core.service_time import (
    ConstantServiceTime,
    ServiceTimeModel,
    TravelAwareServiceTime,
)
from repro.core.registry import available_algorithms, make_algorithm, register_algorithm

__all__ = [
    "Request",
    "Worker",
    "ArrivalEvent",
    "EventKind",
    "EventStream",
    "merge_streams",
    "WaitingList",
    "CooperationExchange",
    "AcceptanceEstimator",
    "AcceptanceSnapshot",
    "MinimumOuterPaymentEstimator",
    "PaymentEstimate",
    "MaximumExpectedRevenuePricer",
    "PricingQuote",
    "AssignmentKind",
    "MatchRecord",
    "MatchingLedger",
    "validate_matching",
    "Decision",
    "DecisionKind",
    "OnlineAlgorithm",
    "PlatformContext",
    "DemCOM",
    "RamCOM",
    "Scenario",
    "Simulator",
    "SimulatorConfig",
    "SimulationResult",
    "SimulationSession",
    "ServiceTimeModel",
    "ConstantServiceTime",
    "TravelAwareServiceTime",
    "available_algorithms",
    "make_algorithm",
    "register_algorithm",
]
