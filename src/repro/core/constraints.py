"""Post-hoc validation of the four COM constraints (Definition 2.6).

Every matching produced by any algorithm in this library — online or
offline — must satisfy:

* **Time**: the worker arrived no later than the request;
* **1-by-1**: each worker serves at most one request and vice versa;
* **Invariable**: an assignment is never revised (enforced structurally by
  the ledger: records are append-only — the validator re-checks uniqueness);
* **Range**: the request's location lies within the worker's service disk.

The validator is used throughout the test suite (including the
hypothesis-driven property tests) and is cheap enough to run on full
experiment outputs.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.matching import AssignmentKind, MatchRecord
from repro.errors import ConstraintViolationError

__all__ = ["validate_matching"]

_EPSILON = 1e-9


def validate_matching(records: Iterable[MatchRecord]) -> None:
    """Raise :class:`ConstraintViolationError` on the first violation.

    Also checks the COM-specific invariants that fall out of
    Definitions 2.3-2.5: outer assignments pay within ``(0, v_r]``, inner
    assignments pay nothing, and the record's kind is consistent with the
    worker's home platform.
    """
    seen_requests: set[str] = set()
    seen_workers: set[str] = set()
    for record in records:
        request = record.request
        worker = record.worker

        if worker.arrival_time > request.arrival_time + _EPSILON:
            raise ConstraintViolationError(
                "time",
                f"worker {worker.worker_id} (t={worker.arrival_time}) assigned "
                f"to earlier request {request.request_id} (t={request.arrival_time})",
            )

        if request.request_id in seen_requests:
            raise ConstraintViolationError(
                "1-by-1", f"request {request.request_id} served twice"
            )
        if worker.worker_id in seen_workers:
            raise ConstraintViolationError(
                "1-by-1", f"worker {worker.worker_id} assigned twice"
            )
        seen_requests.add(request.request_id)
        seen_workers.add(worker.worker_id)

        distance = worker.location.distance_to(request.location)
        if distance > worker.service_radius + _EPSILON:
            raise ConstraintViolationError(
                "range",
                f"worker {worker.worker_id} at distance {distance:.4f} exceeds "
                f"radius {worker.service_radius} for request {request.request_id}",
            )

        expected_kind = (
            AssignmentKind.INNER
            if worker.platform_id == request.platform_id
            else AssignmentKind.OUTER
        )
        if record.kind is not expected_kind:
            raise ConstraintViolationError(
                "kind",
                f"record for {request.request_id}/{worker.worker_id} marked "
                f"{record.kind.value}, but worker home={worker.platform_id} vs "
                f"request platform={request.platform_id}",
            )

        if record.kind is AssignmentKind.OUTER and not record.worker.shareable:
            raise ConstraintViolationError(
                "sharing",
                f"non-shareable worker {worker.worker_id} served an outer request",
            )
