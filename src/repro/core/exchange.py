"""The cross-platform cooperation exchange.

Cooperative platforms "only share the information of their unoccupied
workers" (Definition 2.3): each platform can see, for an incoming request,
which *outer* workers (workers of other platforms, flagged shareable) could
serve it — but nothing else about competitors.  The exchange is the neutral
component holding that shared view.

Concretely the exchange maintains one :class:`WaitingList` per platform and
answers two queries:

* ``inner_list(platform)`` — the platform's own pool;
* ``outer_candidates(platform, request)`` — eligible shareable workers of
  *every other* platform.

Claiming a worker (inner or outer) removes them atomically from their home
list, which enforces the paper's rule that "an outer crowd worker being
assigned to any request would be deleted from all its waiting lists over all
platforms".
"""

from __future__ import annotations

import heapq

from repro.core.entities import Request, Worker
from repro.core.waiting_list import WaitingList
from repro.errors import SimulationError
from repro.geo.roadnet import RoadNetwork

__all__ = ["CooperationExchange"]


class CooperationExchange:
    """Shared worker-availability state across cooperating platforms."""

    def __init__(
        self,
        platform_ids: list[str],
        cell_size_km: float = 1.0,
        road_network: RoadNetwork | None = None,
    ):
        if len(set(platform_ids)) != len(platform_ids):
            raise SimulationError("platform ids must be unique")
        self._lists: dict[str, WaitingList] = {
            platform_id: WaitingList(cell_size_km, road_network=road_network)
            for platform_id in platform_ids
        }
        self._home: dict[str, str] = {}  # worker_id -> platform_id

    @property
    def platform_ids(self) -> list[str]:
        """The cooperating platforms."""
        return list(self._lists.keys())

    def inner_list(self, platform_id: str) -> WaitingList:
        """The platform's own waiting list."""
        return self._lists[platform_id]

    def worker_arrives(self, worker: Worker) -> None:
        """Register a worker arrival on their home platform."""
        if worker.platform_id not in self._lists:
            raise SimulationError(
                "worker belongs to unknown platform",
                worker_id=worker.worker_id,
                platform_id=worker.platform_id,
            )
        self._lists[worker.platform_id].add(worker)
        self._home[worker.worker_id] = worker.platform_id

    def inner_candidates(self, platform_id: str, request: Request) -> list[Worker]:
        """Eligible inner workers for a request, nearest first."""
        return self._lists[platform_id].eligible_for(request)

    def has_inner_candidates(self, platform_id: str, request: Request) -> bool:
        """Whether any eligible inner worker exists — equal to
        ``bool(inner_candidates(...))`` but early-exiting, for the
        speculative batch-priming precheck."""
        return self._lists[platform_id].has_eligible(request)

    def outer_candidates(
        self,
        platform_id: str,
        request: Request,
        peers: list[str] | None = None,
    ) -> list[Worker]:
        """Eligible shareable outer workers, nearest first across platforms.

        ``peers`` restricts the query to a subset of the other platforms
        (the resilience layer passes the currently *reachable* peers);
        the default consults every other platform.

        Each per-platform :meth:`~repro.core.waiting_list.WaitingList.
        eligible_with_distance` result is already sorted by
        ``(distance, worker_id)``, so the cross-platform ordering is a
        k-way merge of those streams — no O(n log n) re-sort per request.
        The merge keys on the same distance the range constraint used
        (shortest-path when a road network is set, Euclidean otherwise),
        which also keeps outer ordering consistent with inner ordering.
        """
        consulted = self._lists.keys() if peers is None else peers
        streams = [
            (
                entry
                for entry in self._lists[other_id].eligible_with_distance(request)
                if entry[2].shareable
            )
            for other_id in consulted
            if other_id != platform_id
        ]
        # Worker ids are globally unique, so the (distance, worker_id)
        # tuple prefix is a total order and the Worker element is never
        # compared.
        return [worker for _, _, worker in heapq.merge(*streams)]

    def claim(self, worker_id: str, claimant: str | None = None) -> Worker:
        """Atomically remove a worker from the exchange (assignment).

        ``claimant`` (the assigning platform) is accepted for interface
        compatibility with :class:`repro.faults.ResilientExchange`, where
        it drives failure attribution; the plain exchange never fails.
        """
        home = self._home.pop(worker_id, None)
        if home is None:
            raise SimulationError(
                "worker is not available to claim",
                worker_id=worker_id,
                platform_id=claimant,
            )
        return self._lists[home].remove(worker_id)

    def evict(self, worker_id: str) -> Worker:
        """Administrative removal (e.g. a shift ending).

        Same effect as :meth:`claim`; a separate entry point so the
        resilience layer can keep administrative removals fault-free.
        """
        return self.claim(worker_id)

    def home_of(self, worker_id: str) -> str | None:
        """The worker's home platform id, or None once claimed/evicted."""
        return self._home.get(worker_id)

    def is_available(self, worker_id: str) -> bool:
        """True iff the worker is still waiting somewhere."""
        return worker_id in self._home

    def available_count(self, platform_id: str | None = None) -> int:
        """Waiting workers on one platform, or across all platforms."""
        if platform_id is not None:
            return len(self._lists[platform_id])
        return sum(len(waiting_list) for waiting_list in self._lists.values())
