"""Per-platform waiting lists.

Each platform maintains a waiting list of its currently unoccupied workers,
ordered by arrival time (paper §II-A, Table II).  The list is backed by a
:class:`~repro.geo.grid_index.GridIndex` so that "which waiting workers can
serve request r" — the time + range + 1-by-1 eligibility query every
algorithm issues per request — costs O(candidates) instead of O(|W|).

A worker assigned to a request is removed immediately (1-by-1 + invariable
constraints); with the reentry extension the simulator re-adds the worker at
a later time with a fresh arrival timestamp.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from repro.core.entities import Request, Worker
from repro.errors import SimulationError
from repro.geo.grid_index import GridIndex
from repro.geo.roadnet import RoadNetwork

__all__ = ["WaitingList"]

#: Default grid cell edge (km).  Service radii in the paper's experiments are
#: 0.5-2.5 km, so 1 km cells keep radius queries within a few cells.
DEFAULT_CELL_KM = 1.0


class WaitingList:
    """The ordered, spatially indexed pool of available workers."""

    def __init__(
        self,
        cell_size_km: float = DEFAULT_CELL_KM,
        road_network: RoadNetwork | None = None,
    ):
        self._workers: dict[str, Worker] = {}
        self._index = GridIndex(cell_size_km)
        #: Sorted multiset of live service radii.  The radius query below
        #: scans out to the *largest live* radius; tracking the multiset
        #: (rather than a high-water mark) lets the bound shrink when a
        #: large-radius worker leaves, so query cost tracks the live pool
        #: instead of the historical maximum.
        self._radii: list[float] = []
        #: Optional road metric (paper §II): when set, the range constraint
        #: uses shortest-path distance.  The Euclidean grid query remains a
        #: sound prefilter because road distance dominates Euclidean.
        self.road_network = road_network

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def __iter__(self) -> Iterator[Worker]:
        """Iterate in arrival order (insertion order == arrival order)."""
        return iter(self._workers.values())

    def add(self, worker: Worker) -> None:
        """A worker arrives and starts waiting."""
        if worker.worker_id in self._workers:
            raise SimulationError(
                f"worker {worker.worker_id} is already in the waiting list"
            )
        self._workers[worker.worker_id] = worker
        self._index.insert(worker.worker_id, worker.location)
        bisect.insort(self._radii, worker.service_radius)

    def remove(self, worker_id: str) -> Worker:
        """A worker leaves (assigned or withdrawn)."""
        worker = self._workers.pop(worker_id, None)
        if worker is None:
            raise SimulationError(f"worker {worker_id} is not in the waiting list")
        self._index.remove(worker_id)
        del self._radii[bisect.bisect_left(self._radii, worker.service_radius)]
        return worker

    @property
    def _max_radius(self) -> float:
        """The largest *live* service radius (0.0 for an empty pool)."""
        return self._radii[-1] if self._radii else 0.0

    def discard(self, worker_id: str) -> Worker | None:
        """Remove if present; returns the worker or None."""
        if worker_id in self._workers:
            return self.remove(worker_id)
        return None

    def get(self, worker_id: str) -> Worker | None:
        """Look up a waiting worker."""
        return self._workers.get(worker_id)

    def eligible_for(self, request: Request) -> list[Worker]:
        """Workers satisfying the time + range constraints for ``request``.

        (The 1-by-1 constraint is implicit: only unassigned workers are in
        the list.)  Results are sorted by (distance, worker_id) so greedy
        nearest-first selection is deterministic.
        """
        return [
            worker for _, _, worker in self.eligible_with_distance(request)
        ]

    def has_eligible(self, request: Request) -> bool:
        """Whether *any* worker satisfies the constraints for ``request``.

        Exactly ``bool(eligible_for(request))`` — the same constraint
        checks in the same candidate order — but returns at the first
        eligible worker instead of materialising and sorting the full
        list.  The gateway's speculative batch priming uses this as its
        inner-preemption precheck, where the answer is usually "yes"
        after O(1) candidates (docs/SERVICE.md#micro-batched-dispatch).
        """
        candidate_ids = self._index.query_radius(request.location, self._max_radius)
        for worker_id in candidate_ids:
            worker = self._workers[worker_id]
            if not worker.arrived_before(request):
                continue
            if not worker.can_reach(request):
                continue
            if self.road_network is not None and (
                self.road_network.distance(worker.location, request.location)
                > worker.service_radius
            ):
                continue
            return True
        return False

    def eligible_with_distance(
        self, request: Request
    ) -> list[tuple[float, str, Worker]]:
        """Eligible workers with their match distance, sorted by
        ``(distance, worker_id)``.

        The distance is the one the range constraint used (shortest-path
        when a road network is set, Euclidean otherwise).  Exposing the
        sorted tuples lets :class:`~repro.core.exchange.CooperationExchange`
        k-way-merge per-platform results without re-sorting.
        """
        candidate_ids = self._index.query_radius(request.location, self._max_radius)
        eligible: list[tuple[float, str, Worker]] = []
        for worker_id in candidate_ids:
            worker = self._workers[worker_id]
            if not worker.arrived_before(request):
                continue
            if not worker.can_reach(request):
                continue
            if self.road_network is None:
                distance = worker.location.distance_to(request.location)
            else:
                distance = self.road_network.distance(
                    worker.location, request.location
                )
                if distance > worker.service_radius:
                    continue
            eligible.append((distance, worker_id, worker))
        eligible.sort(key=lambda item: (item[0], item[1]))
        return eligible

    def nearest_eligible(self, request: Request) -> Worker | None:
        """The closest eligible worker, or None."""
        eligible = self.eligible_for(request)
        return eligible[0] if eligible else None

    def workers(self) -> list[Worker]:
        """Snapshot of all waiting workers in arrival order."""
        return list(self._workers.values())

    def clear(self) -> None:
        """Empty the list."""
        self._workers.clear()
        self._index.clear()
        self._radii.clear()
