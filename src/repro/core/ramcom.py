"""RamCOM — Randomized Cross Online Matching (Algorithm 3).

Two ideas on top of DemCOM:

* **Value-threshold routing.**  Draw ``k`` uniformly from ``{1..theta}``
  with ``theta = ceil(ln(max_v + 1))`` once per run; requests with
  ``v_r > e^k`` are reserved for inner workers (randomly chosen among the
  eligible ones), smaller-value requests go straight to the cooperative
  (outer) path.  This keeps inner capacity free for the big-value requests
  DemCOM squanders.

* **Expected-revenue pricing.**  Instead of the bare minimum payment,
  cooperative requests are priced by the MER pricer (Definition 4.1):
  the payment maximizing ``(v_r - v') * P(any worker accepts at v')``.
  Workers accept far more often (paper: acceptance ratio ~0.66-0.75 vs
  DemCOM's ~0.16) at a modest ~10-point increase in payment rate.

Per Theorem 2 the competitive ratio of RamCOM reaches ``1/(8e)``.
"""

from __future__ import annotations

import math

from repro.core.base import (
    Decision,
    OnlineAlgorithm,
    PlatformContext,
    run_offer_loop,
)
from repro.core.entities import Request

__all__ = ["RamCOM"]


class RamCOM(OnlineAlgorithm):
    """Algorithm 3 of the paper.

    Parameters
    ----------
    fixed_k:
        Pin the threshold exponent instead of drawing it (used by the
        paper's Example 3 and by the ablation benches).  ``None`` draws
        ``k ~ Uniform{1..theta}`` at :meth:`reset`.
    """

    name = "RamCOM"
    #: Micro-batching hint: the cooperative path's expensive step is a
    #: deterministic MER quote (docs/SERVICE.md#micro-batched-dispatch).
    speculates = "quote"

    def __init__(self, fixed_k: int | None = None):
        self.fixed_k = fixed_k
        self._threshold = 0.0
        self._k = 0

    @property
    def threshold(self) -> float:
        """The current value threshold ``e^k``."""
        return self._threshold

    @staticmethod
    def theta_for(value_upper_bound: float) -> int:
        """``theta = ceil(ln(max_v + 1))`` (Algorithm 3, line 1)."""
        return max(1, int(math.ceil(math.log(value_upper_bound + 1.0))))

    def reset(self, context: PlatformContext) -> None:
        """Draw the run's threshold exponent (Algorithm 3, line 2)."""
        theta = self.theta_for(context.value_upper_bound)
        if self.fixed_k is not None:
            if not 1 <= self.fixed_k <= theta:
                raise ValueError(
                    f"fixed_k={self.fixed_k} outside {{1..{theta}}} for "
                    f"value bound {context.value_upper_bound}"
                )
            self._k = self.fixed_k
        else:
            self._k = context.rng.randint(1, theta)
        self._threshold = math.exp(self._k)

    def decide(self, request: Request, context: PlatformContext) -> Decision:
        if self._threshold == 0.0:
            # Defensive: a simulator always calls reset(); direct users may not.
            self.reset(context)

        # Lines 4-7: big-value requests go to a random eligible inner worker.
        if request.value > self._threshold:
            if context.probe.enabled:
                context.probe.count(
                    "ramcom_routes_total",
                    platform=context.platform_id,
                    route="inner_reserved",
                )
            inner = context.inner_candidates(request)
            if inner:
                worker = context.rng.choice(inner)
                return Decision.serve_inner(worker)
        elif context.probe.enabled:
            context.probe.count(
                "ramcom_routes_total",
                platform=context.platform_id,
                route="cooperative",
            )
            # No inner available: fall through to the cooperative path, as in
            # the paper's Example 3 (r_3 exceeds the threshold but is served
            # by an outer worker because every inner worker is busy).

        # Lines 9-11: price via Definition 4.1, then run Algorithm 1's
        # offer loop (lines 13-26) at that payment.  A degraded exchange
        # shrinks (possibly empties) the candidate set; the reject path
        # keeps Def. 2.6 intact.
        outer = context.outer_candidates(request)
        if not outer:
            return Decision.reject()
        candidate_ids = [worker.worker_id for worker in outer]
        if context.probe.enabled:
            with context.probe.span(
                "pricer.quote",
                category="payment",
                tid=context.platform_id,
                request=request.request_id,
                candidates=len(candidate_ids),
            ) as span:
                quote = context.pricer.quote(request.value, candidate_ids)
                span.annotate(payment=quote.payment)
        else:
            quote = context.pricer.quote(request.value, candidate_ids)
        payment = quote.payment
        if payment > request.value or payment <= 0.0:
            return Decision.reject()

        return run_offer_loop(request, outer, payment, context)
