"""Vectorized (numpy) backend for the Algorithm-2 / Eq.-4 hot path.

This module is the *array backend* behind the payment machinery's
``backend`` seam (docs/PERFORMANCE.md#the-array-backend).  The scalar
pure-Python implementations in :mod:`repro.core.payment` and
:mod:`repro.core.pricing` remain the bit-identity reference; the kernel
here trades bit-identity for throughput by evaluating all candidates ×
all dyadic trial prices as a handful of numpy array operations and by
running the ``n_s`` Monte-Carlo instances of Algorithm 2 — for a whole
*batch* of requests at once — as one array program.

numpy is an **optional dependency**: the import below is guarded, every
entry point degrades explicitly (``numpy_available()`` /
``resolve_backend("auto")`` fall back to the pure-Python backend), and
nothing else in the package imports numpy directly.

Determinism contract
--------------------
The kernel draws uniforms from a dedicated ``numpy.random`` PCG64 stream
seeded per *request* through the same SHA-256 derivation scheme as
:func:`repro.utils.rng.derive_seed` — one pinned ``(n_s, depth + 1)``
block of uniforms per request (:func:`uniform_block`, a state-reset fast
path producing the exact stream of :func:`kernel_generator`).  Because
the seed depends only on the request key (and never on how many requests
share a kernel invocation), a batched estimate is bit-identical to the
same estimate computed alone — the property the gateway's micro-batched
dispatch relies on (docs/SERVICE.md).  This module is the *sanctioned
seam* for ``numpy.random``: comlint rule ``DET005`` flags any other use.

Equivalence contract (vs the scalar reference)
----------------------------------------------
* Eq.-4 probability vectors (:func:`acceptance_probabilities`) perform
  the same ``offer = payment / value`` normalisation, the same
  ``count(history <= offer)`` comparison and the same ``count / size``
  division as ``AcceptanceEstimator.probability`` — element-for-element
  identical floats.
* The Monte-Carlo estimator samples the same distribution by a
  different, coupled scheme: instead of one uniform per candidate until
  someone accepts, each round draws **one** uniform against the
  any-acceptance probability ``q = 1 - prod_c (1 - p_c)`` — an exact
  reformulation of the round's acceptance law, so estimates agree with
  the scalar backend in distribution (Lemma 1's ``(xi, eta)`` guarantee
  is unchanged) but not draw-for-draw.  Equivalence is pinned by the
  property tests in ``tests/test_payment_kernel.py`` (same-uniforms
  comparisons at ~1e-9 relative tolerance; end-to-end golden-metric
  comparisons at statistical tolerance).
* Trial prices sit on the exact dyadic grid ``j * v / 2**depth``.  In
  relative mode the grid *offers* ``j / 2**depth`` and the quantisation
  ``ceil(rate * 2**depth)`` are exact in binary floating point, so grid
  counts match ``bisect_right`` bit for bit; in absolute mode the
  quantisation rounds once more and counts may differ from the scalar
  path by one CDF step when a history value collides with a grid point
  (covered by the documented tolerance).
"""

from __future__ import annotations

import os
import threading
from collections.abc import Hashable, Sequence
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.utils.rng import derive_seed

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.acceptance import AcceptanceSnapshot

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "MAX_GRID_DEPTH",
    "CandidateMatrix",
    "acceptance_probabilities",
    "bisection_depth",
    "build_matrix",
    "estimate_batch",
    "kernel_generator",
    "numpy_available",
    "request_seed",
    "resolve_backend",
    "uniform_block",
]

#: Recognised values for the ``backend`` knobs / ``REPRO_PAYMENT_BACKEND``.
BACKENDS = ("auto", "numpy", "python")

#: Environment override for every ``backend="..."`` knob (CI matrix legs
#: and deployments flip the backend without touching code).
ENV_BACKEND = "REPRO_PAYMENT_BACKEND"

#: Largest bisection depth the grid kernel materialises (2**depth + 1
#: trial prices per request).  The default knobs (xi=0.1) need depth 4;
#: pathological accuracy settings beyond the cap fall back to the scalar
#: fast path rather than allocating a huge probability grid.
MAX_GRID_DEPTH = 12

_MASK_64 = (1 << 64) - 1


def numpy_available() -> bool:
    """True iff the optional numpy dependency imported successfully."""
    return _np is not None


def resolve_backend(requested: str | None = None) -> str:
    """Resolve a backend request to a concrete ``"numpy"`` or ``"python"``.

    Resolution order: the ``REPRO_PAYMENT_BACKEND`` environment variable
    (when set) overrides ``requested``; ``"auto"`` selects numpy when it
    is importable and degrades to the pure-Python backend otherwise; an
    explicit ``"numpy"`` without numpy installed is a configuration
    error (never a silent fallback).
    """
    choice = os.environ.get(ENV_BACKEND) or requested or "python"
    if choice not in BACKENDS:
        raise ConfigurationError(
            f"payment backend must be one of {BACKENDS}, got {choice!r}"
        )
    if choice == "auto":
        return "numpy" if numpy_available() else "python"
    if choice == "numpy" and not numpy_available():
        raise ConfigurationError(
            "payment backend 'numpy' requested but numpy is not installed "
            "(use 'auto' to fall back to the pure-Python backend)"
        )
    return choice


def request_seed(kernel_seed: int, key: Hashable) -> int:
    """The pinned per-request generator seed for ``key``.

    Stable in ``(kernel_seed, key)`` alone — independent of call order
    and of batch composition, which is what makes batched estimates
    bit-identical to one-at-a-time estimates.
    """
    return derive_seed(kernel_seed, f"payment/{key!r}")


def kernel_generator(seed: int) -> Any:
    """The sanctioned ``numpy.random`` construction point (DET005).

    Every uniform the array backend consumes flows through a generator
    built here (or its state-reset fast path :func:`uniform_block`),
    seeded via :func:`repro.utils.rng.derive_seed`'s scheme.
    """
    if _np is None:  # pragma: no cover - callers check numpy_available()
        raise ConfigurationError("numpy is not installed")
    bit_generator = _np.random.PCG64(0)
    bit_generator.state = _seeded_state(bit_generator.state, seed)
    return _np.random.Generator(bit_generator)


_LOCAL = threading.local()


def _seeded_state(template: dict, seed: int) -> dict:
    """A PCG64 state dict whose 128-bit LCG state is the 64-bit ``seed``.

    The increment is PCG64(0)'s (a fixed, version-stable constant via
    ``SeedSequence(0)``), so the draws are a pure function of ``seed`` —
    independent of call order, thread, and batch composition.
    """
    state = dict(template)
    state["state"] = {
        "state": seed & _MASK_64,
        "inc": template["state"]["inc"],
    }
    state["has_uint32"] = 0
    state["uinteger"] = 0
    return state


def uniform_block(seed: int, shape: tuple[int, ...], out: Any = None) -> Any:
    """The pinned uniform block for one request seed (DET005 seam).

    Equivalent to ``kernel_generator(seed).random(shape)`` but reuses a
    thread-local bit generator, resetting its state per call instead of
    paying ``SeedSequence`` construction (~10us) per request.  ``out``
    optionally receives the draws in place (must be C-contiguous
    float64 of the right shape).
    """
    if _np is None:  # pragma: no cover - callers check numpy_available()
        raise ConfigurationError("numpy is not installed")
    cached = getattr(_LOCAL, "generator", None)
    if cached is None:
        bit_generator = _np.random.PCG64(0)
        cached = (
            bit_generator,
            _np.random.Generator(bit_generator),
            bit_generator.state,
        )
        _LOCAL.generator = cached
    bit_generator, generator, template = cached
    bit_generator.state = _seeded_state(template, seed)
    if out is not None:
        return generator.random(out=out)
    return generator.random(shape)


def bisection_depth(request_value: float, tolerance: float) -> int:
    """Number of bisection iterations Algorithm 2 runs for this request.

    The interval ``[low, high]`` starts at width ``v_r`` and halves once
    per iteration (both branches move one endpoint to the midpoint), so
    the loop runs until ``v_r / 2**depth <= tolerance`` regardless of
    which way each round goes.
    """
    depth = 0
    span = float(request_value)
    while span > tolerance:
        span /= 2.0
        depth += 1
    return depth


class CandidateMatrix:
    """Dense struct-of-arrays form of one candidate set's histories.

    Built from an :class:`~repro.core.acceptance.AcceptanceSnapshot` (its
    ``matrix()`` method); all per-candidate state the kernel touches is
    laid out as flat arrays so probability evaluation never iterates
    candidates in Python:

    ``entries``
        All warm candidates' sorted history values, concatenated in
        candidate order (float64, length E).
    ``segments``
        Candidate index of each entry (int64, length E) — the bincount
        key for segmented counting.
    ``sizes``
        History length per candidate (float64; 0 for cold candidates).
    ``denominators``
        ``sizes`` with cold candidates' zeros replaced by 1 — the safe
        division denominator (Eq. 4 divides by N).
    ``support_low`` / ``support_high``
        Min/max history value per candidate (``+inf`` / ``-inf`` for
        cold candidates) — the CDF's support bounds.
    ``cold``
        Boolean mask of candidates with no history (Eq. 4 falls back to
        ``default_probability`` for them at any positive payment).
    ``grid_cache``
        Memoised any-acceptance grid curves: ``depth -> q`` in relative
        mode (the dyadic offer grid is value-independent), ``(depth,
        value) -> q`` in absolute mode.  The curves are pure functions of
        the (immutable) matrix, so entries never go stale; the estimator
        drops the whole matrix on history mutation.
    """

    __slots__ = (
        "mode",
        "default_probability",
        "count",
        "entries",
        "segments",
        "sizes",
        "denominators",
        "support_low",
        "support_high",
        "cold",
        "grid_cache",
    )

    def __init__(
        self,
        mode: str,
        default_probability: float,
        count: int,
        entries: Any,
        segments: Any,
        sizes: Any,
        denominators: Any,
        support_low: Any,
        support_high: Any,
        cold: Any,
    ):
        self.mode = mode
        self.default_probability = default_probability
        self.count = count
        self.entries = entries
        self.segments = segments
        self.sizes = sizes
        self.denominators = denominators
        self.support_low = support_low
        self.support_high = support_high
        self.cold = cold
        self.grid_cache: dict[Any, Any] = {}

    def __len__(self) -> int:
        return self.count


def build_matrix(
    snapshot: "AcceptanceSnapshot",
    array_cache: dict[Hashable, Any] | None = None,
    worker_ids: Sequence[Hashable] | None = None,
) -> CandidateMatrix:
    """Materialise a snapshot's rows as a :class:`CandidateMatrix`.

    ``array_cache`` (normally the owning estimator's per-worker cache,
    invalidated on every history mutation) avoids re-converting each
    sorted history list to an ndarray on every estimate.
    """
    if _np is None:
        raise ConfigurationError(
            "the array backend requires numpy (not installed)"
        )
    rows = snapshot.rows
    count = len(rows)
    lengths = _np.zeros(count, dtype=_np.int64)
    support_low = _np.full(count, _np.inf)
    support_high = _np.full(count, -_np.inf)
    cold = _np.zeros(count, dtype=bool)
    arrays = []
    for index, (history, size) in enumerate(rows):
        if history is None:
            cold[index] = True
            continue
        array = None
        worker_id = worker_ids[index] if worker_ids is not None else None
        if array_cache is not None and worker_id is not None:
            array = array_cache.get(worker_id)
            # Length-mismatch means a stale entry slipped past the
            # estimator's invalidation (e.g. direct list mutation);
            # rebuild rather than silently miscount.
            if array is not None and len(array) != size:
                array = None
        if array is None:
            array = _np.asarray(history, dtype=_np.float64)
            if array_cache is not None and worker_id is not None:
                array_cache[worker_id] = array
        arrays.append(array)
        lengths[index] = size
        support_low[index] = array[0]
        support_high[index] = array[-1]
    if arrays:
        entries = _np.concatenate(arrays)
    else:
        entries = _np.empty(0, dtype=_np.float64)
    segments = _np.repeat(_np.arange(count, dtype=_np.int64), lengths)
    sizes = lengths.astype(_np.float64)
    denominators = _np.where(cold, 1.0, sizes)
    return CandidateMatrix(
        mode=snapshot.mode,
        default_probability=snapshot.default_probability,
        count=count,
        entries=entries,
        segments=segments,
        sizes=sizes,
        denominators=denominators,
        support_low=support_low,
        support_high=support_high,
        cold=cold,
    )


def _segment_counts(
    segments: Any, first_column: Any, n_segments: int, n_offers: int
) -> Any:
    """``counts[c, j]`` = number of entries of segment ``c`` whose first
    counting column is ``<= j`` — one bincount plus a cumulative sum.

    ``first_column[e]`` is the index of the first (ascending) offer the
    entry counts toward, with ``n_offers`` meaning "beyond every offer".
    """
    flat = segments * (n_offers + 1) + first_column
    histogram = _np.bincount(
        flat, minlength=n_segments * (n_offers + 1)
    ).reshape(n_segments, n_offers + 1)
    return _np.cumsum(histogram[:, :n_offers], axis=1)


def acceptance_probabilities(
    matrix: CandidateMatrix, payments: Any, request_value: float
) -> Any:
    """Eq.-4 probability of every candidate at every payment — a
    ``(candidates, payments)`` float64 array.

    Element-for-element identical to calling
    ``AcceptanceEstimator.probability(payment, worker, request_value)``:
    the offer normalisation, the ``history <= offer`` comparison (one
    ``searchsorted`` over the flat entry array instead of a
    ``bisect_right`` per candidate) and the ``count / size`` division
    reproduce the same IEEE-754 operations.
    """
    if _np is None:
        raise ConfigurationError(
            "the array backend requires numpy (not installed)"
        )
    payments = _np.asarray(payments, dtype=_np.float64)
    if matrix.mode == "relative":
        if request_value <= 0:
            raise ConfigurationError(
                f"request_value must be positive, got {request_value}"
            )
        offers = payments / request_value
    else:
        offers = payments
    order = _np.argsort(offers, kind="stable")
    sorted_offers = offers[order]
    n_offers = sorted_offers.size
    # First sorted offer each entry counts toward: entry e counts at
    # offer o iff e <= o, i.e. at every sorted index >= searchsorted-left.
    first_column = _np.searchsorted(sorted_offers, matrix.entries, side="left")
    counts = _segment_counts(
        matrix.segments, first_column, matrix.count, n_offers
    )
    probabilities = counts / matrix.denominators[:, None]
    if matrix.cold.any():
        cold_row = _np.where(payments > 0, matrix.default_probability, 0.0)
        probabilities[matrix.cold] = cold_row[order]
    unsorted = _np.empty_like(probabilities)
    unsorted[:, order] = probabilities
    return unsorted


def _relative_grid_curves(
    matrices: Sequence[CandidateMatrix], depth: int
) -> Any:
    """Any-acceptance probability ``q`` on the dyadic offer grid for a
    group of relative-mode requests — a ``(requests, 2**depth + 1)``
    array.  Curves are memoised per matrix (``grid_cache``): only
    matrices without a cached curve at this depth pay a segmented
    counting pass, shared across all of them.

    Relative-mode grid offers are ``j / 2**depth`` and both the scaling
    ``rate * 2**depth`` and the integer comparison are exact in float64,
    so the counts equal ``bisect_right(history, j / 2**depth)`` bit for
    bit.
    """
    fresh: list[CandidateMatrix] = []
    seen: set[int] = set()
    for matrix in matrices:
        if depth not in matrix.grid_cache and id(matrix) not in seen:
            seen.add(id(matrix))
            fresh.append(matrix)
    if fresh:
        scale = float(1 << depth)
        n_offers = (1 << depth) + 1
        total_candidates = 0
        entry_arrays = []
        segment_arrays = []
        for matrix in fresh:
            entry_arrays.append(matrix.entries)
            segment_arrays.append(matrix.segments + total_candidates)
            total_candidates += matrix.count
        entries = (
            _np.concatenate(entry_arrays) if entry_arrays else _np.empty(0)
        )
        segments = (
            _np.concatenate(segment_arrays)
            if segment_arrays
            else _np.empty(0, dtype=_np.int64)
        )
        # ceil(rate * 2**depth) is the first grid index j with
        # rate <= j / 2**depth.
        first_column = _np.ceil(entries * scale).astype(_np.int64)
        _np.clip(first_column, 0, n_offers, out=first_column)
        counts = _segment_counts(
            segments, first_column, total_candidates, n_offers
        )
        denominators = _np.concatenate([m.denominators for m in fresh])
        cold = _np.concatenate([m.cold for m in fresh])
        probabilities = counts / denominators[:, None]
        if cold.any():
            default = fresh[0].default_probability
            probabilities[cold, 1:] = default
            probabilities[cold, 0] = 0.0
        counts_per_request = _np.asarray(
            [m.count for m in fresh], dtype=_np.int64
        )
        starts = _np.zeros(len(fresh), dtype=_np.int64)
        _np.cumsum(counts_per_request[:-1], out=starts[1:])
        # Sequential product in candidate order per request (reduceat).
        none_accepts = _np.multiply.reduceat(
            1.0 - probabilities, starts, axis=0
        )
        curves = 1.0 - none_accepts
        for position, matrix in enumerate(fresh):
            matrix.grid_cache[depth] = curves[position]
    if len(matrices) == 1:
        return matrices[0].grid_cache[depth][None, :]
    return _np.stack([matrix.grid_cache[depth] for matrix in matrices])


def _absolute_grid_curve(
    matrix: CandidateMatrix, request_value: float, depth: int
) -> Any:
    """Any-acceptance ``q`` on the dyadic price grid for one
    absolute-mode request (exact searchsorted counts per request),
    memoised per ``(depth, value)``."""
    cache_key = (depth, float(request_value))
    cached = matrix.grid_cache.get(cache_key)
    if cached is not None:
        return cached
    step = float(request_value) * (0.5**depth)
    prices = _np.arange((1 << depth) + 1, dtype=_np.float64) * step
    probabilities = acceptance_probabilities(matrix, prices, request_value)
    none_accepts = _np.multiply.reduce(1.0 - probabilities, axis=0)
    curve = 1.0 - none_accepts
    if len(matrix.grid_cache) >= 64:
        # Absolute-mode keys include the request value; bound the cache
        # under unbounded distinct-value churn.
        matrix.grid_cache.clear()
    matrix.grid_cache[cache_key] = curve
    return curve


def estimate_batch(
    matrices: Sequence[CandidateMatrix],
    values: Sequence[float],
    seeds: Sequence[int],
    samples: int,
    xi: float,
    epsilon: float,
    uniforms: Sequence[Any] | None = None,
) -> list[tuple[float, int, int] | None]:
    """Run Algorithm 2 for a batch of requests as one array program.

    Returns one ``(payment, rejected_instances, bisection_iterations)``
    triple per request, or ``None`` for a request whose bisection depth
    exceeds :data:`MAX_GRID_DEPTH` (the caller falls back to the scalar
    path).  ``uniforms`` injects the per-request ``(samples, depth + 1)``
    uniform blocks (test seam); by default they are drawn from
    :func:`kernel_generator` seeded per request.

    Per instance: column 0 of the uniform block decides the full-value
    probe (reject contributes ``v_r + epsilon``); columns ``1..depth``
    drive the bisection over integer dyadic bounds, and the estimate for
    an accepted instance is the final midpoint
    ``(low + high) * v_r / 2**(depth + 1)``.
    """
    if _np is None:
        raise ConfigurationError(
            "the array backend requires numpy (not installed)"
        )
    results: list[tuple[float, int, int] | None] = [None] * len(matrices)
    # Group requests by bisection depth so each group shares one grid.
    groups: dict[int, list[int]] = {}
    for index, value in enumerate(values):
        tolerance = max(epsilon, xi * float(value))
        depth = bisection_depth(value, tolerance)
        if depth <= MAX_GRID_DEPTH:
            groups.setdefault(depth, []).append(index)
    for depth, members in groups.items():
        group_matrices = [matrices[i] for i in members]
        group_values = _np.asarray(
            [float(values[i]) for i in members], dtype=_np.float64
        )
        if group_matrices[0].mode == "relative":
            q = _relative_grid_curves(group_matrices, depth)
        else:
            q = _np.stack(
                [
                    _absolute_grid_curve(matrix, value, depth)
                    for matrix, value in zip(group_matrices, group_values)
                ]
            )
        if uniforms is not None:
            block = _np.stack([uniforms[i] for i in members])
        else:
            block = _np.empty((len(members), samples, depth + 1))
            for position, index in enumerate(members):
                uniform_block(
                    seeds[index], (samples, depth + 1), out=block[position]
                )
        top = 1 << depth
        q_full = q[:, top]
        accepted = (q_full > 0.0)[:, None] & (block[:, :, 0] <= q_full[:, None])
        low = _np.zeros((len(members), samples), dtype=_np.int64)
        high = _np.full_like(low, top)
        row_index = _np.arange(len(members))[:, None]
        for step in range(depth):
            mid = (low + high) >> 1
            q_mid = q[row_index, mid]
            take = accepted & (q_mid > 0.0) & (block[:, :, step + 1] <= q_mid)
            lower = accepted & ~take
            high = _np.where(take, mid, high)
            low = _np.where(lower, mid, low)
        unit = group_values * (0.5 ** (depth + 1))
        payments = (low + high) * unit[:, None]
        per_instance = _np.where(
            accepted, payments, (group_values + epsilon)[:, None]
        )
        totals = per_instance.sum(axis=1)
        accepted_counts = accepted.sum(axis=1)
        for position, index in enumerate(members):
            results[index] = (
                float(totals[position]) / samples,
                samples - int(accepted_counts[position]),
                int(accepted_counts[position]) * depth,
            )
    return results
