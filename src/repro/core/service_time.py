"""Service-time models — how long an assignment occupies a worker.

The baseline model (the tables' default) occupies every worker for a
constant ``service_duration``.  Realistically a taxi engagement is
*pickup travel* (worker → request location at street speed) plus the
*trip itself* (correlated with the fare: longer rides cost more).  The
models here let the simulator's reentry scheduling use that structure:

* :class:`ConstantServiceTime` — the paper-faithful default;
* :class:`TravelAwareServiceTime` — pickup at ``speed_kmh`` + a fare-
  proportional trip duration with multiplicative jitter.

Durations are deterministic per (worker, request) via the usual labelled
RNG derivation, so reentry timing — like everything else — is a pure
function of the experiment seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.entities import Request, Worker
from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = ["ServiceTimeModel", "ConstantServiceTime", "TravelAwareServiceTime"]


class ServiceTimeModel(ABC):
    """Maps one assignment to the seconds it occupies the worker."""

    @abstractmethod
    def duration(self, worker: Worker, request: Request, seed: int) -> float:
        """Occupation time in seconds (must be positive)."""


class ConstantServiceTime(ServiceTimeModel):
    """Every assignment takes the same time (the tables' default)."""

    def __init__(self, seconds: float = 1800.0):
        if seconds <= 0:
            raise ConfigurationError(f"duration must be positive, got {seconds}")
        self.seconds = seconds

    def duration(self, worker: Worker, request: Request, seed: int) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"ConstantServiceTime({self.seconds:g}s)"


class TravelAwareServiceTime(ServiceTimeModel):
    """Pickup travel + fare-proportional trip duration.

    Parameters
    ----------
    speed_kmh:
        Street speed for the pickup leg (km/h).
    seconds_per_value:
        Trip seconds per unit of fare — the fare proxies trip length
        (e.g. ~60 s/CNY makes a 20-CNY ride a ~20-minute engagement).
    jitter:
        Multiplicative lognormal-ish noise on the trip leg (fraction);
        0 disables it.
    minimum_seconds:
        Floor on the total engagement (boarding, payment, ...).
    """

    def __init__(
        self,
        speed_kmh: float = 25.0,
        seconds_per_value: float = 60.0,
        jitter: float = 0.15,
        minimum_seconds: float = 180.0,
    ):
        if speed_kmh <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed_kmh}")
        if seconds_per_value < 0 or jitter < 0 or minimum_seconds <= 0:
            raise ConfigurationError("invalid service-time parameters")
        self.speed_kmh = speed_kmh
        self.seconds_per_value = seconds_per_value
        self.jitter = jitter
        self.minimum_seconds = minimum_seconds

    def duration(self, worker: Worker, request: Request, seed: int) -> float:
        pickup_km = worker.location.distance_to(request.location)
        pickup_seconds = pickup_km / self.speed_kmh * 3600.0
        trip_seconds = request.value * self.seconds_per_value
        if self.jitter > 0:
            rng = derive_rng(
                seed, f"service/{worker.worker_id}/{request.request_id}"
            )
            trip_seconds *= max(0.25, rng.gauss(1.0, self.jitter))
        return max(self.minimum_seconds, pickup_seconds + trip_seconds)

    def __repr__(self) -> str:
        return (
            f"TravelAwareServiceTime(speed={self.speed_kmh:g}km/h, "
            f"{self.seconds_per_value:g}s/value)"
        )
