"""Problem entities: requests and crowd workers.

Definitions 2.1-2.3 of the paper.  A request is ``<t, l_r, v_r>``; a worker
is ``<t, l_w, rad_w>`` plus, in this implementation, the identity of the
home platform — "inner" vs "outer" (Definitions 2.2/2.3) is *relative* to
the platform handling a request, so it is not a property of the worker but
of the (worker, platform) pair, exposed via :meth:`Worker.is_inner_for`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geo.point import Point

__all__ = ["Request", "Worker"]


@dataclass(frozen=True, slots=True)
class Request:
    """A user request (Definition 2.1): ``r = <t, l_r, v_r>``.

    Attributes
    ----------
    request_id:
        Globally unique id (unique across platforms).
    platform_id:
        The platform the user submitted the request to (its *target*
        platform).
    arrival_time:
        Arrival timestamp ``t`` (seconds from epoch of the scenario).
    location:
        ``l_r`` — the pickup location in the planar city model (km).
    value:
        ``v_r`` — what the requester pays the platform on completion.
    """

    request_id: str
    platform_id: str
    arrival_time: float
    location: Point
    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ConfigurationError(
                f"request {self.request_id}: value must be positive, got {self.value}"
            )
        if self.arrival_time < 0:
            raise ConfigurationError(
                f"request {self.request_id}: arrival_time must be >= 0"
            )


@dataclass(frozen=True, slots=True)
class Worker:
    """A crowd worker (Definitions 2.2/2.3): ``w = <t, l_w, rad_w>``.

    Attributes
    ----------
    worker_id:
        Globally unique id (unique across platforms).
    platform_id:
        The worker's home platform.
    arrival_time:
        When the worker joined the waiting list.
    location:
        Current location (km).
    service_radius:
        ``rad_w`` — the worker serves requests within this radius (km).
    shareable:
        Whether the home platform exposes this worker to cooperative
        platforms through the exchange (Definition 2.3).  Experiments keep
        this True; the ablation benches flip it.
    departure_time:
        Optional end of the worker's shift: once reached, a still-waiting
        worker leaves every waiting list (extension; the paper's workers
        wait indefinitely).  ``None`` means no departure.
    """

    worker_id: str
    platform_id: str
    arrival_time: float
    location: Point
    service_radius: float
    shareable: bool = field(default=True)
    departure_time: float | None = field(default=None)

    def __post_init__(self) -> None:
        if self.service_radius <= 0:
            raise ConfigurationError(
                f"worker {self.worker_id}: service_radius must be positive, "
                f"got {self.service_radius}"
            )
        if self.arrival_time < 0:
            raise ConfigurationError(
                f"worker {self.worker_id}: arrival_time must be >= 0"
            )
        if self.departure_time is not None and self.departure_time < self.arrival_time:
            raise ConfigurationError(
                f"worker {self.worker_id}: departure_time precedes arrival"
            )

    def on_shift_at(self, time: float) -> bool:
        """True iff the worker is within their shift window at ``time``."""
        if time < self.arrival_time:
            return False
        return self.departure_time is None or time <= self.departure_time

    def is_inner_for(self, platform_id: str) -> bool:
        """True iff this worker is an *inner* worker of ``platform_id``."""
        return self.platform_id == platform_id

    def can_reach(self, request: Request) -> bool:
        """Range constraint: request location inside the service disk."""
        return self.location.within(request.location, self.service_radius)

    def arrived_before(self, request: Request) -> bool:
        """Time constraint: worker waiting when the request arrives."""
        return self.arrival_time <= request.arrival_time
