"""The arrival-driven online simulation engine.

The simulator replays an interleaved arrival stream (paper Table II) across
N cooperating platforms, delegating each request decision to the platform's
:class:`~repro.core.base.OnlineAlgorithm`, enforcing the COM constraints by
construction (workers are claimed atomically through the exchange), and
recording the exact metrics the paper's evaluation section reports:
per-platform revenue, completed / cooperative request counts, acceptance
ratio, outer-payment rate, per-request response time, and memory footprint.

Everything stochastic flows from ``SimulatorConfig.seed`` through labelled
child streams, so a run is a pure function of (scenario, config).

The engine is exposed at two granularities:

* :meth:`Simulator.run` — batch replay of a whole :class:`Scenario`;
* :class:`SimulationSession` — the same engine driven one arrival at a
  time (``submit_worker`` / ``submit_request`` / ``finalize``).  This is
  the seam the :mod:`repro.service` gateway uses to serve decisions from a
  long-running process; ``Simulator.run`` is a thin loop over a session,
  so a session fed the same events in the same order produces a
  byte-identical :class:`SimulationResult`.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass, field, replace

from repro.analysis.concurrency import ConcurrencyMonitor, concurrency_from_env
from repro.analysis.sanitizer import ConstraintSanitizer, sanitize_from_env
from repro.behavior.worker_model import BehaviorOracle, WorkerBehavior
from repro.core.acceptance import AcceptanceEstimator
from repro.core.base import Decision, DecisionKind, OnlineAlgorithm, PlatformContext
from repro.core.entities import Request, Worker
from repro.core.events import EventKind, EventStream
from repro.core.exchange import CooperationExchange
from repro.core.matching import AssignmentKind, MatchRecord, MatchingLedger
from repro.core import payment_kernel
from repro.core.payment import MinimumOuterPaymentEstimator
from repro.core.pricing import MaximumExpectedRevenuePricer
from repro.errors import (
    ClaimConflictError,
    ConfigurationError,
    ExchangeUnavailableError,
    SimulationError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import CircuitBreakerConfig, FaultPlan, RetryPolicy
from repro.faults.resilient import ResilienceStats, ResilientExchange
from repro.obs import NULL_PROBE, Telemetry, TelemetrySummary
from repro.utils.memory import approximate_size_bytes
from repro.utils.rng import SeedSequence
from repro.utils.timer import Stopwatch, TimingAccumulator

__all__ = [
    "Scenario",
    "SimulatorConfig",
    "SimulationResult",
    "Simulator",
    "SimulationSession",
    "DecisionLogEntry",
]


@dataclass
class Scenario:
    """One runnable problem instance.

    Produced by the workload generators; consumed by the simulator and the
    offline baseline.
    """

    events: EventStream
    oracle: BehaviorOracle
    platform_ids: list[str]
    value_upper_bound: float = 0.0
    name: str = "scenario"

    def __post_init__(self) -> None:
        if not self.platform_ids:
            raise ConfigurationError("a scenario needs at least one platform")
        if self.value_upper_bound <= 0.0:
            values = [request.value for request in self.events.requests]
            self.value_upper_bound = max(values) if values else 1.0

    @property
    def request_count(self) -> int:
        """Total requests across platforms."""
        return len(self.events.requests)

    @property
    def worker_count(self) -> int:
        """Total workers across platforms."""
        return len(self.events.workers)


@dataclass
class SimulatorConfig:
    """Tunables of one simulation run."""

    seed: int = 0
    #: Lemma-1 accuracy knobs for Algorithm 2.
    payment_xi: float = 0.1
    payment_eta: float = 0.5
    #: MER pricer grid resolution.
    pricer_grid_steps: int = 50
    #: Also evaluate history CDF breakpoints in the MER maximization.
    pricer_history_breakpoints: bool = True
    #: Eq.-4 estimate for workers with no history.
    default_acceptance: float = 0.5
    #: Run Algorithm 2 and the MER pricer on the snapshot fast path
    #: (docs/PERFORMANCE.md).  ``False`` selects the reference per-query
    #: implementations — bit-identical results, ~2-5x slower; kept for the
    #: fast-path equivalence tests and ``benchmarks/bench_hotpath.py``.
    payment_fast_path: bool = True
    #: Payment/acceptance backend: ``"python"`` (default — the scalar
    #: byte-stable paths), ``"numpy"`` (the vectorized array backend;
    #: requires the optional numpy dependency) or ``"auto"`` (numpy when
    #: importable, pure Python otherwise).  Overridden by the
    #: ``REPRO_PAYMENT_BACKEND`` environment variable.  The numpy backend
    #: matches the python backend at documented tolerance, not bit
    #: identity — see docs/PERFORMANCE.md#the-array-backend.
    payment_backend: str = "python"
    #: Grid-index cell edge (km).
    cell_size_km: float = 1.0
    #: When False, outer candidate queries return nothing (no-cooperation
    #: ablation; TOTA ignores outer candidates regardless).
    cooperation_enabled: bool = True
    #: Wall-clock the decide() call per request (the response-time metric).
    measure_response_time: bool = True
    #: Extension: a served worker re-enters their platform's waiting list
    #: after the service completes, at their home location.
    worker_reentry: bool = False
    #: Constant occupation per service (used when ``service_model`` is None).
    service_duration: float = 600.0
    #: Optional richer occupation model (e.g. TravelAwareServiceTime);
    #: overrides ``service_duration`` when set.
    service_model: object | None = None
    #: Record one DecisionLogEntry per request (debugging / analysis).
    decision_log: bool = False
    #: Extension (paper §II): replace Euclidean range checks with
    #: shortest-path distance over this road network.
    road_network: object | None = None
    #: Resilience extension: inject faults into the cooperation exchange.
    #: ``None`` (and any zero plan) leaves runs bit-identical to the
    #: unwrapped exchange; see docs/RESILIENCE.md.
    fault_plan: FaultPlan | None = None
    #: Sim-time retry/backoff policy for exchange claims (defaults apply
    #: when a fault plan is set and this is None).
    retry_policy: RetryPolicy | None = None
    #: Per-peer circuit breaker tunables (defaults when None).
    breaker: CircuitBreakerConfig | None = None
    #: Telemetry bundle (:class:`repro.obs.Telemetry`): a live metrics
    #: registry plus (optionally) a span tracer, surfaced after the run as
    #: ``SimulationResult.telemetry``.  ``None`` (the default) routes every
    #: probe point to the no-op probe — the measured-negligible disabled
    #: path.  Pass a *fresh* bundle per run unless pooling across runs is
    #: intended (the registry accumulates).
    telemetry: Telemetry | None = None
    #: Runtime constraint sanitizer (:mod:`repro.analysis`): validate every
    #: assignment decision against the four Definition-2.6 constraints,
    #: waiting-list consistency and ledger/revenue conservation, raising
    #: :class:`repro.errors.SanitizerViolation` on the first bad decision.
    #: The ``COM_REPRO_SANITIZE`` environment variable force-enables this
    #: regardless of the config value; the disabled path is a single
    #: ``is None`` check per decision.
    sanitize: bool = False
    #: Runtime concurrency sanitizer (:mod:`repro.analysis.concurrency`):
    #: an :class:`~repro.analysis.concurrency.OwnershipGuard` per
    #: gateway-owned structure (session, journal buffer, event ring)
    #: raising :class:`repro.errors.ConcurrencyViolation` on cross-task
    #: mutation, plus an event-loop stall detector.  Force-enabled by
    #: ``COM_REPRO_SANITIZE_CONCURRENCY``; the disabled path is a single
    #: ``is None`` check per guarded mutation.
    sanitize_concurrency: bool = False


@dataclass(frozen=True, slots=True)
class DecisionLogEntry:
    """One request's audited outcome (``SimulatorConfig.decision_log``)."""

    time: float
    platform_id: str
    request_id: str
    kind: str
    worker_id: str | None
    payment: float
    value: float


@dataclass
class PlatformOutcome:
    """Everything measured for one platform in one run."""

    ledger: MatchingLedger
    response_time: TimingAccumulator = field(default_factory=TimingAccumulator)
    cooperative_attempts: int = 0
    offers_made: int = 0
    #: Failure accounting (all zeros unless a fault plan was active).
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    @property
    def acceptance_ratio(self) -> float | None:
        """|AcpRt| — accepted cooperative requests / attempted ones."""
        if self.cooperative_attempts == 0:
            return None
        return self.ledger.cooperative_requests / self.cooperative_attempts

    @property
    def mean_payment_rate(self) -> float | None:
        """Mean ``v'_r / v_r`` over cooperative assignments."""
        rates = self.ledger.outer_payment_rates()
        if not rates:
            return None
        return sum(rates) / len(rates)


@dataclass
class SimulationResult:
    """Aggregate output of one run."""

    algorithm_name: str
    scenario_name: str
    seed: int
    platforms: dict[str, PlatformOutcome]
    memory_bytes: int = 0
    #: Populated when ``SimulatorConfig.decision_log`` is on.
    decisions: list[DecisionLogEntry] = field(default_factory=list)
    #: Populated when ``SimulatorConfig.telemetry`` was set: the run's
    #: metrics snapshot plus trace statistics.
    telemetry: TelemetrySummary | None = None

    @property
    def total_revenue(self) -> float:
        """Sum of Definition-2.5 revenue across platforms."""
        return sum(p.ledger.revenue for p in self.platforms.values())

    @property
    def total_completed(self) -> int:
        """Completed requests across platforms."""
        return sum(p.ledger.completed_requests for p in self.platforms.values())

    @property
    def total_cooperative(self) -> int:
        """|CoR| across platforms."""
        return sum(p.ledger.cooperative_requests for p in self.platforms.values())

    @property
    def total_rejected(self) -> int:
        """Rejected requests across platforms."""
        return sum(p.ledger.rejected_requests for p in self.platforms.values())

    @property
    def mean_response_time_ms(self) -> float:
        """Mean per-request decision latency across platforms."""
        total_seconds = sum(
            p.response_time.total_seconds for p in self.platforms.values()
        )
        count = sum(p.response_time.count for p in self.platforms.values())
        return (total_seconds / count) * 1e3 if count else 0.0

    def response_time_percentile_ms(self, q: float) -> float:
        """Pooled per-request latency percentile (reservoir estimate)."""
        samples: list[float] = []
        for platform in self.platforms.values():
            samples.extend(platform.response_time.samples())
        if not samples:
            return 0.0
        from repro.utils.stats import quantile

        return quantile(sorted(samples), q) * 1e3

    @property
    def resilience(self) -> ResilienceStats:
        """Pooled failure accounting across platforms (zeros without a
        fault plan)."""
        total = ResilienceStats()
        for platform in self.platforms.values():
            total = total.merge(platform.resilience)
        return total

    @property
    def total_retries(self) -> int:
        """Transiently failed claim attempts that were retried."""
        return self.resilience.retries

    @property
    def total_failed_claims(self) -> int:
        """Claims abandoned after exhausting retries."""
        return self.resilience.failed_claims

    @property
    def total_degraded_decisions(self) -> int:
        """Requests decided with a reduced or absent cooperative view."""
        return self.resilience.degraded_decisions

    @property
    def total_dropped_workers(self) -> int:
        """Workers lost to mid-assignment dropout."""
        return self.resilience.dropped_workers

    @property
    def total_outage_seconds(self) -> float:
        """Sim-seconds of platform-exchange link outage, summed."""
        return self.resilience.outage_seconds

    @property
    def overall_acceptance_ratio(self) -> float | None:
        """|AcpRt| pooled across platforms."""
        attempts = sum(p.cooperative_attempts for p in self.platforms.values())
        if attempts == 0:
            return None
        return self.total_cooperative / attempts

    @property
    def overall_payment_rate(self) -> float | None:
        """Mean ``v'_r / v_r`` pooled across platforms."""
        rates: list[float] = []
        for platform in self.platforms.values():
            rates.extend(platform.ledger.outer_payment_rates())
        if not rates:
            return None
        return sum(rates) / len(rates)

    def all_records(self) -> list[MatchRecord]:
        """Every assignment across platforms (for constraint validation)."""
        records: list[MatchRecord] = []
        for platform in self.platforms.values():
            records.extend(platform.ledger.records)
        return records


class SimulationSession:
    """One in-flight simulation, driven arrival by arrival.

    A session owns everything :meth:`Simulator.run` used to set up — the
    exchange, the incentive machinery, one algorithm instance per platform,
    the reentry/departure queues — and exposes the engine's per-event step
    as methods:

    * :meth:`submit_worker` / :meth:`submit_request` — deliver one arrival
      (in global time order; each advances simulation time first);
    * :meth:`finalize` — end of stream: flush batching algorithms, auto-
      reject still-deferred requests and return the
      :class:`SimulationResult`.

    Feeding a session the events of a scenario in stream order is exactly
    ``Simulator.run`` (which is implemented as that loop), so a service
    replaying a recorded trace through a session produces a byte-identical
    result.  The optional :attr:`on_resolution` hook observes decisions the
    caller did not receive synchronously (batch flushes and end-of-stream
    auto-rejects); :mod:`repro.service.gateway` uses it to answer outcome
    queries for deferred requests.
    """

    def __init__(
        self,
        config: SimulatorConfig,
        scenario: Scenario,
        algorithm_factory: Callable[[], OnlineAlgorithm],
    ):
        self.config = config
        self.scenario = scenario
        seeds = SeedSequence(config.seed)
        self._probe = (
            config.telemetry.probe if config.telemetry is not None else NULL_PROBE
        )
        self._sanitizer = (
            ConstraintSanitizer()
            if (config.sanitize or sanitize_from_env())
            else None
        )
        #: Concurrency monitor shared with the gateway (which guards its
        #: journal buffer / event ring through the same instance).  The
        #: session itself only carries it; ownership is claimed by the
        #: first task-context mutation, i.e. the gateway decision loop.
        self.concurrency_monitor = (
            ConcurrencyMonitor()
            if (config.sanitize_concurrency or concurrency_from_env())
            else None
        )
        exchange: CooperationExchange | ResilientExchange = CooperationExchange(
            scenario.platform_ids,
            cell_size_km=config.cell_size_km,
            road_network=config.road_network,
        )
        self._resilient: ResilientExchange | None = None
        if config.fault_plan is not None:
            self._resilient = ResilientExchange(
                exchange,
                FaultInjector(config.fault_plan),
                retry_policy=config.retry_policy,
                breaker_config=config.breaker,
                probe=self._probe,
            )
            exchange = self._resilient
        self.exchange = exchange
        # The estimator interprets histories in the same space (relative
        # rates vs absolute prices) as the scenario's ground truth.
        self.acceptance = AcceptanceEstimator(
            default_probability=config.default_acceptance,
            mode=scenario.oracle.mode,
        )
        backend = payment_kernel.resolve_backend(
            getattr(config, "payment_backend", "python")
        )
        self.payment_estimator = payment_estimator = MinimumOuterPaymentEstimator(
            self.acceptance,
            xi=config.payment_xi,
            eta=config.payment_eta,
            fast_path=config.payment_fast_path,
            backend=backend,
            kernel_seed=seeds.child("payment").derived_seed("kernel"),
        )
        self.pricer = pricer = MaximumExpectedRevenuePricer(
            self.acceptance,
            grid_steps=config.pricer_grid_steps,
            include_history_breakpoints=config.pricer_history_breakpoints,
            fast_path=config.payment_fast_path,
            backend=backend,
        )

        self.algorithms: dict[str, OnlineAlgorithm] = {}
        self.contexts: dict[str, PlatformContext] = {}
        self.outcomes: dict[str, PlatformOutcome] = {}
        for platform_id in scenario.platform_ids:
            algorithm = algorithm_factory()
            context = PlatformContext(
                platform_id=platform_id,
                exchange=exchange,
                acceptance=self.acceptance,
                payment_estimator=payment_estimator,
                pricer=pricer,
                oracle=scenario.oracle,
                rng=seeds.child("algorithm").rng(platform_id),
                value_upper_bound=scenario.value_upper_bound,
                cooperation_enabled=config.cooperation_enabled,
                probe=self._probe,
                sanitizer=self._sanitizer,
            )
            algorithm.reset(context)
            self.algorithms[platform_id] = algorithm
            self.contexts[platform_id] = context
            self.outcomes[platform_id] = PlatformOutcome(
                ledger=MatchingLedger(platform_id)
            )

        # Pre-load every worker's history into the Eq.-4 estimator.
        for event in scenario.events:
            if event.kind is EventKind.WORKER:
                assert event.worker is not None
                worker_id = event.worker.worker_id
                if worker_id in scenario.oracle:
                    self.acceptance.set_history(
                        worker_id, scenario.oracle.history_of(worker_id)
                    )

        # Reentry queue: (time, sequence, worker) — sequence breaks ties.
        self._reentry_heap: list[tuple[float, int, Worker]] = []
        self._reentry_sequence = 0
        # Departure queue (shift ends): (time, worker_id).
        self._departure_heap: list[tuple[float, str]] = []

        self.algorithm_name = next(iter(self.algorithms.values())).name
        self.decision_entries: list[DecisionLogEntry] = []
        #: request_id -> Request for every deferred, not-yet-resolved request.
        self.deferred: dict[str, Request] = {}
        #: Observes (request, decision) pairs resolved *asynchronously* —
        #: batch flushes and end-of-stream auto-rejects.  Immediate
        #: decisions are returned by :meth:`submit_request` instead.
        self.on_resolution: Callable[[Request, Decision], None] | None = None

        self._run_span = (
            self._probe.span(
                "simulation.run",
                tid="simulator",
                scenario=scenario.name,
                algorithm=self.algorithm_name,
                seed=config.seed,
            )
            if self._probe.enabled
            else None
        )
        self.last_event_time = 0.0
        self._finalized = False

    def _run_flush(self, platform_id: str, time: float) -> None:
        probe = self._probe
        resolved = self.algorithms[platform_id].flush(
            time, self.contexts[platform_id]
        )
        if resolved and probe.enabled:
            probe.instant("flush", tid=platform_id, resolved=len(resolved))
        for flushed_request, flushed_decision in resolved:
            if flushed_request.request_id not in self.deferred:
                raise SimulationError(
                    "flush returned non-deferred request",
                    time=time,
                    platform_id=platform_id,
                    request_id=flushed_request.request_id,
                )
            if flushed_decision.kind is DecisionKind.DEFER:
                raise SimulationError("flush may not re-defer a request")
            del self.deferred[flushed_request.request_id]
            outcome = self.outcomes[flushed_request.platform_id]
            if flushed_decision.cooperative_attempt:
                outcome.cooperative_attempts += 1
                outcome.offers_made += flushed_decision.offers_made
            if probe.enabled:
                probe.count(
                    "decisions_total",
                    platform=flushed_request.platform_id,
                    kind=flushed_decision.kind.value,
                )
            self._apply_decision(flushed_request, flushed_decision)
            if self.on_resolution is not None:
                self.on_resolution(flushed_request, flushed_decision)

    def advance_to(self, time: float) -> None:
        """Move simulation time forward to ``time``.

        Performs everything the engine does *between* arrivals: reinject
        workers whose service completed, give batching algorithms a flush
        opportunity, and evict workers whose shift ended.  Idempotent for
        a repeated ``time``; called automatically by the submit methods.
        """
        if self.concurrency_monitor is not None:
            self.concurrency_monitor.touch("session")
        self.last_event_time = max(self.last_event_time, time)
        self._probe.advance(time)
        if self._resilient is not None:
            self._resilient.advance_to(time)
        # Inject any workers whose service completed before this instant.
        while self._reentry_heap and self._reentry_heap[0][0] <= time:
            _, _, returning = heapq.heappop(self._reentry_heap)
            self.exchange.worker_arrives(returning)
            if self._sanitizer is not None:
                self._sanitizer.observe_worker(returning)
            if returning.departure_time is not None:
                heapq.heappush(
                    self._departure_heap,
                    (returning.departure_time, returning.worker_id),
                )
            self.algorithms[returning.platform_id].on_worker_arrival(
                returning, self.contexts[returning.platform_id]
            )

        # Give batching algorithms a chance to flush before this instant.
        for platform_id in self.scenario.platform_ids:
            self._run_flush(platform_id, time)

        # Shift ends: still-waiting workers leave every list.  This is
        # an administrative removal, not a cross-platform claim, so it
        # bypasses fault injection (``evict``).
        while self._departure_heap and self._departure_heap[0][0] < time:
            __, departing_id = heapq.heappop(self._departure_heap)
            if self.exchange.is_available(departing_id):
                self.exchange.evict(departing_id)

    def submit_worker(self, worker: Worker, time: float | None = None) -> None:
        """Deliver one worker arrival (at ``worker.arrival_time``)."""
        if self.concurrency_monitor is not None:
            self.concurrency_monitor.touch("session")
        self.advance_to(worker.arrival_time if time is None else time)
        probe = self._probe
        if worker.platform_id not in self.outcomes:
            raise SimulationError(
                "worker belongs to unknown platform",
                time=worker.arrival_time,
                platform_id=worker.platform_id,
                worker_id=worker.worker_id,
            )
        self.exchange.worker_arrives(worker)
        if self._sanitizer is not None:
            self._sanitizer.observe_worker(worker)
        if probe.enabled:
            probe.count("worker_arrivals_total", platform=worker.platform_id)
        if worker.departure_time is not None:
            heapq.heappush(
                self._departure_heap, (worker.departure_time, worker.worker_id)
            )
        self.algorithms[worker.platform_id].on_worker_arrival(
            worker, self.contexts[worker.platform_id]
        )

    def submit_request(
        self, request: Request, time: float | None = None
    ) -> Decision:
        """Deliver one request arrival; returns the algorithm's decision.

        A returned ``DEFER`` decision means the request is parked with a
        batching algorithm; its resolution arrives later through
        :attr:`on_resolution` (or as an auto-reject at :meth:`finalize`).
        """
        if self.concurrency_monitor is not None:
            self.concurrency_monitor.touch("session")
        self.advance_to(request.arrival_time if time is None else time)
        config = self.config
        probe = self._probe
        platform_id = request.platform_id
        if platform_id not in self.outcomes:
            raise SimulationError(
                "request targets unknown platform",
                time=request.arrival_time,
                platform_id=platform_id,
                request_id=request.request_id,
            )
        outcome = self.outcomes[platform_id]

        decision_span = (
            probe.span(
                "decision",
                tid=platform_id,
                request=request.request_id,
                value=request.value,
            )
            if probe.enabled
            else None
        )
        if config.measure_response_time:
            with Stopwatch() as watch:
                decision = self.algorithms[platform_id].decide(
                    request, self.contexts[platform_id]
                )
            if not watch.failed:
                outcome.response_time.record(watch.elapsed_seconds)
        else:
            decision = self.algorithms[platform_id].decide(
                request, self.contexts[platform_id]
            )
        if decision_span is not None:
            decision_span.annotate(kind=decision.kind.value)
            decision_span.end()
            probe.count(
                "decisions_total",
                platform=platform_id,
                kind=decision.kind.value,
            )
            if config.measure_response_time:
                probe.observe(
                    "decision_seconds",
                    watch.elapsed_seconds,
                    platform=platform_id,
                )

        if decision.kind is DecisionKind.DEFER:
            self.deferred[request.request_id] = request
            return decision

        if decision.cooperative_attempt:
            outcome.cooperative_attempts += 1
            outcome.offers_made += decision.offers_made

        self._apply_decision(request, decision)
        return decision

    def prepare_request_batch(self, requests: Sequence[Request]) -> int:
        """Speculatively precompute the cooperative-path incentive results
        for a contiguous run of requests about to be submitted.

        The gateway's micro-batched dispatch (docs/SERVICE.md) calls this
        on the decision loop just before processing a drained batch, so
        the expensive Algorithm-2 estimates (DemCOM) or MER quotes
        (RamCOM) for the whole batch run as **one** vectorized kernel
        invocation instead of one per request.  Returns the number of
        primed entries.

        Strictly side-effect-free on matching state: candidate sets are
        read through raw exchange queries (no probes, no resilience
        wrappers — speculation is skipped entirely under fault injection
        or telemetry so observable side channels stay identical), and
        primed results are keyed by ``(value, candidate ids)`` plus the
        candidates' per-worker history signatures and the array
        backend's pinned per-request seeds.  Any divergence by the time
        a request is actually decided — a worker claimed by an earlier
        request in the batch, a completion mutating a candidate's
        history, a re-entry changing the candidate set — misses the
        cache and recomputes, so batched decisions are bit-identical to
        one-at-a-time dispatch by construction.
        """
        if self._resilient is not None or self._probe.enabled:
            return 0
        if (
            self.payment_estimator.backend != "numpy"
            and self.pricer.backend != "numpy"
        ):
            return 0
        if self.concurrency_monitor is not None:
            self.concurrency_monitor.touch("session")
        estimates: list[tuple[float, tuple, Hashable]] = []
        quotes: list[tuple[float, tuple]] = []
        for request in requests:
            platform_id = request.platform_id
            algorithm = self.algorithms.get(platform_id)
            if algorithm is None:
                continue
            speculates = algorithm.speculates
            if speculates is None:
                continue
            context = self.contexts[platform_id]
            if not context.cooperation_enabled:
                continue
            if speculates == "estimate":
                # DemCOM: inner workers preempt the cooperative path.
                if self.exchange.has_inner_candidates(platform_id, request):
                    continue
            elif speculates == "quote":
                # RamCOM: big-value requests are reserved for inner
                # workers; they only reach the pricer when none exist.
                threshold = getattr(algorithm, "threshold", 0.0)
                if request.value > threshold and self.exchange.has_inner_candidates(
                    platform_id, request
                ):
                    continue
            try:
                outer = self.exchange.outer_candidates(platform_id, request)
            except ExchangeUnavailableError:  # pragma: no cover - defensive
                continue
            if not outer:
                continue
            ids = tuple(worker.worker_id for worker in outer)
            if speculates == "estimate":
                estimates.append((request.value, ids, request.request_id))
            else:
                quotes.append((request.value, ids))
        primed = 0
        if estimates:
            primed += self.payment_estimator.prime_batch(estimates)
        if quotes:
            primed += self.pricer.prime_quotes(quotes)
        return primed

    def breaker_trips(self) -> dict[str, int]:
        """Cumulative circuit-breaker trips per platform (empty sans faults).

        The serving layer diffs this after each decision to surface trips
        as operational events without threading a probe (which would make
        the session unpicklable for ``COMSNAP1`` snapshots).
        """
        if self._resilient is None:
            return {}
        return {
            platform_id: self._resilient.stats_for(platform_id).breaker_trips
            for platform_id in self.scenario.platform_ids
        }

    def finalize(self) -> SimulationResult:
        """End of stream: flush, auto-reject leftovers, return the result."""
        if self.concurrency_monitor is not None:
            self.concurrency_monitor.touch("session")
        if self._finalized:
            raise SimulationError("session already finalized")
        self._finalized = True
        config = self.config
        probe = self._probe
        scenario = self.scenario
        for platform_id in scenario.platform_ids:
            self._run_flush(platform_id, float("inf"))
        for leftover in list(self.deferred.values()):
            if self._sanitizer is not None:
                self._sanitizer.observe_rejection(leftover, self.last_event_time)
            self.outcomes[leftover.platform_id].ledger.record_rejection(leftover)
            if probe.enabled:
                probe.count(
                    "decisions_total",
                    platform=leftover.platform_id,
                    kind="auto_reject",
                )
            if self.on_resolution is not None:
                self.on_resolution(leftover, Decision.reject())
        self.deferred.clear()

        if self._sanitizer is not None:
            self._sanitizer.finalize(
                {pid: outcome.ledger for pid, outcome in self.outcomes.items()},
                self.last_event_time,
            )

        if self._resilient is not None:
            self._resilient.finalize(self.last_event_time)
            for platform_id in scenario.platform_ids:
                self.outcomes[platform_id].resilience = self._resilient.stats_for(
                    platform_id
                )

        memory_bytes = approximate_size_bytes(
            {
                "outcomes": {
                    pid: outcome.ledger.records
                    for pid, outcome in self.outcomes.items()
                },
                "waiting": {
                    pid: self.exchange.inner_list(pid).workers()
                    for pid in scenario.platform_ids
                },
                "entities": (scenario.events.workers, scenario.events.requests),
            }
        )

        telemetry_summary: TelemetrySummary | None = None
        if config.telemetry is not None:
            if probe.enabled:
                probe.gauge("memory_bytes", memory_bytes)
                for pid in scenario.platform_ids:
                    probe.gauge(
                        "waiting_workers",
                        len(self.exchange.inner_list(pid)),
                        platform=pid,
                    )
            if self._run_span is not None:
                self._run_span.annotate(
                    requests=scenario.request_count,
                    workers=scenario.worker_count,
                )
                self._run_span.end()
            telemetry_summary = config.telemetry.summary()

        return SimulationResult(
            algorithm_name=self.algorithm_name,
            scenario_name=scenario.name,
            seed=config.seed,
            platforms=self.outcomes,
            memory_bytes=memory_bytes,
            decisions=self.decision_entries,
            telemetry=telemetry_summary,
        )

    def _apply_decision(self, request: Request, decision: Decision) -> None:
        """Mutate world state according to a non-DEFER decision."""
        config = self.config
        exchange = self.exchange
        sanitizer = self._sanitizer
        scenario = self.scenario
        outcome = self.outcomes[request.platform_id]

        if config.decision_log:
            self.decision_entries.append(
                DecisionLogEntry(
                    time=request.arrival_time,
                    platform_id=request.platform_id,
                    request_id=request.request_id,
                    kind=decision.kind.value,
                    worker_id=(
                        decision.worker.worker_id if decision.worker else None
                    ),
                    payment=decision.payment,
                    value=request.value,
                )
            )

        if decision.kind is DecisionKind.REJECT:
            if sanitizer is not None:
                sanitizer.observe_rejection(request, request.arrival_time)
            outcome.ledger.record_rejection(request)
            return

        worker = decision.worker
        if worker is None:
            raise SimulationError(
                "serve decision without a worker",
                time=request.arrival_time,
                platform_id=request.platform_id,
                request_id=request.request_id,
            )
        outer_kind = decision.kind is DecisionKind.SERVE_OUTER
        if sanitizer is not None:
            # Validated *before* any world-state mutation: a violation
            # surfaces with the waiting lists and ledgers untouched.
            sanitizer.check_assignment(
                request,
                worker,
                outer=outer_kind,
                payment=decision.payment,
                exchange=exchange,
            )
        if not exchange.is_available(worker.worker_id):
            raise SimulationError(
                "algorithm picked unavailable worker",
                time=request.arrival_time,
                platform_id=request.platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )
        probe = self._probe
        claim_span = (
            probe.span(
                "exchange.claim",
                category="exchange",
                tid=request.platform_id,
                worker=worker.worker_id,
                outer=decision.kind is DecisionKind.SERVE_OUTER,
            )
            if probe.enabled
            else None
        )
        try:
            exchange.claim(worker.worker_id, claimant=request.platform_id)
        except (ClaimConflictError, ExchangeUnavailableError):
            # The assignment could not be committed (lost-claim race with
            # retries exhausted, worker dropout, or the exchange going
            # down mid-claim): the request is rejected, never re-matched
            # (the paper's invariable constraint), and the failure is
            # already accounted by the resilience wrapper.
            if claim_span is not None:
                claim_span.annotate(outcome="conflict")
                claim_span.end()
                probe.count(
                    "claims_total",
                    platform=request.platform_id,
                    outcome="conflict",
                )
            if sanitizer is not None:
                sanitizer.observe_rejection(request, request.arrival_time)
            outcome.ledger.record_rejection(request)
            return
        if claim_span is not None:
            claim_span.annotate(outcome="ok")
            claim_span.end()
            probe.count(
                "claims_total", platform=request.platform_id, outcome="ok"
            )

        kind = (
            AssignmentKind.INNER
            if decision.kind is DecisionKind.SERVE_INNER
            else AssignmentKind.OUTER
        )
        record = MatchRecord(
            request=request,
            worker=worker,
            kind=kind,
            payment=decision.payment if kind is AssignmentKind.OUTER else 0.0,
            decision_time=request.arrival_time,
            pickup_distance=worker.location.distance_to(request.location),
        )
        outcome.ledger.record(record)

        if kind is AssignmentKind.OUTER:
            # Credit the lender platform and grow the worker's visible
            # history (the online-learning loop behind Eq. 4).
            self.outcomes[worker.platform_id].ledger.record_lender_income(
                request.platform_id, decision.payment
            )
            self.acceptance.record_completion(
                worker.worker_id, decision.payment, request.value
            )

        if sanitizer is not None:
            sanitizer.commit_assignment(
                request, worker, outer=outer_kind, payment=decision.payment
            )
            sanitizer.check_lender_conservation(
                {pid: out.ledger for pid, out in self.outcomes.items()},
                request.arrival_time,
            )

        occupation = config.service_duration
        if config.service_model is not None:
            occupation = config.service_model.duration(
                worker, request, config.seed
            )
        past_shift = (
            worker.departure_time is not None
            and request.arrival_time + occupation > worker.departure_time
        )
        if config.worker_reentry and not past_shift:
            self._reentry_sequence += 1
            if probe.enabled:
                probe.count(
                    "worker_reentries_total", platform=worker.platform_id
                )
            return_time = request.arrival_time + occupation
            returned = self._reentered_worker(worker, request, return_time, scenario)
            self.acceptance.set_history(
                returned.worker_id, scenario.oracle.history_of(worker.worker_id)
            )
            heapq.heappush(
                self._reentry_heap,
                (return_time, self._reentry_sequence, returned),
            )

    @staticmethod
    def _reentered_worker(
        worker: Worker, request: Request, return_time: float, scenario: Scenario
    ) -> Worker:
        """Clone a worker for reentry at their home location.

        The clone gets a fresh id (the 1-by-1 constraint is per engagement)
        and inherits the original's behaviour in the oracle.  Re-entering at
        the worker's *original* location (the "return home" model) keeps the
        offline copy relaxation in :func:`repro.baselines.offline.
        solve_offline_reentry` a true upper bound; see DESIGN.md §2.
        """
        base_id, _, suffix = worker.worker_id.partition("@reentry")
        generation = int(suffix) + 1 if suffix else 1
        new_id = f"{base_id}@reentry{generation}"
        clone = replace(
            worker,
            worker_id=new_id,
            arrival_time=return_time,
        )
        if new_id not in scenario.oracle:
            original = scenario.oracle.behavior_of(worker.worker_id)
            scenario.oracle.register(
                WorkerBehavior(new_id, original.distribution, original.history)
            )
        return clone


class Simulator:
    """Runs one online algorithm per platform over a scenario."""

    def __init__(self, config: SimulatorConfig | None = None):
        self.config = config or SimulatorConfig()

    def session(
        self,
        scenario: Scenario,
        algorithm_factory: Callable[[], OnlineAlgorithm],
    ) -> SimulationSession:
        """Begin a stepwise run (see :class:`SimulationSession`)."""
        return SimulationSession(self.config, scenario, algorithm_factory)

    def run(
        self,
        scenario: Scenario,
        algorithm_factory: Callable[[], OnlineAlgorithm],
    ) -> SimulationResult:
        """Replay the scenario and return the measured outcome.

        ``algorithm_factory`` is called once per platform so platforms do
        not share mutable algorithm state (each platform is an independent
        decision maker in the paper's model).
        """
        session = self.session(scenario, algorithm_factory)
        for event in scenario.events:
            if event.kind is EventKind.WORKER:
                assert event.worker is not None
                session.submit_worker(event.worker, time=event.time)
            else:
                assert event.request is not None
                session.submit_request(event.request, time=event.time)
        return session.finalize()
