"""Arrival events and streams.

The COM problem is *online*: workers and requests arrive sequentially in one
interleaved order (the paper's Table II).  :class:`EventStream` holds such an
order; :func:`merge_streams` time-merges per-platform streams into the global
order the simulator consumes.

Tie-breaking: events at the same timestamp are ordered workers-first (a
worker arriving "at the same instant" as a request may serve it — matching
the paper's example where w_1 at t_1 serves r_1 at t_3 and keeping the time
constraint `arrival_time <= request.arrival_time` consistent), then by id
for determinism.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.entities import Request, Worker
from repro.errors import ConfigurationError

__all__ = ["EventKind", "ArrivalEvent", "EventStream", "merge_streams"]


class EventKind(enum.Enum):
    """What arrived."""

    WORKER = "worker"
    REQUEST = "request"


@dataclass(frozen=True, slots=True)
class ArrivalEvent:
    """One arrival: a worker or a request, at a timestamp."""

    time: float
    kind: EventKind
    worker: Worker | None = None
    request: Request | None = None

    def __post_init__(self) -> None:
        if self.kind is EventKind.WORKER and self.worker is None:
            raise ConfigurationError("WORKER event without a worker")
        if self.kind is EventKind.REQUEST and self.request is None:
            raise ConfigurationError("REQUEST event without a request")

    @classmethod
    def of_worker(cls, worker: Worker) -> "ArrivalEvent":
        """Wrap a worker arrival."""
        return cls(time=worker.arrival_time, kind=EventKind.WORKER, worker=worker)

    @classmethod
    def of_request(cls, request: Request) -> "ArrivalEvent":
        """Wrap a request arrival."""
        return cls(time=request.arrival_time, kind=EventKind.REQUEST, request=request)

    def sort_key(self) -> tuple[float, int, str]:
        """Stable global ordering: time, workers before requests, id."""
        if self.kind is EventKind.WORKER:
            assert self.worker is not None
            return (self.time, 0, self.worker.worker_id)
        assert self.request is not None
        return (self.time, 1, self.request.request_id)


class EventStream:
    """A time-ordered sequence of arrival events.

    Construction sorts defensively; iteration yields events in order.
    """

    def __init__(self, events: Iterable[ArrivalEvent] = ()):
        self._events: list[ArrivalEvent] = sorted(events, key=ArrivalEvent.sort_key)

    @classmethod
    def from_entities(
        cls, workers: Sequence[Worker], requests: Sequence[Request]
    ) -> "EventStream":
        """Build a stream from worker and request collections."""
        events = [ArrivalEvent.of_worker(worker) for worker in workers]
        events.extend(ArrivalEvent.of_request(request) for request in requests)
        return cls(events)

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> ArrivalEvent:
        return self._events[index]

    @property
    def workers(self) -> list[Worker]:
        """All worker arrivals, in order."""
        return [e.worker for e in self._events if e.kind is EventKind.WORKER]

    @property
    def requests(self) -> list[Request]:
        """All request arrivals, in order."""
        return [e.request for e in self._events if e.kind is EventKind.REQUEST]

    def reordered(self, order: Sequence[int]) -> "EventStream":
        """A stream with the same events in a caller-chosen order.

        Used by the competitive-ratio experiments, which enumerate arrival
        orders.  Timestamps are rewritten to 0..n-1 so the new order is also
        the new time order.
        """
        if sorted(order) != list(range(len(self._events))):
            raise ConfigurationError("order must be a permutation of event indices")
        events = []
        for new_time, index in enumerate(order):
            event = self._events[index]
            if event.kind is EventKind.WORKER:
                assert event.worker is not None
                worker = Worker(
                    worker_id=event.worker.worker_id,
                    platform_id=event.worker.platform_id,
                    arrival_time=float(new_time),
                    location=event.worker.location,
                    service_radius=event.worker.service_radius,
                    shareable=event.worker.shareable,
                )
                events.append(ArrivalEvent.of_worker(worker))
            else:
                assert event.request is not None
                request = Request(
                    request_id=event.request.request_id,
                    platform_id=event.request.platform_id,
                    arrival_time=float(new_time),
                    location=event.request.location,
                    value=event.request.value,
                )
                events.append(ArrivalEvent.of_request(request))
        return EventStream(events)


def merge_streams(streams: Iterable[EventStream]) -> EventStream:
    """Time-merge several per-platform streams into one global stream."""
    merged: list[ArrivalEvent] = []
    for stream in streams:
        merged.extend(stream)
    return EventStream(merged)
