"""DemCOM — Deterministic Cross Online Matching (Algorithm 1).

Greedy revenue-first strategy:

1. an incoming request is served by the *nearest eligible inner* worker if
   one exists (full value ``v_r`` to the platform);
2. otherwise the minimum outer payment ``v'_r`` is estimated with
   Algorithm 2 (:class:`~repro.core.payment.MinimumOuterPaymentEstimator`);
3. if ``v'_r > v_r`` the request is rejected (serving it would lose money);
4. otherwise a live offer at ``v'_r`` goes to every eligible outer worker;
   the request is assigned to the nearest accepting worker, or rejected if
   everyone declines.

Per the paper's Theorem 1, DemCOM's adversarial competitive ratio is
unbounded and its random-order ratio equals the plain greedy TOTA
algorithm's; its weakness (minimum payments attract few outer workers —
observed acceptance ratio around 0.16) motivates RamCOM.
"""

from __future__ import annotations

from repro.core.base import (
    Decision,
    OnlineAlgorithm,
    PlatformContext,
    run_offer_loop,
)
from repro.core.entities import Request

__all__ = ["DemCOM"]


class DemCOM(OnlineAlgorithm):
    """Algorithm 1 of the paper."""

    name = "DemCOM"
    #: Micro-batching hint: the cooperative path's expensive step is a
    #: keyed Algorithm-2 estimate (docs/SERVICE.md#micro-batched-dispatch).
    speculates = "estimate"

    def decide(self, request: Request, context: PlatformContext) -> Decision:
        # Lines 3-6: inner workers have absolute priority; pick the nearest.
        inner = context.inner_candidates(request)
        if inner:
            return Decision.serve_inner(inner[0])

        # Line 8: the eligible outer candidate set W^r_out.  Under the
        # resilience layer this set may be reduced (or empty) while the
        # exchange is degraded; the inner-first / reject structure below
        # is unchanged, so Def. 2.6 holds in degraded mode too.
        outer = context.outer_candidates(request)
        if not outer:
            return Decision.reject()  # lines 9-10

        # Line 12: Algorithm 2 estimates the minimum outer payment.
        candidate_ids = [worker.worker_id for worker in outer]
        # The request id keys the array backend's pinned uniform stream
        # (ignored by the pure-Python backend).
        estimate = context.payment_estimator.estimate(
            request.value,
            candidate_ids,
            context.rng,
            probe=context.probe,
            key=request.request_id,
        )
        payment = estimate.payment
        if payment > request.value:
            # Lines 13-14: the platform would lose money; no offers are made.
            if context.probe.enabled:
                context.probe.count(
                    "payment_rejections_total", platform=context.platform_id
                )
            return Decision.reject()

        # Lines 15-26: live offers at v'_r; nearest accepting worker wins
        # (line 22's greedy pick).
        return run_offer_loop(request, outer, payment, context)
