"""Worker behaviour substrate: the ground truth behind Definition 3.1.

The paper *estimates* a worker's willingness to serve a cooperative request
at payment ``v'`` from the worker's completed-request history (Eq. 4), but
never states the generative process being estimated.  Something must decide,
in the simulator, whether a real offer is accepted — and the offline oracle
(OFF) must be able to see that decision in advance.

We model each worker with a latent *reservation-price distribution*: on every
offer the worker draws a fresh reservation ``rho`` and accepts iff
``offer >= rho``.  This makes Eq. 4's empirical-CDF estimate a consistent
estimator of the true acceptance probability, reproduces the paper's
"draw x in [0,1], accept iff x <= pr" mechanics exactly (with the empirical
CDF as the reservation distribution), and gives OFF a well-defined oracle
(the realized draws).

Public pieces:

* distribution classes implementing :class:`ReservationDistribution`;
* :class:`WorkerBehavior` — per-worker accept/reject decisions, memoising
  realized draws per request so online algorithms and OFF see the *same*
  randomness (required for a fair competitive-ratio comparison);
* :func:`generate_history` — the completed-request value history that the
  platform observes and feeds to Eq. 4.
"""

from repro.behavior.distributions import (
    EmpiricalDistribution,
    LognormalDistribution,
    NormalDistribution,
    ReservationDistribution,
    UniformDistribution,
)
from repro.behavior.worker_model import BehaviorOracle, WorkerBehavior, generate_history

__all__ = [
    "ReservationDistribution",
    "EmpiricalDistribution",
    "UniformDistribution",
    "NormalDistribution",
    "LognormalDistribution",
    "WorkerBehavior",
    "BehaviorOracle",
    "generate_history",
]
