"""Per-worker ground-truth behaviour and the shared behaviour oracle.

Central invariant: the realized reservation of worker ``w`` for request
``r`` is a *deterministic function* of ``(experiment seed, w, r)``.  Every
consumer — DemCOM's live offers, RamCOM's live offers, and the offline
oracle OFF — therefore observes exactly the same randomness, which is what
makes "OFF >= any online algorithm" a true invariant (tested property) and
the competitive-ratio experiments meaningful.

Like the Eq.-4 estimator, the oracle supports two modes:

* ``"relative"`` (default) — reservation draws are *payment rates*: the
  worker accepts payment ``v'`` for request ``r`` iff ``v'/v_r >= rho``;
* ``"absolute"`` — draws are raw prices: accept iff ``v' >= rho``.

See DESIGN.md §2 for why the relative calibration is the one that
reproduces the paper's measured incentive behaviour.
"""

from __future__ import annotations

import random
from collections.abc import Hashable

from repro.behavior.distributions import ReservationDistribution
from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = ["WorkerBehavior", "BehaviorOracle", "generate_history"]


def generate_history(
    distribution: ReservationDistribution, count: int, rng: random.Random
) -> list[float]:
    """Generate a worker's completed-request history.

    Definition 3.1 estimates acceptance from a worker's *N* completed
    history requests; the natural generative counterpart is that the worker
    historically completed requests whose payment cleared their reservation
    draw — i.e. history entries are samples of the reservation distribution
    itself.  This makes Eq. 4's empirical CDF a consistent estimator of the
    true acceptance probability.
    """
    if count < 0:
        raise ValueError(f"history length must be non-negative, got {count}")
    return [distribution.sample(rng) for _ in range(count)]


class WorkerBehavior:
    """The latent behaviour of one worker.

    Parameters
    ----------
    worker_id:
        The worker's globally unique id.
    distribution:
        The worker's reservation distribution (rates in relative mode).
    history:
        The platform-visible completed-request entries (what Eq. 4 sees).
    """

    __slots__ = ("worker_id", "distribution", "history")

    def __init__(
        self,
        worker_id: Hashable,
        distribution: ReservationDistribution,
        history: list[float],
    ):
        self.worker_id = worker_id
        self.distribution = distribution
        self.history = list(history)

    def true_acceptance_probability(self, offer: float) -> float:
        """P(accept) at a normalized offer (a rate in relative mode)."""
        return self.distribution.cdf(offer)


class BehaviorOracle:
    """Realizes reservation draws deterministically per (worker, request).

    ``reservation(w, r)`` is a pure function of the oracle seed and the two
    ids; calling it twice — or from two different algorithms — returns the
    same value.  ``offer`` answers a live payment offer against that draw.
    """

    def __init__(self, seed: int, mode: str = "relative"):
        if mode not in ("relative", "absolute"):
            raise ConfigurationError(
                f"mode must be 'relative' or 'absolute', got {mode!r}"
            )
        self.seed = int(seed)
        self.mode = mode
        self._behaviors: dict[Hashable, WorkerBehavior] = {}

    def register(self, behavior: WorkerBehavior) -> None:
        """Register one worker's behaviour (id must be unique)."""
        if behavior.worker_id in self._behaviors:
            raise ConfigurationError(
                f"duplicate worker behaviour for {behavior.worker_id!r}"
            )
        self._behaviors[behavior.worker_id] = behavior

    def behavior_of(self, worker_id: Hashable) -> WorkerBehavior:
        """Look up a worker's behaviour (reentry clones resolve to base)."""
        behavior = self._behaviors.get(worker_id)
        if behavior is None:
            behavior = self._behaviors.get(self._base_id(worker_id))
        if behavior is None:
            raise ConfigurationError(
                f"no behaviour registered for worker {worker_id!r}; every "
                "worker that can receive offers must be registered with the "
                "oracle (workload generators do this automatically)"
            )
        return behavior

    def __contains__(self, worker_id: Hashable) -> bool:
        return worker_id in self._behaviors

    def __len__(self) -> int:
        return len(self._behaviors)

    @staticmethod
    def _base_id(worker_id: Hashable) -> Hashable:
        """Strip a reentry-clone suffix so clones share the base's draws."""
        if isinstance(worker_id, str) and "@reentry" in worker_id:
            return worker_id.split("@reentry", 1)[0]
        return worker_id

    def reservation(self, worker_id: Hashable, request_id: Hashable) -> float:
        """The realized reservation draw of ``worker`` for ``request``.

        A payment *rate* in relative mode, a raw price in absolute mode.
        Deterministic in (seed, base worker id, request id), so reentry
        clones share the base worker's draw and every algorithm sees
        identical randomness.
        """
        base_id = self._base_id(worker_id)
        behavior = self.behavior_of(worker_id)
        rng = derive_rng(self.seed, f"reservation/{base_id}/{request_id}")
        return behavior.distribution.sample(rng)

    def reservation_price(
        self, worker_id: Hashable, request_id: Hashable, request_value: float
    ) -> float:
        """The realized reservation as an absolute price (what OFF pays)."""
        draw = self.reservation(worker_id, request_id)
        if self.mode == "relative":
            return draw * request_value
        return draw

    def offer(
        self,
        worker_id: Hashable,
        request_id: Hashable,
        payment: float,
        request_value: float,
    ) -> bool:
        """Answer a live offer: accept iff it clears the realized draw."""
        return payment >= self.reservation_price(
            worker_id, request_id, request_value
        ) - 1e-12

    def history_of(self, worker_id: Hashable) -> list[float]:
        """The platform-visible history entries for Eq. 4."""
        return self.behavior_of(worker_id).history
