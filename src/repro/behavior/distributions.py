"""Reservation-price distributions.

Each distribution exposes sampling (the worker's latent draw per offer), the
CDF (the *true* acceptance probability at a given payment, used by analysis
and tests), and quantiles (used by workload calibration: "make the minimum
outer payment land near 70% of the request value", §III-D).
"""

from __future__ import annotations

import bisect
import math
import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "ReservationDistribution",
    "UniformDistribution",
    "NormalDistribution",
    "LognormalDistribution",
    "EmpiricalDistribution",
]


class ReservationDistribution(ABC):
    """A distribution over reservation prices (non-negative reals)."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one reservation price."""

    @abstractmethod
    def cdf(self, value: float) -> float:
        """P(reservation <= value) — the true acceptance probability."""

    @abstractmethod
    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1]."""

    def mean(self) -> float:
        """Expected reservation price (default: numeric from quantiles)."""
        steps = 512
        return sum(self.quantile((i + 0.5) / steps) for i in range(steps)) / steps


class UniformDistribution(ReservationDistribution):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ConfigurationError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def cdf(self, value: float) -> float:
        # Check the upper end first so a degenerate interval (low == high)
        # has CDF 1 at its point mass, not 0.
        if value >= self.high:
            return 1.0
        if value <= self.low:
            return 0.0
        return (value - self.low) / (self.high - self.low)

    def quantile(self, q: float) -> float:
        _check_q(q)
        return self.low + q * (self.high - self.low)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformDistribution({self.low}, {self.high})"


class NormalDistribution(ReservationDistribution):
    """Normal(mu, sigma) truncated below at zero (reservations are prices)."""

    def __init__(self, mu: float, sigma: float):
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: random.Random) -> float:
        return max(0.0, rng.gauss(self.mu, self.sigma))

    def cdf(self, value: float) -> float:
        if value < 0:
            return 0.0
        # Truncation at 0 folds all mass below zero onto zero, so the CDF of
        # the truncated variable equals the untruncated CDF for value >= 0.
        z = (value - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def quantile(self, q: float) -> float:
        _check_q(q)
        # Bisection on the CDF; monotone, so this is robust.
        low, high = 0.0, max(1.0, self.mu + 10.0 * self.sigma)
        if q <= self.cdf(low):
            return low
        for _ in range(80):
            mid = (low + high) / 2.0
            if self.cdf(mid) < q:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    def mean(self) -> float:
        # Mean of max(0, N(mu, sigma)).
        z = self.mu / self.sigma
        phi = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
        big_phi = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
        return self.mu * big_phi + self.sigma * phi

    def __repr__(self) -> str:
        return f"NormalDistribution(mu={self.mu}, sigma={self.sigma})"


class LognormalDistribution(ReservationDistribution):
    """Lognormal — the classic heavy-tailed fare/price model."""

    def __init__(self, mu: float, sigma: float):
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def cdf(self, value: float) -> float:
        if value <= 0:
            return 0.0
        z = (math.log(value) - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def quantile(self, q: float) -> float:
        _check_q(q)
        if q == 0.0:
            return 0.0
        z = _normal_quantile(q)
        return math.exp(self.mu + self.sigma * z)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)

    def __repr__(self) -> str:
        return f"LognormalDistribution(mu={self.mu}, sigma={self.sigma})"


class EmpiricalDistribution(ReservationDistribution):
    """The empirical distribution of a finite sample.

    This is exactly the distribution Definition 3.1 estimates: its CDF at
    ``v`` is ``N(value <= v) / N``.  Sampling draws a uniform member.
    """

    def __init__(self, values: Sequence[float]):
        if not values:
            raise ConfigurationError("empirical distribution needs >= 1 value")
        if any(v < 0 for v in values):
            raise ConfigurationError("reservation prices must be non-negative")
        self._sorted = sorted(float(v) for v in values)

    def sample(self, rng: random.Random) -> float:
        return self._sorted[rng.randrange(len(self._sorted))]

    def cdf(self, value: float) -> float:
        return bisect.bisect_right(self._sorted, value) / len(self._sorted)

    def quantile(self, q: float) -> float:
        _check_q(q)
        index = min(len(self._sorted) - 1, int(q * len(self._sorted)))
        return self._sorted[index]

    def mean(self) -> float:
        return sum(self._sorted) / len(self._sorted)

    @property
    def values(self) -> list[float]:
        """The sorted sample."""
        return list(self._sorted)

    def __repr__(self) -> str:
        return f"EmpiricalDistribution(n={len(self._sorted)})"


def _check_q(q: float) -> None:
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")


def _normal_quantile(q: float) -> float:
    """Acklam's rational approximation to the standard normal quantile."""
    if not 0.0 < q < 1.0:
        raise ConfigurationError(f"normal quantile needs q in (0, 1), got {q}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    if q > 1.0 - p_low:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    u = q - 0.5
    t = u * u
    return (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) * u / (
        ((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0
    )
