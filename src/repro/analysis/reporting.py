"""Lint reporters: human text and machine JSON.

Both forms are deterministic (sorted findings, sorted keys) so CI diffs
and snapshot tests are stable.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.linter import Violation
from repro.analysis.rules import RULES

__all__ = ["render_text", "render_json", "render_rule_catalogue"]


def render_text(
    new: list[Violation], baselined: list[Violation] | None = None
) -> str:
    """A flake8-style report plus a per-rule summary footer."""
    lines = [violation.render() for violation in new]
    counts = Counter(violation.rule_id for violation in new)
    if baselined:
        lines.append(f"({len(baselined)} baselined finding(s) hidden)")
    if new:
        summary = ", ".join(
            f"{rule_id}={count}" for rule_id, count in sorted(counts.items())
        )
        lines.append(f"{len(new)} new violation(s): {summary}")
    else:
        lines.append("no new violations")
    return "\n".join(lines)


def render_json(
    new: list[Violation], baselined: list[Violation] | None = None
) -> str:
    """A JSON report: findings, counts, and the rule catalogue version."""
    payload = {
        "violations": [
            {
                "rule": violation.rule_id,
                "path": violation.path,
                "line": violation.line,
                "column": violation.column + 1,
                "message": violation.message,
                "source": violation.source_line,
            }
            for violation in new
        ],
        "baselined": len(baselined or ()),
        "counts": dict(
            sorted(Counter(v.rule_id for v in new).items())
        ),
        "total": len(new),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalogue() -> str:
    """The ``--list-rules`` table."""
    lines = []
    for rule in RULES.values():
        lines.append(f"{rule.rule_id}  {rule.name}")
        lines.append(f"    {rule.summary}")
        if rule.allowlist:
            lines.append(f"    allowlist: {', '.join(rule.allowlist)}")
    return "\n".join(lines)
